"""End-to-end telemetry: metrics registry, span tracer, report emitters.

The paper's evaluation rests on per-component CPU attribution (Figures 9
and 10 split Bro-pipeline time into parsing / script / glue / other) and
on compiler-inserted profiling sampled "at regular intervals" (section
3.3).  This module is the measurement substrate that makes those numbers
queryable and exportable instead of scattered across ad-hoc counters:

* a **metrics registry** of labeled series — monotonic :class:`Counter`,
  point-in-time :class:`Gauge`, and bucketed :class:`Histogram` — with a
  JSON-lines exporter;
* a lightweight **span tracer** (:class:`Tracer` / :class:`Span`) for
  per-flow and per-packet span trees with attached point events;
* a **reporting layer**: the human ``stats.log`` renderer, the
  ``prof.log`` writer (delegating to :class:`~.profiler.ProfilerRegistry`),
  the Figures 9/10 **CPU-breakdown** report builder, and hand-rolled
  schema validators for both machine-readable formats (no third-party
  jsonschema dependency);
* a ``python -m repro.runtime.telemetry`` CLI exposing the validators so
  CI can gate on report well-formedness.

Disabled-path cost is near zero by construction: hosts hold one
:class:`Telemetry` object and guard hot-path hooks on its ``enabled`` /
``tracer.enabled`` booleans; nothing allocates when telemetry is off,
and the null span/tracer singletons absorb stray calls.
"""

from __future__ import annotations

import json
import time
from collections import deque as _deque
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SchemaError",
    "Span",
    "NullSpan",
    "NULL_SPAN",
    "TimeSeriesStore",
    "Tracer",
    "NULL_TRACER",
    "Telemetry",
    "cpu_breakdown_report",
    "validate_cpu_breakdown",
    "validate_metrics_lines",
    "validate_timeseries_lines",
    "render_stats_log",
    "CPU_BREAKDOWN_SCHEMA",
    "METRICS_SCHEMA",
    "TIMESERIES_SCHEMA",
]

CPU_BREAKDOWN_SCHEMA = "bro-cpu-breakdown/1"
METRICS_SCHEMA = "repro-metrics/1"
TIMESERIES_SCHEMA = "repro-timeseries/1"


class SchemaError(ValueError):
    """Structurally incompatible telemetry data: merging registries
    whose series disagree on shape (histogram bucket bounds), or a
    report that does not match its declared schema."""

_COMPONENTS = ("parsing", "script", "glue", "other")


# --------------------------------------------------------------------------
# Metric series
# --------------------------------------------------------------------------


class _Series:
    """Common shape of one labeled series."""

    kind = "abstract"
    __slots__ = ("name", "labels", "help")

    def __init__(self, name: str, labels: Dict[str, str], help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help

    def as_dict(self) -> Dict:
        raise NotImplementedError

    def _base(self) -> Dict:
        out: Dict[str, object] = {"kind": self.kind, "name": self.name}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out

    def __repr__(self) -> str:
        labels = ",".join(f"{k}={v}" for k, v in self.labels.items())
        return f"<{self.kind} {self.name}{{{labels}}}>"


class Counter(_Series):
    """A monotonically increasing count (packets seen, faults injected)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name, labels, help=""):
        super().__init__(name, labels, help)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def as_dict(self) -> Dict:
        out = self._base()
        out["value"] = self.value
        return out


class Gauge(_Series):
    """A point-in-time value (table occupancy, pending bytes)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name, labels, help=""):
        super().__init__(name, labels, help)
        self.value = 0

    def set(self, value) -> None:
        self.value = value

    def inc(self, amount=1) -> None:
        self.value += amount

    def dec(self, amount=1) -> None:
        self.value -= amount

    def set_max(self, value) -> None:
        """Retain the high-water mark."""
        if value > self.value:
            self.value = value

    def as_dict(self) -> Dict:
        out = self._base()
        out["value"] = self.value
        return out


class Histogram(_Series):
    """Bucketed observations (per-packet latency, payload sizes)."""

    kind = "histogram"
    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    #: Generic latency-ish default buckets (values are unit-free).
    DEFAULT_BOUNDS = (
        1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
    )

    def __init__(self, name, labels, help="", bounds=None):
        super().__init__(name, labels, help)
        self.bounds: Tuple = tuple(bounds) if bounds else self.DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0
        self.count = 0

    def observe(self, value) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[index] += 1
                return
        self.bucket_counts[-1] += 1  # +Inf bucket

    def as_dict(self) -> Dict:
        out = self._base()
        buckets = {str(b): c for b, c in zip(self.bounds, self.bucket_counts)}
        buckets["+Inf"] = self.bucket_counts[-1]
        out["buckets"] = buckets
        out["sum"] = self.sum
        out["count"] = self.count
        return out


class MetricsRegistry:
    """Process- or host-app-wide registry of labeled metric series.

    Series are addressed by ``(name, labels)``; repeated calls with the
    same address return the same series object, so hot paths can resolve
    once and hold the series.
    """

    __slots__ = ("_series",)

    def __init__(self):
        self._series: Dict[Tuple, _Series] = {}

    def _get(self, cls, name: str, labels: Dict[str, str], help: str,
             **kwargs) -> _Series:
        # Label values arrive as whatever the caller had in hand (lane
        # indexes as ints, worker ids as strs).  Coercing to str here
        # keeps the registry's sort keys homogeneous — a mixed-type
        # label value would make ``sorted(self._series)`` raise and the
        # merged multi-worker emit order nondeterministic.
        labels = {str(k): str(v) for k, v in labels.items()}
        key = (name, tuple(sorted(labels.items())))
        series = self._series.get(key)
        if series is None:
            series = cls(name, labels, help=help, **kwargs)
            self._series[key] = series
        elif not isinstance(series, cls):
            raise ValueError(
                f"metric {name!r} already registered as {series.kind}"
            )
        return series

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(self, name: str, help: str = "", bounds=None,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, help, bounds=bounds)

    def all_series(self) -> List[_Series]:
        return [self._series[key] for key in sorted(self._series)]

    def collect(self) -> List[Dict]:
        """Every series as a plain dict, sorted by (name, labels)."""
        return [series.as_dict() for series in self.all_series()]

    def emit_jsonl(self, stream, meta: Optional[Dict] = None) -> int:
        """Write the registry as JSON-lines; returns lines written.

        The first line is a header record carrying the schema version
        (plus caller-supplied *meta*); each following line is one series.
        """
        header = {"schema": METRICS_SCHEMA, "ts": time.time()}
        if meta:
            header.update(meta)
        stream.write(json.dumps(header, sort_keys=True) + "\n")
        lines = 1
        for series in self.all_series():
            stream.write(json.dumps(series.as_dict(), sort_keys=True) + "\n")
            lines += 1
        return lines

    def merge_series(self, series_dicts: Iterable[Dict],
                     gauge_merge: Optional[Dict[str, str]] = None,
                     extra_labels: Optional[Dict[str, str]] = None) -> int:
        """Fold ``collect()``-shaped series dicts into this registry.

        The reduction step of the flow-parallel pipeline: each worker
        (thread lane or subprocess) collects into its own registry, and
        the driver merges them at join (``docs/PARALLELISM.md``).
        Counters and histograms are additive; gauges sum by default, or
        take the maximum for names mapped to ``"max"`` in *gauge_merge*
        (high-water marks like peak occupancy).  *extra_labels* are
        stamped onto every merged series — the per-worker attribution
        labels (``worker=N``) of the cross-process telemetry plane.
        Histograms whose bucket bounds disagree with an already
        registered series raise :class:`SchemaError` — a silent merge
        would misalign every bucket.  Returns the number of series
        merged.
        """
        gauge_merge = gauge_merge or {}
        merged = 0
        for entry in series_dicts:
            kind = entry["kind"]
            name = entry["name"]
            labels = dict(entry.get("labels", {}))
            if extra_labels:
                labels.update(extra_labels)
            if kind == "counter":
                self.counter(name, **labels).inc(entry["value"])
            elif kind == "gauge":
                gauge = self.gauge(name, **labels)
                if gauge_merge.get(name) == "max":
                    gauge.set_max(entry["value"])
                else:
                    gauge.inc(entry["value"])
            elif kind == "histogram":
                buckets = entry["buckets"]
                bounds = tuple(
                    int(b) if float(b).is_integer() else float(b)
                    for b in buckets if b != "+Inf"
                )
                histogram = self.histogram(name, bounds=bounds, **labels)
                if tuple(histogram.bounds) != bounds:
                    raise SchemaError(
                        f"histogram {name!r}: bucket bounds "
                        f"{bounds} differ from registered bounds "
                        f"{tuple(histogram.bounds)} — refusing to "
                        "misalign buckets"
                    )
                for index, bound in enumerate(histogram.bounds):
                    histogram.bucket_counts[index] += buckets[str(bound)]
                histogram.bucket_counts[-1] += buckets["+Inf"]
                histogram.sum += entry["sum"]
                histogram.count += entry["count"]
            else:
                raise ValueError(f"unknown series kind {kind!r}")
            merged += 1
        return merged


# --------------------------------------------------------------------------
# Time-series history (the service's /metrics/history surface)
# --------------------------------------------------------------------------


class TimeSeriesStore:
    """A bounded ring of periodic registry snapshots with deltas.

    One point-in-time ``/metrics`` dump answers "what is the value now";
    operating a long-running service needs "what happened over the last
    minute".  The service's aggregator tick feeds each registry
    ``collect()`` here; every stored sample carries, per cumulative
    series (counters and histogram counts), the delta against the
    previous sample, so consumers (``servicetop``, the
    ``/metrics/history`` endpoint) get rates without re-diffing.

    The ring is bounded by *max_samples* (600 one-second ticks = ten
    minutes of history) so a service that runs for weeks holds a flat
    amount of telemetry memory.
    """

    def __init__(self, max_samples: int = 600):
        if max_samples < 1:
            raise ValueError(
                f"max_samples must be >= 1, got {max_samples!r}")
        self.max_samples = max_samples
        self._samples: "deque" = _deque(maxlen=max_samples)
        self._last: Dict[Tuple, float] = {}

    def __len__(self) -> int:
        return len(self._samples)

    @staticmethod
    def _key(entry: Dict) -> Tuple:
        return (entry["name"],
                tuple(sorted(entry.get("labels", {}).items())))

    def sample(self, ts: float, series_dicts: Iterable[Dict]) -> Dict:
        """Record one snapshot; returns the stored sample record."""
        last = self._last
        current: Dict[Tuple, float] = {}
        series: List[Dict] = []
        for entry in series_dicts:
            entry = dict(entry)
            key = self._key(entry)
            cumulative = (entry["count"] if entry["kind"] == "histogram"
                          else entry["value"])
            if entry["kind"] in ("counter", "histogram"):
                entry["delta"] = cumulative - last.get(key, 0)
            current[key] = cumulative
            series.append(entry)
        self._last = current
        record = {"ts": ts, "series": series}
        self._samples.append(record)
        return record

    def history(self, window: Optional[float] = None,
                now: Optional[float] = None) -> List[Dict]:
        """The stored samples, newest-last; *window* (seconds) keeps
        only samples at or after ``now - window`` (*now* defaults to
        the newest sample's timestamp)."""
        samples = list(self._samples)
        if window is None or not samples:
            return samples
        if now is None:
            now = samples[-1]["ts"]
        horizon = now - window
        return [record for record in samples if record["ts"] >= horizon]

    def emit_jsonl(self, stream, meta: Optional[Dict] = None) -> int:
        """Write the ring as schema-tagged JSON lines (header first);
        returns lines written."""
        header = {"schema": TIMESERIES_SCHEMA, "ts": time.time(),
                  "samples": len(self._samples)}
        if meta:
            header.update(meta)
        stream.write(json.dumps(header, sort_keys=True) + "\n")
        lines = 1
        for record in self._samples:
            stream.write(json.dumps(record, sort_keys=True) + "\n")
            lines += 1
        return lines


# --------------------------------------------------------------------------
# Span tracer
# --------------------------------------------------------------------------


class Span:
    """One timed region with attributes, point events, and child spans."""

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children", "events")

    def __init__(self, name: str, attrs: Optional[Dict] = None):
        self.name = name
        self.attrs = attrs or {}
        self.start_ns = time.perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.children: List["Span"] = []
        self.events: List[Tuple[int, str, Dict]] = []

    def child(self, name: str, **attrs) -> "Span":
        span = Span(name, attrs)
        self.children.append(span)
        return span

    def event(self, name: str, **attrs) -> None:
        self.events.append(
            (time.perf_counter_ns() - self.start_ns, name, attrs)
        )

    def finish(self) -> None:
        if self.end_ns is None:
            self.end_ns = time.perf_counter_ns()

    @property
    def duration_ns(self) -> int:
        end = self.end_ns if self.end_ns is not None \
            else time.perf_counter_ns()
        return end - self.start_ns

    def to_dict(self) -> Dict:
        out: Dict[str, object] = {
            "name": self.name,
            "duration_ns": self.duration_ns,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.events:
            out["events"] = [
                {"offset_ns": offset, "name": name,
                 **({"attrs": attrs} if attrs else {})}
                for offset, name, attrs in self.events
            ]
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out

    def __repr__(self) -> str:
        return f"<Span {self.name} {self.duration_ns / 1e6:.3f} ms>"


class NullSpan:
    """No-op span: absorbs tracing calls when the tracer is disabled."""

    __slots__ = ()
    name = "<null>"
    attrs: Dict = {}
    children: Tuple = ()
    events: Tuple = ()
    duration_ns = 0

    def child(self, name: str, **attrs) -> "NullSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        pass

    def finish(self) -> None:
        pass

    def to_dict(self) -> Dict:
        return {"name": self.name, "duration_ns": 0}


NULL_SPAN = NullSpan()


class Tracer:
    """Root-span factory with a memory bound.

    Hosts check :attr:`enabled` before touching the tracer on hot paths;
    when disabled (or when the *max_spans* bound is hit) ``start_span``
    hands back the shared :data:`NULL_SPAN` so callers never branch on
    None.  ``spans_dropped`` makes the bound visible instead of silently
    truncating a trace.
    """

    __slots__ = ("enabled", "roots", "max_spans", "spans_started",
                 "spans_dropped")

    def __init__(self, enabled: bool = False, max_spans: int = 100_000):
        self.enabled = enabled
        self.roots: List[Span] = []
        self.max_spans = max_spans
        self.spans_started = 0
        self.spans_dropped = 0

    def start_span(self, name: str, **attrs):
        if not self.enabled:
            return NULL_SPAN
        if self.spans_started >= self.max_spans:
            self.spans_dropped += 1
            return NULL_SPAN
        span = Span(name, attrs)
        self.roots.append(span)
        self.spans_started += 1
        return span

    def emit_jsonl(self, stream) -> int:
        """One root span tree per line; returns lines written."""
        lines = 0
        for root in self.roots:
            stream.write(json.dumps(root.to_dict(), sort_keys=True) + "\n")
            lines += 1
        return lines


NULL_TRACER = Tracer(enabled=False)


# --------------------------------------------------------------------------
# The telemetry handle hosts carry around
# --------------------------------------------------------------------------


class Telemetry:
    """One host application's telemetry switchboard.

    ``enabled`` gates metrics collection; ``tracer.enabled`` gates span
    recording independently (``--trace-flows`` without ``--metrics`` is
    legal).  The default-constructed object is fully off and costs one
    attribute read per guarded hook.
    """

    __slots__ = ("enabled", "metrics", "tracer")

    def __init__(self, metrics: bool = False, trace: bool = False,
                 max_spans: int = 100_000):
        self.enabled = metrics
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(enabled=trace, max_spans=max_spans)

    @property
    def any_enabled(self) -> bool:
        return self.enabled or self.tracer.enabled


#: Shared disabled instance for hosts that were not handed one.
NULL_TELEMETRY = Telemetry()


# --------------------------------------------------------------------------
# CPU-breakdown report (Figures 9–10)
# --------------------------------------------------------------------------


def _shares(ns_by_component: Dict[str, int]) -> Dict[str, float]:
    """Percentage shares rounded to 2 decimals that sum to exactly 100."""
    total = sum(ns_by_component.values())
    if total <= 0:
        raise ValueError("cannot compute shares of a zero total")
    shares = {
        name: round(ns * 100.0 / total, 2)
        for name, ns in ns_by_component.items()
    }
    # Absorb the rounding residue into the largest component so the
    # shares sum to exactly 100.00 (the validator holds us to it).
    residue = round(100.0 - sum(shares.values()), 2)
    if residue:
        largest = max(shares, key=lambda name: ns_by_component[name])
        shares[largest] = round(shares[largest] + residue, 2)
    return shares


def cpu_breakdown_report(stats: Dict, config: Optional[Dict] = None) -> Dict:
    """Build the machine-readable Figures 9/10 report from ``Bro.stats``.

    *stats* is the dict ``Bro.run`` returns (``total_ns``,
    ``parsing_ns``, ``script_ns``, ``glue_ns``, ``other_ns``,
    ``packets``, ``events``); *config* records the run configuration
    (parser tier, script engine, trace identity) for reproducibility.
    """
    ns = {name: int(stats[f"{name}_ns"]) for name in _COMPONENTS}
    total_ns = int(stats["total_ns"])
    shares = _shares(ns)
    components = {
        name: {"ns": ns[name], "share": shares[name]}
        for name in _COMPONENTS
    }
    ranking = sorted(_COMPONENTS, key=lambda name: ns[name], reverse=True)
    report = {
        "schema": CPU_BREAKDOWN_SCHEMA,
        "total_ns": total_ns,
        "components": components,
        "ranking": ranking,
        "packets": int(stats.get("packets", 0)),
        "events": int(stats.get("events", 0)),
    }
    if config:
        report["config"] = dict(config)
    return report


def validate_cpu_breakdown(doc: Dict) -> List[str]:
    """Schema check for :func:`cpu_breakdown_report` output.

    Returns a list of human-readable problems (empty when valid).
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != CPU_BREAKDOWN_SCHEMA:
        errors.append(
            f"schema must be {CPU_BREAKDOWN_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    total = doc.get("total_ns")
    if not isinstance(total, int) or total <= 0:
        errors.append(f"total_ns must be a positive integer, got {total!r}")
    components = doc.get("components")
    if not isinstance(components, dict):
        errors.append("components must be an object")
        return errors
    share_sum = 0.0
    for name in _COMPONENTS:
        entry = components.get(name)
        if not isinstance(entry, dict):
            errors.append(f"missing component {name!r}")
            continue
        ns = entry.get("ns")
        share = entry.get("share")
        if not isinstance(ns, int) or ns < 0:
            errors.append(f"{name}.ns must be a non-negative integer")
        if not isinstance(share, (int, float)) or share < 0 or share > 100:
            errors.append(f"{name}.share must be a percentage in [0, 100]")
        else:
            share_sum += share
    extra = set(components) - set(_COMPONENTS)
    if extra:
        errors.append(f"unknown components: {sorted(extra)}")
    if not errors and abs(share_sum - 100.0) > 0.01:
        errors.append(f"shares sum to {share_sum:.2f}, expected 100.00")
    ranking = doc.get("ranking")
    if ranking is not None and sorted(ranking) != sorted(_COMPONENTS):
        errors.append(f"ranking must permute {list(_COMPONENTS)}")
    for field in ("packets", "events"):
        value = doc.get(field)
        if value is not None and (not isinstance(value, int) or value < 0):
            errors.append(f"{field} must be a non-negative integer")
    return errors


# --------------------------------------------------------------------------
# Metrics JSON-lines validation
# --------------------------------------------------------------------------


def _series_entry_errors(doc: Dict, where: str) -> List[str]:
    """Shared shape checks for one ``collect()``-style series dict."""
    errors: List[str] = []
    kind = doc.get("kind")
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: missing series name")
    if kind in ("counter", "gauge"):
        if "value" not in doc or not isinstance(
                doc["value"], (int, float)):
            errors.append(f"{where}: {kind} needs a numeric value")
        if kind == "counter" and isinstance(
                doc.get("value"), (int, float)) and doc["value"] < 0:
            errors.append(f"{where}: counter value negative")
    elif kind == "histogram":
        if not isinstance(doc.get("buckets"), dict):
            errors.append(f"{where}: histogram needs buckets")
        if not isinstance(doc.get("count"), int):
            errors.append(f"{where}: histogram needs a count")
    else:
        errors.append(f"{where}: unknown series kind {kind!r}")
    labels = doc.get("labels")
    if labels is not None and (
        not isinstance(labels, dict)
        or not all(isinstance(k, str) and isinstance(v, str)
                   for k, v in labels.items())
    ):
        errors.append(f"{where}: labels must map str -> str")
    return errors


def validate_metrics_lines(lines: Iterable[str]) -> List[str]:
    """Schema check for :meth:`MetricsRegistry.emit_jsonl` output."""
    errors: List[str] = []
    saw_header = False
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {number}: not JSON ({exc})")
            continue
        if not isinstance(doc, dict):
            errors.append(f"line {number}: not an object")
            continue
        if not saw_header:
            if doc.get("schema") != METRICS_SCHEMA:
                errors.append(
                    f"line {number}: header schema must be "
                    f"{METRICS_SCHEMA!r}"
                )
            saw_header = True
            continue
        errors.extend(_series_entry_errors(doc, f"line {number}"))
    if not saw_header:
        errors.append("no header line")
    return errors


def validate_timeseries_lines(lines: Iterable[str]) -> List[str]:
    """Schema check for :meth:`TimeSeriesStore.emit_jsonl` output
    (``repro-timeseries/1``): a schema header, then one sample object
    per line — numeric non-decreasing ``ts``, a ``series`` list of
    ``collect()``-shaped entries whose cumulative kinds carry a numeric
    ``delta``."""
    errors: List[str] = []
    saw_header = False
    last_ts: Optional[float] = None
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            doc = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {number}: not JSON ({exc})")
            continue
        if not isinstance(doc, dict):
            errors.append(f"line {number}: not an object")
            continue
        if not saw_header:
            if doc.get("schema") != TIMESERIES_SCHEMA:
                errors.append(
                    f"line {number}: header schema must be "
                    f"{TIMESERIES_SCHEMA!r}"
                )
            saw_header = True
            continue
        ts = doc.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"line {number}: sample needs a numeric ts")
        else:
            if last_ts is not None and ts < last_ts:
                errors.append(
                    f"line {number}: ts {ts} goes backwards "
                    f"(previous {last_ts})")
            last_ts = ts
        series = doc.get("series")
        if not isinstance(series, list):
            errors.append(f"line {number}: sample needs a series list")
            continue
        for position, entry in enumerate(series):
            where = f"line {number} series[{position}]"
            if not isinstance(entry, dict):
                errors.append(f"{where}: not an object")
                continue
            errors.extend(_series_entry_errors(entry, where))
            if entry.get("kind") in ("counter", "histogram"):
                if not isinstance(entry.get("delta"), (int, float)):
                    errors.append(
                        f"{where}: cumulative series needs a "
                        "numeric delta")
    if not saw_header:
        errors.append("no header line")
    return errors


# --------------------------------------------------------------------------
# Human stats.log rendering
# --------------------------------------------------------------------------


def render_stats_log(stats: Dict, sections: Optional[Dict[str, Dict]] = None,
                     ) -> str:
    """The human-readable run summary (``stats.log``).

    *stats* is ``Bro.stats``; *sections* adds named key/value blocks
    (health, engine counters, occupancy...) below the breakdown.
    """
    out: List[str] = []
    total = max(1, int(stats.get("total_ns", 0)))
    out.append("# stats.log — one pipeline run")
    out.append(f"total_ms {total / 1e6:.3f}")
    for name in _COMPONENTS:
        ns = int(stats.get(f"{name}_ns", 0))
        out.append(
            f"{name:>8} {ns / 1e6:12.3f} ms  {ns * 100.0 / total:6.2f}%"
        )
    for key in ("packets", "events", "parser_tier", "script_tier"):
        if key in stats:
            out.append(f"{key} {stats[key]}")
    for title, entries in (sections or {}).items():
        out.append("")
        out.append(f"[{title}]")
        for key in sorted(entries):
            out.append(f"{key} {entries[key]}")
    return "\n".join(out) + "\n"


# --------------------------------------------------------------------------
# CLI: report validation for CI
# --------------------------------------------------------------------------


def _main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.telemetry",
        description="validate telemetry reports (CI gate)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    breakdown = sub.add_parser(
        "validate-breakdown",
        help="check a CPU-breakdown JSON report against its schema",
    )
    breakdown.add_argument("path")
    breakdown.add_argument(
        "--require-nonzero", action="store_true",
        help="additionally require every component's share to be > 0",
    )
    metrics = sub.add_parser(
        "validate-metrics", help="check a metrics JSON-lines file")
    metrics.add_argument("path")
    timeseries = sub.add_parser(
        "validate-timeseries",
        help="check a timeseries JSON-lines file (repro-timeseries/1)")
    timeseries.add_argument("path")
    timeseries.add_argument(
        "--min-samples", type=int, default=0, metavar="N",
        help="additionally require at least N sample lines")
    flowrecords = sub.add_parser(
        "validate-flowrecords",
        help="check a flow-records JSON-lines file (repro-flowrecords/1)")
    flowrecords.add_argument("path")
    flowrecords.add_argument(
        "--min-records", type=int, default=0, metavar="N",
        help="additionally require at least N record lines")
    args = parser.parse_args(argv)

    with open(args.path) as stream:
        if args.command == "validate-breakdown":
            try:
                doc = json.load(stream)
            except ValueError as exc:
                print(f"{args.path}: not JSON ({exc})")
                return 1
            errors = validate_cpu_breakdown(doc)
            if not errors and args.require_nonzero:
                for name in _COMPONENTS:
                    if doc["components"][name]["share"] <= 0:
                        errors.append(f"{name}.share is zero")
        elif args.command == "validate-flowrecords":
            # Imported lazily: repro.net sits above the runtime layer.
            from ..net.flowrecord import validate_flowrecord_lines

            lines = stream.readlines()
            errors = validate_flowrecord_lines(lines)
            records = sum(1 for line in lines[1:] if line.strip())
            if not errors and records < args.min_records:
                errors.append(
                    f"only {records} records, expected at least "
                    f"{args.min_records}")
        elif args.command == "validate-timeseries":
            lines = stream.readlines()
            errors = validate_timeseries_lines(lines)
            samples = sum(1 for line in lines[1:] if line.strip())
            if not errors and samples < args.min_samples:
                errors.append(
                    f"only {samples} samples, expected at least "
                    f"{args.min_samples}")
        else:
            errors = validate_metrics_lines(stream)
    for error in errors:
        print(f"{args.path}: {error}")
    if errors:
        return 1
    print(f"{args.path}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_main())
