"""The HILTI runtime library: data types and execution services."""

from .bytes_buffer import Bytes, BytesIter  # noqa: F401
from .channels import Channel, deep_copy_value  # noqa: F401
from .classifier import (  # noqa: F401
    Classifier,
    LinearClassifier,
    TrieClassifier,
    make_classifier,
)
from .containers import (  # noqa: F401
    EXPIRE_ACCESS,
    EXPIRE_CREATE,
    HiltiList,
    HiltiMap,
    HiltiSet,
    HiltiVector,
)
from .context import ExecutionContext  # noqa: F401
from .exceptions import HiltiError, builtin_exception_types  # noqa: F401
from .fibers import Fiber, FiberStats, YIELDED  # noqa: F401
from .files import FileManager, HiltiFile  # noqa: F401
from .iosrc import IOSource  # noqa: F401
from .memory import AllocationStats  # noqa: F401
from .overlay import OverlayInstance, unpack_value  # noqa: F401
from .profiler import Profiler, ProfilerRegistry  # noqa: F401
from .regexp import MATCH_FAIL, MATCH_NEED_MORE, MatchState, RegExp  # noqa: F401
from .structs import Callable, StructInstance  # noqa: F401
from .telemetry import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Span,
    Telemetry,
    Tracer,
)
from .threads import Job, Scheduler  # noqa: F401
from .timers import Timer, TimerMgr  # noqa: F401
