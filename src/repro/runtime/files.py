"""File output with serialized multi-thread access.

HILTI's runtime routes operations that require serial execution — file
output from multiple concurrent threads being the canonical case — through
a command queue to a single dedicated manager (paper, section 5 "Runtime
Library").  ``FileManager`` implements that queue; ``HiltiFile`` is the
``file`` data type the instruction set exposes.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Dict, Optional

from .bytes_buffer import Bytes
from .exceptions import HiltiError, IO_ERROR
from .memory import Managed

__all__ = ["HiltiFile", "FileManager"]


class FileManager:
    """Serializes writes from many threads into per-path streams.

    Commands enter a queue; ``flush`` drains it on the caller's thread (the
    deterministic single-process mode), while ``start``/``stop`` run a real
    dedicated manager thread for the threaded configuration.
    """

    def __init__(self):
        self._queue = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._streams: Dict[str, object] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = False

    def submit(self, path: str, data: bytes) -> None:
        with self._wakeup:
            self._queue.append((path, data))
            self._wakeup.notify()

    def _write(self, path: str, data: bytes) -> None:
        stream = self._streams.get(path)
        if stream is None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            try:
                stream = open(path, "ab")
            except OSError as exc:
                raise HiltiError(IO_ERROR, f"cannot open {path}: {exc}") from exc
            self._streams[path] = stream
        stream.write(data)

    def flush(self) -> int:
        """Drain the queue synchronously; returns commands processed."""
        processed = 0
        while True:
            with self._lock:
                if not self._queue:
                    break
                path, data = self._queue.popleft()
            self._write(path, data)
            processed += 1
        for stream in self._streams.values():
            stream.flush()
        return processed

    def start(self) -> None:
        """Run a dedicated manager thread draining the queue."""
        if self._thread is not None:
            return
        self._stop = False

        def run():
            while True:
                with self._wakeup:
                    while not self._queue and not self._stop:
                        self._wakeup.wait(0.05)
                    if self._stop and not self._queue:
                        return
                    path, data = self._queue.popleft()
                self._write(path, data)

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        with self._wakeup:
            self._stop = True
            self._wakeup.notify_all()
        self._thread.join()
        self._thread = None
        self.flush()

    def close_all(self) -> None:
        self.flush()
        for stream in self._streams.values():
            stream.close()
        self._streams.clear()


class HiltiFile(Managed):
    """The ``file`` data type: open/write/close through the manager."""

    __slots__ = ("_manager", "_path", "_open")

    def __init__(self, manager: FileManager):
        super().__init__()
        self._manager = manager
        self._path: Optional[str] = None
        self._open = False

    def open(self, path: str, append: bool = True) -> None:
        if not append and os.path.exists(path):
            os.remove(path)
        self._path = path
        self._open = True

    @property
    def is_open(self) -> bool:
        return self._open

    @property
    def path(self) -> Optional[str]:
        return self._path

    def write(self, data) -> None:
        if not self._open or self._path is None:
            raise HiltiError(IO_ERROR, "write to closed file")
        if isinstance(data, Bytes):
            data = data.to_bytes()
        elif isinstance(data, str):
            data = data.encode("utf-8")
        self._manager.submit(self._path, data)

    def write_line(self, text: str) -> None:
        self.write(text + "\n")

    def close(self) -> None:
        self._open = False

    def __repr__(self) -> str:
        state = "open" if self._open else "closed"
        return f"<HiltiFile {self._path!r} {state}>"
