"""HILTI's ``bytes`` type: an incremental, freezable byte buffer.

``bytes`` objects are the unit of input for protocol parsing.  Host
applications append chunks of payload as packets arrive; generated parsers
walk the buffer with iterators and *suspend* when they reach the end of the
available data while the buffer is not yet frozen.  Freezing marks the
definitive end of input (e.g. TCP FIN).  Trimming releases consumed data so
memory stays proportional to the working set — the property the paper's
fiber discussion (section 5) checks for stacks, applied here to buffers.

Iterators are stable across ``append``: they hold absolute stream offsets,
not physical indices.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .exceptions import (
    HiltiError,
    INDEX_ERROR,
    VALUE_ERROR,
    WOULD_BLOCK,
)
from .memory import Managed

__all__ = ["Bytes", "BytesIter"]


class Bytes(Managed):
    """A growable byte buffer addressed by absolute stream offsets."""

    __slots__ = ("_data", "_base", "_frozen")

    def __init__(self, initial: bytes = b""):
        super().__init__()
        self._data = bytearray(initial)
        self._base = 0  # absolute offset of _data[0]
        self._frozen = False

    # -- construction and growth ------------------------------------------

    def append(self, data) -> None:
        """Append a chunk of raw data (bytes or another Bytes)."""
        if self._frozen:
            raise HiltiError(VALUE_ERROR, "append to frozen bytes object")
        if isinstance(data, Bytes):
            data = data.to_bytes()
        self._data.extend(data)

    def freeze(self) -> None:
        """Mark the definitive end of input."""
        self._frozen = True

    def unfreeze(self) -> None:
        self._frozen = False

    @property
    def is_frozen(self) -> bool:
        return self._frozen

    # -- extent ------------------------------------------------------------

    @property
    def begin_offset(self) -> int:
        """Absolute offset of the first retained byte."""
        return self._base

    @property
    def end_offset(self) -> int:
        """Absolute offset one past the last appended byte."""
        return self._base + len(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def begin(self) -> "BytesIter":
        return BytesIter(self, self._base)

    def end(self) -> "BytesIter":
        return BytesIter(self, self.end_offset)

    def at(self, offset: int) -> "BytesIter":
        return BytesIter(self, offset)

    # -- reading -----------------------------------------------------------

    def byte_at(self, offset: int) -> int:
        """The byte at absolute *offset*."""
        idx = offset - self._base
        if idx < 0:
            raise HiltiError(INDEX_ERROR, "offset before trimmed region")
        if idx >= len(self._data):
            raise HiltiError(INDEX_ERROR, "offset past end of bytes object")
        return self._data[idx]

    def read(self, offset: int, count: int) -> bytes:
        """Raw data for [offset, offset+count); raises if unavailable."""
        start = offset - self._base
        if start < 0:
            raise HiltiError(INDEX_ERROR, "read before trimmed region")
        if start + count > len(self._data):
            raise HiltiError(
                WOULD_BLOCK if not self._frozen else INDEX_ERROR,
                "read past end of bytes object",
            )
        return bytes(self._data[start:start + count])

    def available_from(self, offset: int) -> int:
        """Number of bytes available at and after absolute *offset*."""
        return max(0, self.end_offset - max(offset, self._base))

    def view_from(self, offset: int) -> memoryview:
        """Zero-copy view of the data from absolute *offset* to the end.

        The view is only valid until the next append/trim; the regexp
        engine uses it to scan tokens without copying the buffer.
        """
        start = offset - self._base
        if start < 0:
            raise HiltiError(INDEX_ERROR, "view before trimmed region")
        return memoryview(self._data)[start:]

    def sub(self, start: "BytesIter", stop: "BytesIter") -> "Bytes":
        """A new frozen Bytes with a copy of [start, stop)."""
        if start.offset > stop.offset:
            raise HiltiError(VALUE_ERROR, "bytes.sub: start after stop")
        data = self.read(start.offset, stop.offset - start.offset)
        result = Bytes(data)
        result.freeze()
        return result

    def to_bytes(self) -> bytes:
        return bytes(self._data)

    # -- searching ----------------------------------------------------------

    def find(self, needle: bytes, start: Optional["BytesIter"] = None) -> Tuple[bool, "BytesIter"]:
        """Search *needle*; returns (found, iterator).

        On success the iterator points at the first byte of the match; on
        failure it points to the first position from which a partial match
        could still complete once more data arrives (so incremental callers
        can resume the search there).
        """
        if isinstance(needle, Bytes):
            needle = needle.to_bytes()
        begin = start.offset if start is not None else self._base
        idx = self._data.find(needle, begin - self._base)
        if idx >= 0:
            return True, BytesIter(self, self._base + idx)
        # No full match: find the earliest suffix that is a needle prefix.
        tail_start = max(begin - self._base, len(self._data) - len(needle) + 1)
        for i in range(tail_start, len(self._data)):
            if needle.startswith(self._data[i:]):
                return False, BytesIter(self, self._base + i)
        return False, self.end()

    def startswith(self, prefix: bytes, start: Optional["BytesIter"] = None) -> bool:
        if isinstance(prefix, Bytes):
            prefix = prefix.to_bytes()
        begin = (start.offset if start is not None else self._base) - self._base
        return self._data.startswith(bytes(prefix), begin)

    # -- mutation / memory ---------------------------------------------------

    def trim(self, upto: "BytesIter") -> None:
        """Release all data before *upto*; iterators before it become invalid."""
        drop = upto.offset - self._base
        if drop <= 0:
            return
        if drop > len(self._data):
            raise HiltiError(INDEX_ERROR, "trim past end of bytes object")
        del self._data[:drop]
        self._base += drop

    # -- conversions ----------------------------------------------------------

    def to_int(self, base: int = 10) -> int:
        text = self.to_bytes()
        try:
            return int(text, base)
        except ValueError:
            raise HiltiError(
                VALUE_ERROR, f"cannot convert bytes {text!r} to integer"
            ) from None

    def lower(self) -> "Bytes":
        result = Bytes(bytes(self._data).lower())
        result.freeze()
        return result

    def upper(self) -> "Bytes":
        result = Bytes(bytes(self._data).upper())
        result.freeze()
        return result

    def strip(self) -> "Bytes":
        result = Bytes(bytes(self._data).strip())
        result.freeze()
        return result

    def split1(self, sep: bytes) -> Tuple["Bytes", "Bytes"]:
        """Split at the first occurrence of *sep* (like ``partition``)."""
        if isinstance(sep, Bytes):
            sep = sep.to_bytes()
        head, found, tail = bytes(self._data).partition(bytes(sep))
        first, second = Bytes(head), Bytes(tail if found else b"")
        first.freeze()
        second.freeze()
        return first, second

    def split(self, sep: bytes) -> list:
        if isinstance(sep, Bytes):
            sep = sep.to_bytes()
        parts = []
        for chunk in bytes(self._data).split(bytes(sep)):
            item = Bytes(chunk)
            item.freeze()
            parts.append(item)
        return parts

    # -- dunder conveniences ----------------------------------------------------

    def __iter__(self) -> Iterator[int]:
        return iter(bytes(self._data))

    def __eq__(self, other) -> bool:
        if isinstance(other, Bytes):
            return self._data == other._data
        if isinstance(other, (bytes, bytearray)):
            return self._data == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(bytes(self._data))

    def __bool__(self) -> bool:
        return len(self._data) > 0

    def __add__(self, other) -> "Bytes":
        result = Bytes(self.to_bytes())
        result.append(other)
        result.freeze()
        return result

    def __repr__(self) -> str:
        preview = bytes(self._data[:32])
        suffix = "..." if len(self._data) > 32 else ""
        state = " frozen" if self._frozen else ""
        return f"Bytes({preview!r}{suffix}, len={len(self._data)}{state})"


class BytesIter:
    """A position within a Bytes object, stable across appends."""

    __slots__ = ("bytes_obj", "offset")

    def __init__(self, bytes_obj: Bytes, offset: int):
        self.bytes_obj = bytes_obj
        self.offset = offset

    def deref(self) -> int:
        """The byte at this position."""
        return self.bytes_obj.byte_at(self.offset)

    def incr(self) -> "BytesIter":
        return BytesIter(self.bytes_obj, self.offset + 1)

    def incr_by(self, count: int) -> "BytesIter":
        return BytesIter(self.bytes_obj, self.offset + count)

    def distance(self, other: "BytesIter") -> int:
        """Bytes between this iterator and *other* (``other - self``)."""
        if other.bytes_obj is not self.bytes_obj:
            raise HiltiError(VALUE_ERROR, "iterators of different bytes objects")
        return other.offset - self.offset

    def at_end(self) -> bool:
        return self.offset >= self.bytes_obj.end_offset

    def available(self) -> int:
        return self.bytes_obj.available_from(self.offset)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BytesIter)
            and self.bytes_obj is other.bytes_obj
            and self.offset == other.offset
        )

    def __lt__(self, other) -> bool:
        if not isinstance(other, BytesIter) or other.bytes_obj is not self.bytes_obj:
            return NotImplemented
        return self.offset < other.offset

    def __hash__(self) -> int:
        return hash((id(self.bytes_obj), self.offset))

    def __repr__(self) -> str:
        return f"BytesIter(offset={self.offset})"
