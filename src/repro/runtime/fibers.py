"""Fibers: suspendable execution for incremental processing.

HILTI multiplexes analyses within a single hardware thread by switching
between stacks: when a parsing function runs out of input it freezes its
state into a fiber; when new payload arrives the application resumes the
fiber and parsing continues where it left off (paper, section 3.2).

The C implementation freezes machine stacks with ``setcontext``.  Our
execution engine owns its call state inside Python generators, so a fiber
is a handle on the engine's generator: suspension is the generator yielding
and resumption is ``send`` — O(1) state capture with memory proportional to
the frames actually in use, the property the paper verifies.
"""

from __future__ import annotations

from typing import Optional

from .exceptions import HiltiError, VALUE_ERROR
from .memory import Managed

__all__ = ["Fiber", "FiberStats", "YIELDED"]

# Sentinel distinguishing "the fiber yielded" from any return value.
YIELDED = object()


class FiberStats:
    """Counters for the fiber micro-benchmark (paper, section 5)."""

    __slots__ = ("switches", "created", "completed")

    def __init__(self):
        self.switches = 0
        self.created = 0
        self.completed = 0

    def __repr__(self) -> str:
        return (
            f"FiberStats(switches={self.switches}, created={self.created}, "
            f"completed={self.completed})"
        )


class Fiber(Managed):
    """A suspended-or-running computation with resume semantics."""

    __slots__ = ("_generator", "_done", "_result", "stats")

    def __init__(self, generator, stats: Optional[FiberStats] = None):
        super().__init__()
        self._generator = generator
        self._done = False
        self._result = None
        self.stats = stats
        if stats is not None:
            stats.created += 1

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self):
        if not self._done:
            raise HiltiError(VALUE_ERROR, "fiber has not completed yet")
        return self._result

    def resume(self):
        """Run until the next suspension point or completion.

        Returns the fiber's result once it completes, or the module-level
        ``YIELDED`` sentinel if it suspended again.
        """
        if self._done:
            raise HiltiError(VALUE_ERROR, "resuming a completed fiber")
        if self.stats is not None:
            self.stats.switches += 1
        try:
            next(self._generator)
        except StopIteration as stop:
            self._done = True
            self._result = stop.value
            if self.stats is not None:
                self.stats.completed += 1
            return self._result
        return YIELDED

    def abort(self) -> None:
        """Discard the suspended computation."""
        if not self._done:
            self._generator.close()
            self._done = True

    def __repr__(self) -> str:
        state = "done" if self._done else "suspended"
        return f"<Fiber {state}>"
