"""Per-virtual-thread execution contexts.

With each virtual thread HILTI's runtime associates a context object
storing all of the thread's relevant state: the array of thread-local
variables ("globals"), the currently executing fiber, the timers scheduled
within the thread, and the exception status (paper, section 5 "Runtime
Model").  Compiled functions receive the context as a hidden argument —
here it is the explicit first parameter of every step closure.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from ..core.values import Time
from .files import FileManager
from .memory import AllocationStats
from .profiler import ProfilerRegistry
from .timers import TimerMgr

__all__ = ["ExecutionContext"]


class ExecutionContext:
    """All mutable state of one virtual thread."""

    __slots__ = (
        "vthread_id",
        "globals",
        "timer_mgr",
        "alloc_stats",
        "profilers",
        "file_manager",
        "scheduler",
        "program",
        "fiber",
        "instr_count",
        "blocks_dispatched",
        "segments_dispatched",
        "instr_budget",
        "debug_stream",
        "print_stream",
        "hook_groups_disabled",
        "watchpoints",
        "pending_expirations",
    )

    def __init__(
        self,
        vthread_id: int = 0,
        file_manager: Optional[FileManager] = None,
        print_stream=None,
    ):
        self.vthread_id = vthread_id
        # Thread-local variable array; layout assigned by the linker.
        self.globals: List = []
        # The thread's global notion of time (timer_mgr.advance_global).
        self.timer_mgr = TimerMgr(name=f"global/vthread-{vthread_id}")
        self.alloc_stats = AllocationStats()
        self.profilers = ProfilerRegistry()
        self.file_manager = file_manager if file_manager is not None else FileManager()
        self.scheduler = None
        self.program = None
        self.fiber = None
        self.instr_count = 0
        # Tier dispatch counters (telemetry): basic blocks entered by the
        # interpreter, segments entered by the compiled-code trampoline.
        self.blocks_dispatched = 0
        self.segments_dispatched = 0
        # Watchdog: when set, execution raises Hilti::ProcessingTimeout as
        # soon as instr_count passes this value (one-shot; the engines
        # disarm it on firing so handlers can run).  Hosts arm it per unit
        # of untrusted work, e.g. per packet.
        self.instr_budget = None
        self.debug_stream = sys.stderr
        self.print_stream = print_stream if print_stream is not None else sys.stdout
        self.hook_groups_disabled = set()
        # Watchpoints: [predicate, action, fired] triples evaluated by
        # watchpoint.check / Program.check_watchpoints (the paper's
        # footnote-4 extension supporting Bro's `when` statement).
        self.watchpoints = []
        # Container-eviction callbacks queued during timer advancement;
        # the engine drains them right after the advance that caused
        # them (map.on_expire / set.on_expire).
        self.pending_expirations = []

    @property
    def now(self) -> Time:
        return self.timer_mgr.current

    def arm_watchdog(self, budget: int) -> None:
        """Allow *budget* more instructions before Hilti::ProcessingTimeout."""
        self.instr_budget = self.instr_count + budget

    def disarm_watchdog(self) -> None:
        self.instr_budget = None

    def clone_for_vthread(self, vthread_id: int) -> "ExecutionContext":
        """A fresh context for another virtual thread.

        Thread-locals start from the program's initializers (the scheduler
        re-runs global initialization per thread); the file manager is
        shared — its command queue serializes output, matching the paper's
        single-manager design.
        """
        ctx = ExecutionContext(
            vthread_id=vthread_id,
            file_manager=self.file_manager,
            print_stream=self.print_stream,
        )
        ctx.scheduler = self.scheduler
        ctx.program = self.program
        return ctx

    def __repr__(self) -> str:
        return (
            f"<ExecutionContext vthread={self.vthread_id} "
            f"globals={len(self.globals)} instrs={self.instr_count}>"
        )
