"""HILTI exception model.

HILTI programs raise typed exceptions for robust error handling; the
machine model guarantees that instructions validate their operands and turn
undefined behaviour into catchable exceptions (paper, section 7 "Safe
Execution Environment").  ``HiltiError`` is the runtime carrier that
propagates through both execution tiers; ``except_type`` identifies the
HILTI-level exception type so ``try``/``catch`` clauses can match it.
"""

from __future__ import annotations

from typing import Optional

from ..core import types as ht

__all__ = [
    "HiltiError",
    "EXCEPTION_BASE",
    "INDEX_ERROR",
    "UNDEFINED_VALUE",
    "OVERLAY_NOT_ATTACHED",
    "VALUE_ERROR",
    "DIVISION_BY_ZERO",
    "WOULD_BLOCK",
    "TYPE_ERROR",
    "PATTERN_ERROR",
    "IO_ERROR",
    "CHANNEL_FULL",
    "CHANNEL_EMPTY",
    "TIMER_ALREADY_SCHEDULED",
    "NOT_IMPLEMENTED",
    "ASSERTION_ERROR",
    "INTERNAL_ERROR",
    "STACK_LIMIT_EXCEEDED",
    "PROCESSING_TIMEOUT",
    "INJECTED_FAULT",
    "builtin_exception_types",
]

# The built-in exception hierarchy of the Hilti standard module.
EXCEPTION_BASE = ht.ExceptionT("Hilti::Exception")
INDEX_ERROR = ht.ExceptionT("Hilti::IndexError", EXCEPTION_BASE)
UNDEFINED_VALUE = ht.ExceptionT("Hilti::UndefinedValue", EXCEPTION_BASE)
OVERLAY_NOT_ATTACHED = ht.ExceptionT("Hilti::OverlayNotAttached", EXCEPTION_BASE)
VALUE_ERROR = ht.ExceptionT("Hilti::ValueError", EXCEPTION_BASE)
DIVISION_BY_ZERO = ht.ExceptionT("Hilti::DivisionByZero", EXCEPTION_BASE)
WOULD_BLOCK = ht.ExceptionT("Hilti::WouldBlock", EXCEPTION_BASE)
TYPE_ERROR = ht.ExceptionT("Hilti::TypeError", EXCEPTION_BASE)
PATTERN_ERROR = ht.ExceptionT("Hilti::PatternError", EXCEPTION_BASE)
IO_ERROR = ht.ExceptionT("Hilti::IOError", EXCEPTION_BASE)
CHANNEL_FULL = ht.ExceptionT("Hilti::ChannelFull", EXCEPTION_BASE)
CHANNEL_EMPTY = ht.ExceptionT("Hilti::ChannelEmpty", EXCEPTION_BASE)
TIMER_ALREADY_SCHEDULED = ht.ExceptionT("Hilti::TimerAlreadyScheduled", EXCEPTION_BASE)
NOT_IMPLEMENTED = ht.ExceptionT("Hilti::NotImplemented", EXCEPTION_BASE)
ASSERTION_ERROR = ht.ExceptionT("Hilti::AssertionError", EXCEPTION_BASE)
INTERNAL_ERROR = ht.ExceptionT("Hilti::InternalError", EXCEPTION_BASE)
STACK_LIMIT_EXCEEDED = ht.ExceptionT("Hilti::StackLimitExceeded", EXCEPTION_BASE)
# Raised by the per-packet watchdog when an execution context exhausts its
# instruction budget: runaway analysis becomes a catchable exception.
PROCESSING_TIMEOUT = ht.ExceptionT("Hilti::ProcessingTimeout", EXCEPTION_BASE)
# Raised by the deterministic fault-injection framework (repro.runtime.faults).
INJECTED_FAULT = ht.ExceptionT("Hilti::InjectedFault", EXCEPTION_BASE)

_BUILTINS = {
    t.type_name: t
    for t in (
        EXCEPTION_BASE,
        INDEX_ERROR,
        UNDEFINED_VALUE,
        OVERLAY_NOT_ATTACHED,
        VALUE_ERROR,
        DIVISION_BY_ZERO,
        WOULD_BLOCK,
        TYPE_ERROR,
        PATTERN_ERROR,
        IO_ERROR,
        CHANNEL_FULL,
        CHANNEL_EMPTY,
        TIMER_ALREADY_SCHEDULED,
        NOT_IMPLEMENTED,
        ASSERTION_ERROR,
        INTERNAL_ERROR,
        STACK_LIMIT_EXCEEDED,
        PROCESSING_TIMEOUT,
        INJECTED_FAULT,
    )
}


def builtin_exception_types() -> dict:
    """Name → type mapping of the built-in ``Hilti::*`` exceptions."""
    return dict(_BUILTINS)


class HiltiError(Exception):
    """A HILTI-level exception travelling through the execution engine.

    Uncaught, it surfaces to the host application through the generated
    stubs, mirroring the paper's C-stub ``hlt_exception **`` out-parameter.
    """

    def __init__(self, except_type: ht.ExceptionT, message: str = "", arg=None):
        super().__init__(message or except_type.type_name)
        self.except_type = except_type
        self.message = message
        self.arg = arg

    def matches(self, catch_type: ht.ExceptionT) -> bool:
        """True if a ``catch`` clause for *catch_type* handles this."""
        return self.except_type.is_a(catch_type)

    def __repr__(self) -> str:
        return f"HiltiError({self.except_type.type_name}, {self.message!r})"
