"""The sequential pipeline: pcap ingest driving one :class:`HostApp`.

Owns everything between the trace file and the app callbacks — the
tolerant pcap reader with skip/resync accounting, the ``pcap.record``
fault-injection point, the robustness counters the exporter publishes —
plus the unified telemetry file emitters (``metrics.jsonl``,
``stats.log``, ``prof.log``, ``flows.jsonl``, ``cpu_breakdown.json``)
that every host application shares.

Extracted from ``repro.apps.bro.main`` (which now delegates here); the
BPF filter, firewall, and BinPAC++ drivers get the identical ingest and
reporting for free.
"""

from __future__ import annotations

import json as _json
import os as _os
from typing import Dict, List, Optional, Tuple

from ..runtime.exceptions import HiltiError
from ..runtime.faults import SITE_PCAP_RECORD
from ..runtime.telemetry import cpu_breakdown_report, render_stats_log
from .app import HostApp

__all__ = [
    "Pipeline",
    "write_flowrecords_jsonl",
    "write_flows_jsonl",
    "write_metrics_jsonl",
    "write_parallel_prof_log",
    "write_prof_log",
    "write_stats_log",
]


# --------------------------------------------------------------------------
# Shared telemetry file emitters
# --------------------------------------------------------------------------


def write_metrics_jsonl(path: str, registry, meta: Optional[Dict] = None,
                        ) -> str:
    """Dump a MetricsRegistry as schema-tagged JSON lines."""
    with open(path, "w") as stream:
        registry.emit_jsonl(stream, meta=meta)
    return path


def write_stats_log(path: str, stats: Dict,
                    sections: Optional[Dict[str, Dict]] = None) -> str:
    """Render the human-readable run summary."""
    with open(path, "w") as stream:
        stream.write(render_stats_log(stats, sections))
    return path


def write_prof_log(path: str, contexts: List[Tuple[str, object]]) -> str:
    """Dump every execution context's profilers, labeled."""
    with open(path, "w") as stream:
        for label, ctx in contexts:
            stream.write(f"# context {label}\n")
            ctx.profilers.dump(stream)
    return path


def write_parallel_prof_log(path: str, results: List[Dict]) -> str:
    """Assemble the per-worker profiler dump a parallel run harvested:
    each lane result's ``prof`` entry (``(label, text)`` pairs rendered
    worker-side by :func:`repro.host.parallel.prof_snapshots`) lands
    under a ``# worker N context L`` section header."""
    with open(path, "w") as stream:
        for index, result in enumerate(results):
            for label, text in result.get("prof") or []:
                stream.write(f"# worker {index} context {label}\n")
                stream.write(text)
    return path


def write_flows_jsonl(path: str, tracer) -> str:
    """Dump the tracer's per-flow span trees as JSON lines."""
    with open(path, "w") as stream:
        tracer.emit_jsonl(stream)
    return path


# Re-exported next to the other emitters so telemetry writers import
# the whole family from one place.
from ..net.flowrecord import write_flowrecords_jsonl  # noqa: E402


# --------------------------------------------------------------------------
# The sequential pipeline
# --------------------------------------------------------------------------


class Pipeline:
    """Drive one :class:`HostApp` over a packet source."""

    def __init__(self, app: HostApp):
        self.app = app

    # -- running -----------------------------------------------------------

    def run(self, packets) -> Dict:
        """Process an iterable of ``(Time, frame)``; returns app stats."""
        return self.app.run(packets)

    def result_lines(self) -> List[str]:
        return sorted(self.app.result_lines())

    def flow_record_lines(self) -> List[str]:
        return self.app.flow_record_lines()

    def _pcap_records(self, reader):
        """Iterate trace records through the ``pcap.record`` injection
        point; a fault there skips the record like a corrupt one in
        tolerant mode.  The reader's final counters land in
        ``services.pcap_stats`` (in place — the exporter and any aliases
        keep seeing them) once the generator is exhausted, which happens
        before the run takes its totals."""
        services = self.app.services
        for record in reader:
            try:
                services.faults.check(SITE_PCAP_RECORD)
            except HiltiError:
                services.health.record_error(SITE_PCAP_RECORD)
                services.health.records_skipped += 1
                continue
            yield record
        services.pcap_stats.clear()
        services.pcap_stats.update({
            "records_read": reader.packets_read,
            "records_skipped": reader.records_skipped,
            "resyncs": reader.resyncs,
        })

    def run_pcap(self, path: str, tolerant: bool = False) -> Dict:
        """Drive the app from a pcap trace file."""
        from ..net.pcap import PcapReader

        services = self.app.services
        with PcapReader(path, tolerant=tolerant) as reader:
            stats = self.run(self._pcap_records(reader))
            skipped = reader.records_skipped
        if skipped:
            services.health.records_skipped += skipped
        stats["health"] = services.health.as_dict(services.faults)
        return stats

    # -- reporting ---------------------------------------------------------

    def cpu_breakdown(self, config: Optional[Dict] = None) -> Dict:
        """The Figures 9/10 machine-readable report for the last run."""
        if not self.app.stats:
            raise RuntimeError("cpu_breakdown() requires a completed run")
        if config is None:
            config = {"app": self.app.name}
        return cpu_breakdown_report(self.app.stats, config=config)

    def write_cpu_breakdown(self, path: str,
                            config: Optional[Dict] = None) -> Dict:
        report = self.cpu_breakdown(config)
        with open(path, "w") as stream:
            _json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        return report

    def write_telemetry(self, logdir: str,
                        meta: Optional[Dict] = None,
                        sections: Optional[Dict[str, Dict]] = None,
                        ) -> List[str]:
        """Emit the reporting layer's files into *logdir*; returns the
        paths written.  ``prof.log`` appears when the app drove HILTI
        execution contexts, ``flows.jsonl`` when tracing was armed."""
        app = self.app
        _os.makedirs(logdir, exist_ok=True)
        written: List[str] = []
        if meta is None:
            meta = {"app": app.name}
        written.append(write_metrics_jsonl(
            _os.path.join(logdir, "metrics.jsonl"),
            app.telemetry.metrics, meta=meta))
        if sections is None:
            sections = {}
            health = app.stats.get("health") if app.stats else None
            if health:
                sections["health"] = {
                    key: health[key]
                    for key in ("flows_quarantined", "records_skipped",
                                "watchdog_trips", "injected_faults")
                    if key in health
                }
            engines = {
                f"{label}.instructions": ctx.instr_count
                for label, ctx in app.engine_contexts()
            }
            if engines:
                sections["engine"] = engines
        written.append(write_stats_log(
            _os.path.join(logdir, "stats.log"), app.stats, sections))
        written.append(write_flowrecords_jsonl(
            _os.path.join(logdir, "flow_records.jsonl"), app.name,
            app.flow_record_lines()))
        contexts = list(app.engine_contexts())
        if contexts:
            written.append(write_prof_log(
                _os.path.join(logdir, "prof.log"), contexts))
        if app.telemetry.tracer.enabled:
            written.append(write_flows_jsonl(
                _os.path.join(logdir, "flows.jsonl"),
                app.telemetry.tracer))
        return written
