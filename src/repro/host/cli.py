"""The shared driver surface of every host-application tool.

``repro.tools.{bro,bpf_filter,firewall,pac_driver}`` all expose the same
controls — robustness (``--tolerant-pcap``, ``--watchdog``,
``--inject``, ``--fault-seed``, ``--health``), telemetry (``--metrics``,
``--cpu-breakdown``, ``--trace-flows``), and parallelism
(``--parallel``, ``--workers``, ``--vthreads``, ``--backend``) — built
from this module's argparse helpers and driven by :func:`run_host_app`,
the generic main loop over :class:`~repro.host.pipeline.Pipeline` /
:class:`~repro.host.parallel.ParallelPipeline`.
"""

from __future__ import annotations

import argparse
import hashlib
import os as _os
from typing import Callable, Dict, List, Optional

from ..runtime.faults import FaultInjector, registered_sites
from ..runtime.telemetry import Telemetry
from .app import HostApp, PipelineServices
from .parallel import LaneSpec, ParallelPipeline
from .pipeline import Pipeline

__all__ = [
    "add_pipeline_args",
    "fingerprint",
    "parse_injections",
    "print_health",
    "run_host_app",
]


def parse_injections(specs, seed, prog: str = "bro"):
    """``SITE=RATE`` pairs -> FaultInjector (None when no specs)."""
    if not specs:
        return None
    sites = registered_sites()
    rates = {}
    for spec in specs:
        site, sep, rate = spec.partition("=")
        if not sep:
            raise SystemExit(
                f"{prog}: --inject expects SITE=RATE, got {spec!r}")
        if site != "all" and site not in sites:
            known = ", ".join(sorted(sites))
            raise SystemExit(
                f"{prog}: unknown injection site {site!r} (known: {known})")
        try:
            value = float(rate)
        except ValueError:
            raise SystemExit(f"{prog}: bad injection rate in {spec!r}")
        if site == "all":
            for name in sites:
                rates.setdefault(name, value)
        else:
            rates[site] = value
    return FaultInjector(seed=seed, rates=rates)


def add_pipeline_args(parser: argparse.ArgumentParser,
                      default_workers: int = 4) -> None:
    """The flag surface every pipeline driver shares."""
    sites = ", ".join(sorted(registered_sites()))
    parser.add_argument("-r", "--read", required=True, metavar="TRACE",
                        help="pcap file to read")
    parser.add_argument("--logdir", default="logs",
                        help="directory for result and report files")
    parser.add_argument("--stats", action="store_true",
                        help="print the per-component timing breakdown")
    parser.add_argument("--tolerant-pcap", action="store_true",
                        help="skip truncated/corrupt trace records "
                             "instead of aborting (counted in the "
                             "health report)")
    parser.add_argument("--watchdog", type=int, default=None, metavar="N",
                        help="per-packet HILTI instruction budget; "
                             "exceeding it raises a catchable "
                             "Hilti::ProcessingTimeout")
    parser.add_argument("--inject", action="append", metavar="SITE=RATE",
                        help="arm the deterministic fault injector at "
                             "SITE with probability RATE per pass "
                             f"(SITE is 'all' or one of: {sites}); "
                             "repeatable")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault injector's per-site "
                             "random streams (default 0)")
    parser.add_argument("--health", action="store_true",
                        help="print the recovery/health report "
                             "(quarantines, skipped records, watchdog "
                             "trips, per-site error budget)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect the unified metrics registry and "
                             "write metrics.jsonl and stats.log into "
                             "the log directory")
    parser.add_argument("--cpu-breakdown", action="store_true",
                        help="write the Figures 9/10 per-component CPU "
                             "report (cpu_breakdown.json) and print the "
                             "shares")
    parser.add_argument("--trace-flows", action="store_true",
                        help="record per-flow span trees into "
                             "flows.jsonl")
    parser.add_argument("--parallel", action="store_true",
                        help="flow-parallel pipeline: hash flows to "
                             "vthreads, analyze on worker lanes, merge "
                             "the results deterministically")
    parser.add_argument("--workers", type=int, default=default_workers,
                        metavar="N",
                        help=f"parallel worker count "
                             f"(default {default_workers})")
    parser.add_argument("--vthreads", type=int, default=None, metavar="M",
                        help="virtual thread supply (default 4*workers)")
    parser.add_argument("--backend",
                        choices=["vthread", "threaded", "process"],
                        default="process",
                        help="parallel drive mode: deterministic vthread "
                             "scheduler, real threads, or one process "
                             "per worker (default process)")


def print_health(health: Dict) -> None:
    """The shared ``--health`` report block."""
    print("health:")
    for key in ("flows_quarantined", "records_skipped",
                "watchdog_trips", "injected_faults", "tier_fallback"):
        print(f"  {key}: {health[key]}")
    breaker = health["breaker"]
    print(f"  breaker: {breaker['violations']}/{breaker['flows']} "
          f"flows violated (threshold {breaker['threshold']}, "
          f"tripped={breaker['tripped']})")
    for site, count in sorted(health["site_errors"].items()):
        print(f"  errors[{site}]: {count}")


def fingerprint(lines: List[str]) -> str:
    """The byte-identity fingerprint of a result-line stream."""
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8", "surrogateescape"))
        digest.update(b"\n")
    return digest.hexdigest()


def run_host_app(
    args: argparse.Namespace,
    prog: str,
    make_app: Callable[[argparse.Namespace, PipelineServices], HostApp],
    make_spec: Callable[[argparse.Namespace], LaneSpec],
    results_name: str = "results.log",
    summarize: Optional[Callable[[Dict], str]] = None,
) -> int:
    """The generic driver main: run *make_app*'s application over the
    trace (sequentially or flow-parallel), write the sorted result lines
    and any armed telemetry reports into ``--logdir``, print the shared
    summary.  Returns the process exit code."""
    telemetry = Telemetry(metrics=args.metrics, trace=args.trace_flows)
    if args.parallel:
        if args.inject:
            raise SystemExit(
                f"{prog}: --inject is sequential-only (the injector's "
                "per-site random streams diverge across lanes)")
        pipe = ParallelPipeline(
            make_spec(args),
            workers=args.workers,
            vthreads=args.vthreads,
            backend=args.backend,
            telemetry=telemetry,
        )
        stats = pipe.run_pcap(args.read, tolerant=args.tolerant_pcap)
        lines = pipe.result_lines()
        writers = pipe
    else:
        services = PipelineServices(
            faults=parse_injections(args.inject, args.fault_seed, prog),
            watchdog_budget=args.watchdog,
            telemetry=telemetry,
        )
        app = make_app(args, services)
        writers = Pipeline(app)
        stats = writers.run_pcap(args.read, tolerant=args.tolerant_pcap)
        lines = sorted(app.result_lines())

    _os.makedirs(args.logdir, exist_ok=True)
    results_path = _os.path.join(args.logdir, results_name)
    with open(results_path, "w") as stream:
        for line in lines:
            stream.write(line + "\n")

    extra = summarize(stats) if summarize is not None else ""
    print(f"processed {stats['packets']} packets{extra}")
    if args.parallel:
        print(f"  parallel: {stats['lanes']} lanes on "
              f"{stats['workers']} {stats['backend']} workers "
              f"({stats['vthreads']} vthreads)")
    print(f"  {results_path}: {len(lines)} lines")
    print(f"  fingerprint: sha256:{fingerprint(lines)}")
    if args.stats:
        for key in ("parsing_ns", "script_ns", "glue_ns", "other_ns"):
            print(f"  {key[:-3]:>8}: {stats[key] / 1e6:10.2f} ms")
    if args.metrics or args.trace_flows:
        for path in writers.write_telemetry(args.logdir):
            print(f"  wrote {path}")
    if args.cpu_breakdown:
        import json as _json

        path = _os.path.join(args.logdir, "cpu_breakdown.json")
        report = writers.cpu_breakdown()
        with open(path, "w") as stream:
            _json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"  wrote {path}")
        print("cpu breakdown:")
        for name in ("parsing", "script", "glue", "other"):
            entry = report["components"][name]
            print(f"  {name:>8}: {entry['share']:6.2f}% "
                  f"({entry['ns'] / 1e6:.2f} ms)")
    if args.health:
        print_health(stats["health"])
    return 0
