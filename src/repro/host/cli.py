"""The shared driver surface of every host-application tool.

``repro.tools.{bro,bpf_filter,firewall,pac_driver}`` all expose the same
controls — robustness (``--tolerant-pcap``, ``--watchdog``,
``--inject``, ``--fault-seed``, ``--health``), telemetry (``--metrics``,
``--cpu-breakdown``, ``--trace-flows``), session bounds
(``--max-sessions``, ``--session-ttl``, ``--memory-budget``),
parallelism (``--parallel``, ``--workers``, ``--vthreads``,
``--backend``), and the streaming service mode (``--serve`` and
friends) — built from this module's argparse helpers and driven by
:func:`run_host_app`, the generic main loop over
:class:`~repro.host.pipeline.Pipeline` /
:class:`~repro.host.parallel.ParallelPipeline` /
:class:`~repro.host.service.HostService`.

A batch run interrupted mid-trace (SIGINT or SIGTERM) does not lose its
partial work: the driver finalizes the app, writes the partial
``results.log`` plus any armed telemetry files, and exits 130.
"""

from __future__ import annotations

import argparse
import hashlib
import os as _os
import signal as _signal
import threading as _threading
from typing import Callable, Dict, List, Optional

from ..runtime.faults import FaultInjector, registered_sites
from ..runtime.telemetry import Telemetry
from .app import HostApp, PipelineServices
from .parallel import LaneSpec, ParallelPipeline, default_backend
from .pipeline import Pipeline

__all__ = [
    "add_pipeline_args",
    "add_service_args",
    "fingerprint",
    "parse_injection_rates",
    "parse_injections",
    "print_health",
    "run_host_app",
    "run_host_service",
]

#: Exit code of a run cut short by SIGINT/SIGTERM (after the partial
#: results and telemetry were flushed) — 128 + SIGINT, the shell idiom.
EXIT_INTERRUPTED = 130


def parse_injection_rates(specs, prog: str = "bro",
                          ) -> Optional[Dict[str, float]]:
    """``SITE=RATE`` pairs -> per-site rate map (None when no specs)."""
    if not specs:
        return None
    sites = registered_sites()
    rates: Dict[str, float] = {}
    for spec in specs:
        site, sep, rate = spec.partition("=")
        if not sep:
            raise SystemExit(
                f"{prog}: --inject expects SITE=RATE, got {spec!r}")
        if site != "all" and site not in sites:
            known = ", ".join(sorted(sites))
            raise SystemExit(
                f"{prog}: unknown injection site {site!r} (known: {known})")
        try:
            value = float(rate)
        except ValueError:
            raise SystemExit(f"{prog}: bad injection rate in {spec!r}")
        if site == "all":
            for name in sites:
                rates.setdefault(name, value)
        else:
            rates[site] = value
    return rates


def parse_injections(specs, seed, prog: str = "bro"):
    """``SITE=RATE`` pairs -> FaultInjector (None when no specs)."""
    rates = parse_injection_rates(specs, prog)
    if rates is None:
        return None
    return FaultInjector(seed=seed, rates=rates)


def add_pipeline_args(parser: argparse.ArgumentParser,
                      default_workers: int = 4) -> None:
    """The flag surface every pipeline driver shares."""
    sites = ", ".join(sorted(registered_sites()))
    parser.add_argument("-r", "--read", required=True, metavar="TRACE",
                        help="pcap file to read")
    parser.add_argument("--logdir", default="logs",
                        help="directory for result and report files")
    parser.add_argument("--stats", action="store_true",
                        help="print the per-component timing breakdown")
    parser.add_argument("--tolerant-pcap", action="store_true",
                        help="skip truncated/corrupt trace records "
                             "instead of aborting (counted in the "
                             "health report)")
    parser.add_argument("--watchdog", type=int, default=None, metavar="N",
                        help="per-packet HILTI instruction budget; "
                             "exceeding it raises a catchable "
                             "Hilti::ProcessingTimeout")
    parser.add_argument("--inject", action="append", metavar="SITE=RATE",
                        help="arm the deterministic fault injector at "
                             "SITE with probability RATE per pass "
                             f"(SITE is 'all' or one of: {sites}); "
                             "repeatable")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault injector's per-site "
                             "random streams (default 0)")
    parser.add_argument("--health", action="store_true",
                        help="print the recovery/health report "
                             "(quarantines, skipped records, watchdog "
                             "trips, per-site error budget)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect the unified metrics registry and "
                             "write metrics.jsonl and stats.log into "
                             "the log directory")
    parser.add_argument("--cpu-breakdown", action="store_true",
                        help="write the Figures 9/10 per-component CPU "
                             "report (cpu_breakdown.json) and print the "
                             "shares")
    parser.add_argument("--trace-flows", action="store_true",
                        help="record per-flow span trees into "
                             "flows.jsonl")
    parser.add_argument("--max-sessions", type=int, default=None,
                        metavar="N",
                        help="hard cap on live per-session state; the "
                             "least-recently-active session is evicted "
                             "(with its final-flush events) to stay "
                             "under it")
    parser.add_argument("--session-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="expire sessions idle for SECONDS of "
                             "network time (final-flush events still "
                             "delivered)")
    parser.add_argument("--memory-budget", type=int, default=None,
                        metavar="BYTES",
                        help="evict oldest sessions when buffered "
                             "reassembly payload exceeds BYTES")
    parser.add_argument("--parallel", action="store_true",
                        help="flow-parallel pipeline: hash flows to "
                             "vthreads, analyze on worker lanes, merge "
                             "the results deterministically")
    parser.add_argument("--workers", type=int, default=default_workers,
                        metavar="N",
                        help=f"parallel worker count "
                             f"(default {default_workers})")
    parser.add_argument("--vthreads", type=int, default=None, metavar="M",
                        help="virtual thread supply (default 4*workers)")
    parser.add_argument("--backend",
                        choices=["vthread", "threaded", "process", "pool"],
                        default=None,
                        help="parallel drive mode: deterministic vthread "
                             "scheduler, real threads, one process per "
                             "worker, or the persistent shared-memory "
                             "worker pool (default: pool on multi-core "
                             "hosts, else process)")
    parser.add_argument("--start-method",
                        choices=["fork", "spawn"], default=None,
                        help="multiprocessing start method for the "
                             "process/pool backends (default: fork "
                             "where available, else spawn)")


def add_service_args(parser: argparse.ArgumentParser) -> None:
    """The streaming-service flag surface (see docs/SERVICE.md)."""
    group = parser.add_argument_group(
        "service mode",
        "run as a long-lived supervised daemon instead of one batch "
        "pass; SIGTERM/SIGINT drain gracefully")
    group.add_argument("--serve", action="store_true",
                       help="loop the trace through supervised lanes "
                            "with bounded queues and serve the HTTP "
                            "control surface until stopped")
    group.add_argument("--loops", type=int, default=0, metavar="N",
                       help="replay the trace N times (0 = loop "
                            "forever, timestamps continued monotonically"
                            "; default 0)")
    group.add_argument("--rate-pps", type=float, default=None,
                       metavar="PPS",
                       help="pace replay to PPS packets/second "
                            "(default: as fast as possible)")
    group.add_argument("--lanes", type=int, default=2, metavar="N",
                       help="supervised analysis lanes, each with an "
                            "isolated app instance (default 2)")
    group.add_argument("--queue-cap", type=int, default=512, metavar="N",
                       help="bounded per-lane queue capacity "
                            "(default 512)")
    group.add_argument("--lane-transport", choices=["thread", "pool"],
                       default="thread",
                       help="lane execution substrate: in-process "
                            "threads fed by object queues, or the "
                            "persistent worker pool fed by shared-"
                            "memory packet rings (default thread)")
    group.add_argument("--overload", choices=["block", "shed"],
                       default="block",
                       help="full-queue policy: 'block' applies "
                            "backpressure to ingest, 'shed' drops the "
                            "packet and counts it (default block)")
    group.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="stop and drain after SECONDS of wall clock")
    group.add_argument("--tick", type=float, default=1.0,
                       metavar="SECONDS",
                       help="aggregator sampling period feeding the "
                            "1s/10s/60s rolling windows (default 1.0)")
    group.add_argument("--http-host", default="127.0.0.1",
                       help="control-surface bind address "
                            "(default 127.0.0.1)")
    group.add_argument("--http-port", type=int, default=0, metavar="PORT",
                       help="control-surface port (0 = ephemeral, "
                            "recorded in service.json; -1 disables the "
                            "HTTP surface)")
    group.add_argument("--drain-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="max wait for lanes to finish their queues "
                            "at shutdown (default 30)")
    group.add_argument("--backoff-base", type=float, default=0.25,
                       metavar="SECONDS",
                       help="first lane-restart delay; doubles per "
                            "consecutive crash up to --backoff-cap "
                            "(default 0.25)")
    group.add_argument("--backoff-cap", type=float, default=30.0,
                       metavar="SECONDS",
                       help="upper bound on the lane-restart delay "
                            "(default 30)")


def print_health(health: Dict) -> None:
    """The shared ``--health`` report block."""
    print("health:")
    for key in ("flows_quarantined", "records_skipped",
                "watchdog_trips", "injected_faults", "tier_fallback"):
        print(f"  {key}: {health[key]}")
    breaker = health["breaker"]
    print(f"  breaker: {breaker['violations']}/{breaker['flows']} "
          f"flows violated (threshold {breaker['threshold']}, "
          f"tripped={breaker['tripped']})")
    for site, count in sorted(health["site_errors"].items()):
        print(f"  errors[{site}]: {count}")


def fingerprint(lines: List[str]) -> str:
    """The byte-identity fingerprint of a result-line stream."""
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8", "surrogateescape"))
        digest.update(b"\n")
    return digest.hexdigest()


def _install_interrupt_handler():
    """Route SIGTERM through KeyboardInterrupt so one except clause
    drains both signals; returns the previous handler (None when not
    on the main thread, where signal installation is impossible)."""
    if _threading.current_thread() is not _threading.main_thread():
        return None

    def _handler(signum, frame):
        raise KeyboardInterrupt

    return _signal.signal(_signal.SIGTERM, _handler)


def _restore_interrupt_handler(previous) -> None:
    if previous is not None:
        _signal.signal(_signal.SIGTERM, previous)


def run_host_app(
    args: argparse.Namespace,
    prog: str,
    make_app: Callable[[argparse.Namespace, PipelineServices], HostApp],
    make_spec: Callable[[argparse.Namespace], LaneSpec],
    results_name: str = "results.log",
    summarize: Optional[Callable[[Dict], str]] = None,
) -> int:
    """The generic driver main: run *make_app*'s application over the
    trace (sequentially, flow-parallel, or as a streaming service),
    write the sorted result lines and any armed telemetry reports into
    ``--logdir``, print the shared summary.  Returns the process exit
    code."""
    if getattr(args, "serve", False):
        return run_host_service(args, prog, make_app, make_spec,
                                results_name)

    telemetry = Telemetry(metrics=args.metrics, trace=args.trace_flows)
    interrupted = False
    if args.parallel:
        if args.inject:
            raise SystemExit(
                f"{prog}: --inject is sequential-only (the injector's "
                "per-site random streams diverge across lanes)")
        if (args.max_sessions is not None or args.session_ttl is not None
                or args.memory_budget is not None):
            raise SystemExit(
                f"{prog}: session bounds (--max-sessions/--session-ttl/"
                "--memory-budget) are sequential-only (a global LRU "
                "diverges across lanes)")
        pipe = ParallelPipeline(
            make_spec(args),
            workers=args.workers,
            vthreads=args.vthreads,
            backend=(args.backend if args.backend is not None
                     else default_backend()),
            telemetry=telemetry,
            start_method=getattr(args, "start_method", None),
        )
        previous = _install_interrupt_handler()
        try:
            stats = pipe.run_pcap(args.read, tolerant=args.tolerant_pcap)
        except KeyboardInterrupt:
            # Worker lanes live in other processes/threads; their
            # partial state is unreachable, so there is nothing to
            # flush — report the interruption honestly and exit.
            print(f"{prog}: interrupted — parallel run abandoned "
                  "(no partial telemetry)")
            return EXIT_INTERRUPTED
        finally:
            _restore_interrupt_handler(previous)
        lines = pipe.result_lines()
        writers = pipe
        app_name = pipe.spec.app_name
    else:
        services = PipelineServices(
            faults=parse_injections(args.inject, args.fault_seed, prog),
            watchdog_budget=args.watchdog,
            telemetry=telemetry,
            max_sessions=args.max_sessions,
            session_ttl=args.session_ttl,
            memory_budget_bytes=args.memory_budget,
        )
        app = make_app(args, services)
        writers = Pipeline(app)
        previous = _install_interrupt_handler()
        try:
            stats = writers.run_pcap(args.read, tolerant=args.tolerant_pcap)
        except KeyboardInterrupt:
            # The graceful-drain path: finalize whatever the app
            # processed so far so the partial results and telemetry
            # survive the interruption (pre-fix they were lost).
            interrupted = True
            try:
                stats = app.on_end()
            except Exception:
                stats = dict(app.stats) if app.stats else {
                    "app": app.name, "packets": app.packets,
                }
            stats.setdefault(
                "health", services.health.as_dict(services.faults))
        finally:
            _restore_interrupt_handler(previous)
        try:
            lines = sorted(app.result_lines())
        except Exception:
            lines = []
        app_name = app.name

    _os.makedirs(args.logdir, exist_ok=True)
    results_path = _os.path.join(args.logdir, results_name)
    with open(results_path, "w") as stream:
        for line in lines:
            stream.write(line + "\n")

    # The flow ledger always ships: every run leaves a schema-valid
    # flow_records.jsonl next to results.log (empty stream for apps
    # without per-flow state).
    from ..net.flowrecord import write_flowrecords_jsonl
    try:
        record_lines = writers.flow_record_lines()
    except Exception:
        record_lines = []
    records_path = write_flowrecords_jsonl(
        _os.path.join(args.logdir, "flow_records.jsonl"),
        app_name, record_lines)

    if interrupted:
        print(f"{prog}: interrupted — partial run drained "
              f"({stats.get('packets', 0)} packets)")
    extra = summarize(stats) if summarize is not None else ""
    print(f"processed {stats.get('packets', 0)} packets{extra}")
    if args.parallel:
        print(f"  parallel: {stats['lanes']} lanes on "
              f"{stats['workers']} {stats['backend']} workers "
              f"({stats['vthreads']} vthreads)")
    print(f"  {results_path}: {len(lines)} lines")
    print(f"  fingerprint: sha256:{fingerprint(lines)}")
    print(f"  {records_path}: {len(record_lines)} flow records")
    print(f"  flow fingerprint: sha256:{fingerprint(record_lines)}")
    if args.stats and not interrupted:
        for key in ("parsing_ns", "script_ns", "glue_ns", "other_ns"):
            print(f"  {key[:-3]:>8}: {stats[key] / 1e6:10.2f} ms")
    if args.metrics or args.trace_flows:
        try:
            for path in writers.write_telemetry(args.logdir):
                print(f"  wrote {path}")
        except Exception as error:
            if not interrupted:
                raise
            print(f"  telemetry flush incomplete: {error}")
    if args.cpu_breakdown and not interrupted:
        import json as _json

        path = _os.path.join(args.logdir, "cpu_breakdown.json")
        report = writers.cpu_breakdown()
        with open(path, "w") as stream:
            _json.dump(report, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print(f"  wrote {path}")
        print("cpu breakdown:")
        for name in ("parsing", "script", "glue", "other"):
            entry = report["components"][name]
            print(f"  {name:>8}: {entry['share']:6.2f}% "
                  f"({entry['ns'] / 1e6:.2f} ms)")
    if args.health and "health" in stats:
        print_health(stats["health"])
    return EXIT_INTERRUPTED if interrupted else 0


def run_host_service(
    args: argparse.Namespace,
    prog: str,
    make_app: Callable[[argparse.Namespace, PipelineServices], HostApp],
    make_spec: Callable[[argparse.Namespace], LaneSpec],
    results_name: str = "results.log",
) -> int:
    """Drive *make_app*'s application as a streaming service: looped
    rate-controlled replay feeding supervised lanes through bounded
    queues, with the HTTP control surface and graceful signal drain
    (docs/SERVICE.md)."""
    from ..net.replay import TraceReplayer
    from .service import HostService, ServiceConfig

    if args.parallel:
        raise SystemExit(
            f"{prog}: --serve and --parallel are exclusive — service "
            "mode has its own lane parallelism (--lanes)")
    lane_transport = getattr(args, "lane_transport", "thread")
    if lane_transport == "pool" and args.inject:
        raise SystemExit(
            f"{prog}: --inject requires thread lanes — pool lanes run "
            "in worker processes where the injector's deterministic "
            "per-site streams cannot be threaded through")

    config = ServiceConfig(
        lanes=args.lanes,
        lane_transport=lane_transport,
        queue_capacity=args.queue_cap,
        overload=args.overload,
        tick_seconds=args.tick,
        duration_seconds=args.duration,
        drain_timeout=args.drain_timeout,
        backoff_base=args.backoff_base,
        backoff_cap=args.backoff_cap,
        fault_seed=args.fault_seed,
        inject_rates=parse_injection_rates(args.inject, prog),
        watchdog_budget=args.watchdog,
        max_sessions=args.max_sessions,
        session_ttl=args.session_ttl,
        memory_budget_bytes=args.memory_budget,
        http_host=(None if args.http_port < 0 else args.http_host),
        http_port=(None if args.http_port < 0 else args.http_port),
        logdir=args.logdir,
        results_name=results_name,
        app_name=prog,
        lane_metrics=args.metrics,
    )
    replayer = TraceReplayer(
        args.read,
        loops=(args.loops if args.loops > 0 else None),
        rate=args.rate_pps,
        tolerant=args.tolerant_pcap,
        should_stop=lambda: service.should_stop(),
    )
    service = HostService(
        lambda services: make_app(args, services),
        replayer, config, spec=make_spec(args))
    service.install_signal_handlers()

    loops = "forever" if args.loops <= 0 else f"{args.loops}x"
    print(f"{prog}: service mode — {config.lanes} {config.lane_transport} "
          f"lanes, overload={config.overload}, replay {loops}"
          + (f", {args.rate_pps:g} pps" if args.rate_pps else ""))
    code = service.serve()
    totals = service.totals()
    print(f"service drained ({service.stop_reason}): "
          f"ingested {int(totals['packets_ingested'])}, "
          f"processed {int(totals['packets_processed'])}, "
          f"shed {int(totals['packets_shed'])}, "
          f"lost {int(totals['packets_lost'])}, "
          f"dropped {int(totals['packets_dropped'])}")
    print(f"  lanes: {int(totals['lane_crashes'])} crashes, "
          f"{int(totals['lane_restarts'])} restarts, "
          f"{sum(1 for lane in service.lanes if lane.failed)} failed")
    for path in service.artifacts:
        print(f"  wrote {path}")
    return code
