"""The shared flow ledger: one table for every stateful component.

The paper's per-flow, hash-partitioned state model (§3.2) used to be
re-implemented three times — :class:`repro.host.demux.FlowDemux`,
:class:`repro.apps.bro.conn.ConnectionTracker`, and
:class:`repro.lib.session_table.SessionTable` each carried its own
keying, uid assignment, per-direction accounting, and TTL/LRU/cap
eviction loop.  :class:`FlowTable` is that logic factored out once:

* **keying** — canonical :class:`~repro.net.flows.FiveTuple` objects
  (direction-independent; both directions of a connection hit the same
  entry), with the originator orientation captured from the first
  packet;
* **uid assignment** — explicit uid > pre-assigned ``uid_map`` (the
  parallel dispatcher's arrival-order map) > ``uid_format(serial)``
  (the sequential fallback; the serial counts *every* first-sighted
  flow, matching the dispatcher's serial exactly);
* **accounting** — per-direction packets/bytes, first/last timestamps,
  the TCP flag union;
* **eviction** — the TTL and capacity loops over one
  :class:`~repro.host.eviction.SessionLRU`, with an ``on_evict``
  callback that lets the owner flush its own session state and decide
  whether the eviction is *counted* (tombstoned flows are not);
* **records** — every closed flow seals into a
  :class:`~repro.net.flowrecord.FlowRecord`; ``record_lines()`` is the
  sorted, deterministic export stream.

Owners keep what is genuinely theirs (handlers, reassemblers, analyzer
teardown) and delegate the rest here — see docs/FLOWS.md.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..net.flowrecord import FlowRecord
from ..net.flows import FiveTuple
from .eviction import SessionLRU

__all__ = ["FlowEntry", "FlowTable"]


class FlowEntry:
    """One open flow's ledger state.

    ``src``/``src_port`` is the originator end (first packet's sender);
    the entry is keyed by the canonical 5-tuple, so both directions
    update the same counters.
    """

    __slots__ = ("key", "src", "dst", "src_port", "dst_port", "protocol",
                 "uid", "first_ts", "last_ts", "orig_pkts", "orig_bytes",
                 "resp_pkts", "resp_bytes", "tcp_flags")

    def __init__(self, key: FiveTuple, flow: FiveTuple, now: float,
                 uid: Optional[str]):
        self.key = key
        # Originator orientation: the directional tuple of the first
        # packet, not the canonical order.
        self.src = flow.src
        self.dst = flow.dst
        self.src_port = flow.src_port
        self.dst_port = flow.dst_port
        self.protocol = flow.protocol
        self.uid = uid
        self.first_ts = now
        self.last_ts = now
        self.orig_pkts = 0
        self.orig_bytes = 0
        self.resp_pkts = 0
        self.resp_bytes = 0
        self.tcp_flags = 0

    def is_orig(self, flow: FiveTuple) -> bool:
        """Does *flow* (a directional tuple) travel originator->responder?"""
        return (flow.src.value, flow.src_port) == \
            (self.src.value, self.src_port)

    def add(self, now: float, payload_len: int, tcp_flags: int,
            is_orig: bool) -> None:
        self.last_ts = now
        self.tcp_flags |= tcp_flags
        if is_orig:
            self.orig_pkts += 1
            self.orig_bytes += payload_len
        else:
            self.resp_pkts += 1
            self.resp_bytes += payload_len

    def to_record(self, reason: str) -> FlowRecord:
        return FlowRecord(
            src=str(self.src), dst=str(self.dst),
            src_port=self.src_port, dst_port=self.dst_port,
            protocol=self.protocol, uid=self.uid,
            first_ts=self.first_ts, last_ts=self.last_ts,
            orig_pkts=self.orig_pkts, orig_bytes=self.orig_bytes,
            resp_pkts=self.resp_pkts, resp_bytes=self.resp_bytes,
            tcp_flags=self.tcp_flags, close_reason=reason)


class FlowTable:
    """Keying + uid assignment + accounting + eviction, shared.

    *on_evict(key, reason) -> bool* runs the owner's final flush for a
    TTL/cap victim and returns whether the eviction should be counted
    (``sessions_expired``/``sessions_evicted``); owners that tombstone
    ignored flows return False for them, preserving the historical
    counter semantics exactly.

    The table also serves as bare recency bookkeeping for owners whose
    keys are not 5-tuples (``SessionTable``): ``touch``/``run_eviction``
    work for any hashable key; ledger entries exist only for keys opened
    through :meth:`account` or :meth:`open`.
    """

    def __init__(self, uid_map: Optional[Dict] = None,
                 uid_format: Optional[Callable[[int], str]] = None,
                 max_sessions: Optional[int] = None,
                 session_ttl: Optional[float] = None,
                 on_evict: Optional[Callable] = None):
        self.uid_map = uid_map
        self.uid_format = uid_format
        self.max_sessions = max_sessions
        self.session_ttl = session_ttl
        self.on_evict = on_evict
        self._entries: Dict = {}
        self._lru = SessionLRU()
        self._records: List[FlowRecord] = []
        self.serial = 0
        self.sessions_expired = 0
        self.sessions_evicted = 0

    # -- predicates ---------------------------------------------------------

    @property
    def evicting(self) -> bool:
        """Is any eviction policy armed?"""
        return self.max_sessions is not None or self.session_ttl is not None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key) -> Optional[FlowEntry]:
        return self._entries.get(key)

    def last_active(self, key) -> Optional[float]:
        return self._lru.last_active(key)

    def oldest(self):
        return self._lru.oldest()

    # -- opening and accounting ---------------------------------------------

    def _uid_for(self, key, uid: Optional[str]) -> Optional[str]:
        if uid is not None:
            return uid
        if self.uid_map is not None:
            mapped = self.uid_map.get(key)
            if mapped is not None:
                return mapped
        if self.uid_format is not None:
            return self.uid_format(self.serial)
        return None

    def open(self, flow: FiveTuple, now: float,
             uid: Optional[str] = None) -> FlowEntry:
        """Open a ledger entry for a first-sighted flow.

        Bumps the arrival serial (every first sight counts, ignored or
        not — the dispatcher's pre-assignment counts the same way) and
        resolves the uid: explicit > uid_map > uid_format(serial).
        """
        key = flow.canonical()
        self.serial += 1
        entry = FlowEntry(key, flow, now, self._uid_for(key, uid))
        self._entries[key] = entry
        return entry

    def account(self, flow: FiveTuple, now: float, payload_len: int = 0,
                tcp_flags: int = 0, uid: Optional[str] = None,
                is_orig: Optional[bool] = None,
                touch: bool = True) -> FlowEntry:
        """Account one packet: open on first sight, then update
        last-activity, the per-direction counters, and the flag union.

        *is_orig* defaults to comparing the packet's source end against
        the entry's originator end; owners that track orientation
        themselves (ConnectionTracker) pass it explicitly.  Owners with
        their own recency discipline (FlowDemux touches only once a
        clock is known) pass ``touch=False`` and drive :meth:`touch`.
        """
        key = flow.canonical()
        entry = self._entries.get(key)
        if entry is None:
            entry = self.open(flow, now, uid=uid)
        if is_orig is None:
            is_orig = entry.is_orig(flow)
        entry.add(now, payload_len, tcp_flags, is_orig)
        if touch and self.evicting:
            self._lru.touch(key, now)
        return entry

    def touch(self, key, now: float) -> None:
        """Recency-only touch (bare-key owners, or owners that drive
        the LRU from their own accounting path)."""
        self._lru.touch(key, now)

    # -- closing and eviction -----------------------------------------------

    def close(self, key, reason: str = "finished") -> Optional[FlowEntry]:
        """Seal *key*'s ledger entry into a record (owner-initiated
        close: normal teardown or end-of-run flush)."""
        entry = self._entries.pop(key, None)
        self._lru.remove(key)
        if entry is not None:
            self._records.append(entry.to_record(reason))
        return entry

    def _evict(self, key, reason: str) -> None:
        """One TTL/cap victim: owner flush via ``on_evict`` (which says
        whether to count it), then seal the ledger entry."""
        counted = True
        if self.on_evict is not None:
            counted = bool(self.on_evict(key, reason))
        if counted:
            if reason == "expired":
                self.sessions_expired += 1
            else:
                self.sessions_evicted += 1
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._records.append(entry.to_record(reason))

    def evict(self, key, reason: str) -> None:
        """Evict one key the owner already removed from recency (the
        demux memory-budget loop walks ``oldest()`` itself)."""
        self._lru.remove(key)
        self._evict(key, reason)

    def run_eviction(self, now: Optional[float]) -> None:
        """The shared TTL + capacity loop (previously duplicated in
        FlowDemux._run_eviction / ConnectionTracker._run_eviction).
        TTL expiry needs a clock; capacity overflow does not."""
        if self.session_ttl is not None and now is not None:
            for key in self._lru.expired(now - self.session_ttl):
                self._evict(key, "expired")
        if self.max_sessions is not None:
            for key in self._lru.overflow(self.max_sessions):
                self._evict(key, "evicted")

    def finish(self) -> None:
        """End of run: seal every open entry as finished, in insertion
        (arrival) order."""
        for key in list(self._entries):
            self.close(key, "finished")

    # -- reporting ----------------------------------------------------------

    def records(self) -> List[FlowRecord]:
        return list(self._records)

    def record_lines(self) -> List[str]:
        """The deterministic export stream: one JSON line per sealed
        flow, sorted (a pure function of trace content)."""
        return sorted(record.to_line() for record in self._records)

    def flow_snapshot(self, limit: int = 256) -> List[Dict]:
        """Open flows, oldest-activity data included when tracked."""
        out: List[Dict] = []
        for key, entry in self._entries.items():
            if len(out) >= limit:
                break
            out.append({
                "key": [[key.src.value, key.src_port],
                        [key.dst.value, key.dst_port], key.protocol],
                "uid": entry.uid,
                "protocol": entry.protocol,
                "last_active": self._lru.last_active(key),
            })
        return out
