"""The shared host-application substrate.

The paper's central claim (sections 2 and 5) is that HILTI is *one*
abstract execution environment shared by many host applications — a BPF
filter, a stateful firewall, BinPAC++ parsers, and a Bro-style script
engine.  This package is that claim made structural: every trace-driven
service the Bro exemplar grew (tolerant pcap ingest, fault injection and
health accounting, watchdog budgets, the unified telemetry exporter, the
flow-parallel dispatch with deterministic merge) lives here once, behind
a small :class:`HostApp` interface all four exemplars implement.

Layering (docs/ARCHITECTURE.md)::

    tools      repro.tools.{bro,bpf_filter,firewall,pac_driver}
    host       repro.host.{Pipeline,ParallelPipeline,FlowDemux}
    apps       repro.apps.{bro,bpf,firewall,binpac}
    core/rt    repro.core.*, repro.runtime.*
    net        repro.net.{pcap,packet,flows,reassembly,tracegen}
"""

from .app import HostApp, PipelineServices, export_health
from .demux import FlowDemux
from .eviction import SessionLRU
from .flowtable import FlowEntry, FlowTable
from .parallel import (
    LaneSpec,
    ParallelPipeline,
    default_backend,
    dispatch_plan,
    flow_key,
)
from .pipeline import Pipeline
from .pool import PoolError, WorkerPool
from .ring import MessageChannel, RingFull, ShmRing
from .service import BoundedQueue, HostService, RollingWindows, ServiceConfig

__all__ = [
    "BoundedQueue",
    "FlowDemux",
    "FlowEntry",
    "FlowTable",
    "HostApp",
    "HostService",
    "LaneSpec",
    "MessageChannel",
    "ParallelPipeline",
    "Pipeline",
    "PipelineServices",
    "PoolError",
    "RingFull",
    "RollingWindows",
    "ServiceConfig",
    "SessionLRU",
    "ShmRing",
    "WorkerPool",
    "default_backend",
    "dispatch_plan",
    "export_health",
    "flow_key",
]
