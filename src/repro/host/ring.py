"""Shared-memory SPSC ring buffers for the persistent worker pool.

The process backend's original transport pickled every job through a
per-run ``Pipe`` — the per-packet overhead that made flow-parallelism
slower than sequential on the recorded benchmarks.  This module is the
replacement transport, mirroring the DPDK burst-processing idiom: a
power-of-two ring of raw bytes in ``multiprocessing.shared_memory``,
single producer and single consumer, with **length-prefixed records**
written and read by modular byte copies so wraparound needs no special
cases.  Producers amortize per-packet cost by writing whole batches as
one record; consumers slice frames straight out of the mapped buffer.

Layout (``capacity`` is a power of two)::

    [ head u64 | tail u64 | capacity u64 |  data bytes ... capacity ]

``tail`` is written only by the producer, ``head`` only by the
consumer; both are monotonically increasing byte cursors (masked by
``capacity - 1`` on access), so free space is ``capacity - (tail -
head)`` with no ambiguity between full and empty.  The cursors are
aligned 8-byte words updated with a single ``memcpy`` — atomic on every
platform CPython runs on — and each is published *after* the record
bytes it covers, which is the entire correctness argument of an SPSC
ring.

On top of the raw ring, :class:`MessageChannel` frames logical messages
(a tag byte plus an arbitrarily large payload) as one or more chunked
records, so a pickled lane result far larger than the ring streams
through it without ever needing contiguous space.
"""

from __future__ import annotations

import struct
import time as _time
from multiprocessing import shared_memory
from typing import Callable, Optional, Tuple

__all__ = ["MessageChannel", "RingFull", "ShmRing"]

_CURSORS = struct.Struct("<QQQ")   # head, tail, capacity
_HEADER = _CURSORS.size
_LEN = struct.Struct("<I")         # per-record length prefix

#: Polling interval while waiting on a full/empty ring.  The pool's
#: hot path never waits (batches land in one push); this bounds the
#: latency of backpressure and of idle consumers.
_POLL_SECONDS = 0.0002


class RingFull(Exception):
    """A bounded push found no space before its deadline."""


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without registering it with the resource
    tracker.

    The creator owns the segment's lifetime; under ``fork`` (and fd
    inheritance generally) parent and worker share one tracker process
    with one registration set per name, so an attach that registers and
    later unregisters would strip the *owner's* registration and make
    the owner's eventual ``unlink`` a double-unregister (a noisy
    KeyError in the tracker).  Registration is suppressed for the
    attach instead — Python 3.13's ``track=False``, hand-rolled.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ShmRing:
    """A single-producer/single-consumer shared-memory byte ring.

    The creating process owns the segment (``close()`` unlinks it);
    workers attach by name via :meth:`attach`.  Records are pushed and
    popped whole: ``push`` refuses (returns ``False``) when the record
    does not fit in the free space, which is the pool's backpressure
    signal, and raises ``ValueError`` for a record that could *never*
    fit so oversized frames fail loudly instead of wedging the
    producer.
    """

    def __init__(self, capacity: int = 1 << 20, *, _shm=None, _owner=True):
        if _shm is not None:
            self._shm = _shm
            self._owner = _owner
            __, __, capacity = _CURSORS.unpack_from(self._shm.buf, 0)
            self.capacity = int(capacity)
        else:
            if capacity <= 0 or capacity & (capacity - 1):
                raise ValueError(
                    f"ring capacity must be a power of two, got {capacity}")
            self._shm = shared_memory.SharedMemory(
                create=True, size=_HEADER + capacity)
            self._owner = True
            self.capacity = capacity
            _CURSORS.pack_into(self._shm.buf, 0, 0, 0, capacity)
        self._mask = self.capacity - 1
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Map an existing ring by shared-memory name (worker side)."""
        return cls(_shm=_attach_untracked(name), _owner=False)

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        """Unmap (and, for the owner, unlink) the segment."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except Exception:
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except Exception:
                pass

    def reset(self) -> None:
        """Zero both cursors.  Only safe when the peer process is gone
        (the pool calls this while respawning a dead worker)."""
        head, tail, capacity = _CURSORS.unpack_from(self._shm.buf, 0)
        _CURSORS.pack_into(self._shm.buf, 0, 0, 0, capacity)

    # -- cursors -----------------------------------------------------------

    def _head(self) -> int:
        return struct.unpack_from("<Q", self._shm.buf, 0)[0]

    def _tail(self) -> int:
        return struct.unpack_from("<Q", self._shm.buf, 8)[0]

    def _set_head(self, value: int) -> None:
        struct.pack_into("<Q", self._shm.buf, 0, value)

    def _set_tail(self, value: int) -> None:
        struct.pack_into("<Q", self._shm.buf, 8, value)

    def used_bytes(self) -> int:
        return self._tail() - self._head()

    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes()

    # -- modular byte copies -----------------------------------------------

    def _write_at(self, cursor: int, data) -> None:
        buf = self._shm.buf
        offset = cursor & self._mask
        first = min(len(data), self.capacity - offset)
        buf[_HEADER + offset:_HEADER + offset + first] = data[:first]
        rest = len(data) - first
        if rest:
            buf[_HEADER:_HEADER + rest] = data[first:]

    def _read_at(self, cursor: int, size: int) -> bytes:
        buf = self._shm.buf
        offset = cursor & self._mask
        first = min(size, self.capacity - offset)
        out = bytes(buf[_HEADER + offset:_HEADER + offset + first])
        rest = size - first
        if rest:
            out += bytes(buf[_HEADER:_HEADER + rest])
        return out

    # -- the SPSC protocol -------------------------------------------------

    def push(self, payload) -> bool:
        """Append one length-prefixed record; ``False`` when it does
        not currently fit (backpressure), ``ValueError`` when it never
        could."""
        need = _LEN.size + len(payload)
        if need > self.capacity:
            raise ValueError(
                f"record of {len(payload)} bytes exceeds ring capacity "
                f"{self.capacity} (batch or chunk it)")
        tail = self._tail()
        if need > self.capacity - (tail - self._head()):
            return False
        self._write_at(tail, _LEN.pack(len(payload)))
        self._write_at(tail + _LEN.size, payload)
        # Publishing the tail is the release barrier: the consumer
        # never reads past it, so the record bytes are visible first.
        self._set_tail(tail + need)
        return True

    def push_wait(self, payload, timeout: Optional[float] = None,
                  should_stop: Optional[Callable[[], bool]] = None) -> bool:
        """``push`` with a bounded wait for space; ``False`` when the
        deadline passes or *should_stop* fires first."""
        deadline = (None if timeout is None
                    else _time.monotonic() + timeout)
        while True:
            if self.push(payload):
                return True
            if should_stop is not None and should_stop():
                return False
            if deadline is not None and _time.monotonic() >= deadline:
                return False
            _time.sleep(_POLL_SECONDS)

    def pop(self, timeout: float = 0.0) -> Optional[bytes]:
        """Pop the oldest record, waiting up to *timeout* seconds;
        ``None`` when the ring stays empty.

        The wait backs off exponentially in two phases: 0.2ms → 5ms
        for the first ~quarter second of emptiness (a mid-run stall —
        the producer is about to push more, so stay responsive), then
        deepening to 50ms (a consumer idle *between* runs — a pool
        worker parked on an empty ring — costs tens of wakeups per
        second instead of five thousand and cannot perturb
        timing-sensitive work elsewhere on the box).
        """
        deadline = _time.monotonic() + timeout if timeout else None
        sleep = _POLL_SECONDS
        slept = 0.0
        while True:
            head = self._head()
            if self._tail() != head:
                size = _LEN.unpack(self._read_at(head, _LEN.size))[0]
                payload = self._read_at(head + _LEN.size, size)
                self._set_head(head + _LEN.size + size)
                return payload
            if deadline is None or _time.monotonic() >= deadline:
                return None
            _time.sleep(sleep)
            slept += sleep
            sleep = min(sleep * 2, 0.05 if slept >= 0.25 else 0.005)


class MessageChannel:
    """Tagged, arbitrarily sized messages over one :class:`ShmRing`.

    Each logical message ``(tag, payload)`` becomes one or more ring
    records of ``tag byte | last-chunk flag | payload part``; because
    the ring is SPSC and FIFO, chunks of one message are contiguous and
    reassembly needs only a running buffer.  ``recv`` returns complete
    messages; a partially received message survives across calls.
    """

    #: Chunk bound: small enough that four in-flight chunks fit any
    #: ring, large enough to amortize the per-record cursor traffic.
    MAX_CHUNK = 256 * 1024

    def __init__(self, ring: ShmRing):
        self.ring = ring
        self._chunk = min(self.MAX_CHUNK, ring.capacity // 4)
        self._partial_tag: Optional[int] = None
        self._partial = bytearray()

    def reset(self) -> None:
        """Drop partial reassembly state (after a peer death)."""
        self._partial_tag = None
        self._partial = bytearray()

    def send(self, tag: int, payload=b"",
             timeout: Optional[float] = None,
             should_stop: Optional[Callable[[], bool]] = None) -> bool:
        """Send one message, chunking as needed; ``False`` if any chunk
        failed to land before the deadline (the message is then
        truncated mid-stream — callers treat the channel as dead)."""
        view = memoryview(payload)
        total = len(view)
        offset = 0
        while True:
            end = min(offset + self._chunk, total)
            last = 1 if end == total else 0
            record = bytes([tag, last]) + bytes(view[offset:end])
            if not self.ring.push_wait(record, timeout=timeout,
                                       should_stop=should_stop):
                return False
            offset = end
            if last:
                return True

    def recv(self, timeout: float = 0.0) -> Optional[Tuple[int, bytes]]:
        """Receive the next complete message as ``(tag, payload)``, or
        ``None`` when no complete message arrives in *timeout*."""
        deadline = _time.monotonic() + timeout if timeout else None
        while True:
            remaining = 0.0
            if deadline is not None:
                remaining = max(0.0, deadline - _time.monotonic())
            record = self.ring.pop(timeout=remaining)
            if record is None:
                return None
            tag, last = record[0], record[1]
            if self._partial_tag is None:
                self._partial_tag = tag
            self._partial += record[2:]
            if last:
                payload = bytes(self._partial)
                out_tag = self._partial_tag
                self.reset()
                return out_tag, payload
            if deadline is not None and _time.monotonic() >= deadline:
                return None
