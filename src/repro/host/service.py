"""Streaming service mode: a supervised long-running host-app daemon.

The batch pipeline reads a trace once and exits; the paper's target is
*continuous* deep, stateful analysis under real-time constraints.  This
module wraps any :class:`~repro.host.app.HostApp` in that shape::

    ingest (TraceReplayer / LiveCaptureSource, rate-paced)
       |            place by flow key (LaneSpec sharding)
       v
    BoundedQueue[0] ... BoundedQueue[N-1]     overload: block | shed
       |                     |
    lane 0                lane N-1            one isolated app each
       \\                     /
        supervisor  --------+   restarts crashed lanes w/ exp. backoff,
            |                   escalates to a CircuitBreaker
        aggregator              1s/10s/60s rolling windows -> registry,
            |                   time-series history ring
        HTTP control surface    /healthz /metrics /stats /flows
                                /metrics/history

``/metrics`` speaks JSON-lines (``repro-metrics/1``) by default and the
Prometheus text exposition (version 0.0.4) under content negotiation
(``Accept: text/plain`` or ``?format=prometheus``);
``/metrics/history?window=60`` serves the aggregator's bounded
time-series ring (``repro-timeseries/1``).  Pool-transport lanes ship
periodic ``TELEM`` snapshots back over their rings, which the
aggregator publishes as ``worker.*`` gauges labeled ``worker=N`` —
the live per-worker view ``repro.tools.servicetop`` renders.

Overload never deadlocks: ``block`` applies backpressure to ingest with
a bounded timed wait that re-checks the stop request; ``shed`` drops at
the full queue and counts every drop exactly.  Session state stays flat
via the eviction bounds (``PipelineServices.max_sessions`` /
``session_ttl`` / ``memory_budget_bytes``) the lanes' apps enforce.
SIGTERM/SIGINT drain gracefully: ingest stops, queued packets finish,
telemetry flushes, results are written, exit code 0.

The packet-conservation invariant the soak tests assert::

    ingested == processed + shed + lost_in_crash + dropped_on_stop
                + dropped_to_failed_lane

Every packet the ingest stage pulled from the source lands in exactly
one of those counters.
"""

from __future__ import annotations

import json as _json
import os as _os
import signal as _signal
import threading
import time as _time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..runtime.faults import (
    CircuitBreaker,
    FaultInjector,
    NULL_INJECTOR,
    SITE_SERVICE_LANE,
)
from ..runtime import promtext as _promtext
from ..runtime.telemetry import (
    MetricsRegistry,
    Telemetry,
    TimeSeriesStore,
    TIMESERIES_SCHEMA,
)
from .app import HostApp, PipelineServices
from .parallel import LaneSpec

__all__ = [
    "BoundedQueue",
    "HostService",
    "RollingWindows",
    "SERVICE_SCHEMA",
    "ServiceConfig",
]

#: Schema tag of the ``service.json`` discovery file.
SERVICE_SCHEMA = "repro-service/1"


_SENTINEL = object()  # end-of-stream marker, force-put past capacity
_EMPTY = object()     # get() timeout marker


# --------------------------------------------------------------------------
# Bounded inter-stage queue
# --------------------------------------------------------------------------


class BoundedQueue:
    """A bounded FIFO between pipeline stages.

    Two producer disciplines: :meth:`put` (block policy — timed wait
    for space so a stop request is honored, never a deadlock) and
    :meth:`offer` (shed policy — fail fast at capacity, the drop
    counted exactly in :attr:`shed`).  :meth:`force` appends past
    capacity for control markers (the drain sentinel must reach a
    full queue).  Consumers use :meth:`get` with a timeout.
    """

    #: Longest single wait slice inside put(); bounds stop latency.
    WAIT_SLICE = 0.05

    def __init__(self, capacity: int, name: str = "queue"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self.name = name
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self.puts = 0
        self.gets = 0
        self.shed = 0
        self.high_water = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def depth(self) -> int:
        return len(self)

    def _append(self, item) -> None:
        self._items.append(item)
        depth = len(self._items)
        if depth > self.high_water:
            self.high_water = depth
        self.puts += 1
        self._not_empty.notify()

    def offer(self, item) -> bool:
        """Shed policy: enqueue, or count one drop at capacity."""
        with self._lock:
            if len(self._items) >= self.capacity:
                self.shed += 1
                return False
            self._append(item)
            return True

    def put(self, item, timeout: Optional[float] = None,
            should_stop: Optional[Callable[[], bool]] = None) -> bool:
        """Block policy: wait for space (re-checking *should_stop*
        between slices); False when stopped or timed out."""
        deadline = (None if timeout is None
                    else _time.monotonic() + timeout)
        with self._not_full:
            while len(self._items) >= self.capacity:
                if should_stop is not None and should_stop():
                    return False
                wait = self.WAIT_SLICE
                if deadline is not None:
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0:
                        return False
                    wait = min(wait, remaining)
                self._not_full.wait(wait)
            self._append(item)
            return True

    def force(self, item) -> None:
        """Append unconditionally (control markers only)."""
        with self._lock:
            self._append(item)

    def get(self, timeout: Optional[float] = None):
        """Pop the oldest item; the module-level ``_EMPTY`` marker on
        timeout."""
        deadline = (None if timeout is None
                    else _time.monotonic() + timeout)
        with self._not_empty:
            while not self._items:
                if deadline is None:
                    self._not_empty.wait()
                else:
                    remaining = deadline - _time.monotonic()
                    if remaining <= 0:
                        return _EMPTY
                    self._not_empty.wait(remaining)
            item = self._items.popleft()
            self.gets += 1
            self._not_full.notify()
            return item

    def drain(self) -> int:
        """Discard everything queued; returns the number of *data*
        items dropped (control markers excluded)."""
        with self._lock:
            dropped = sum(1 for item in self._items
                          if item is not _SENTINEL)
            self._items.clear()
            self._not_full.notify_all()
            return dropped


# --------------------------------------------------------------------------
# Rolling aggregation windows
# --------------------------------------------------------------------------


class RollingWindows:
    """Rolling rate windows over monotone counter totals.

    ``sample(now, totals)`` records one aggregator tick;
    ``rates()`` reports, per window, each counter's delta and
    per-second rate between the newest sample and the oldest sample
    still inside the window.
    """

    def __init__(self, windows: Tuple[float, ...] = (1.0, 10.0, 60.0)):
        if not windows:
            raise ValueError("need at least one window")
        self.windows = tuple(sorted(windows))
        self._samples: deque = deque()

    def sample(self, now: float, totals: Dict[str, float]) -> None:
        self._samples.append((now, dict(totals)))
        horizon = now - self.windows[-1] - 5.0
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def rates(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        if len(self._samples) < 2:
            return {}
        newest_t, newest = self._samples[-1]
        out: Dict[str, Dict[str, Dict[str, float]]] = {}
        for window in self.windows:
            base_t, base = self._samples[0]
            for t, totals in self._samples:
                if t >= newest_t - window:
                    base_t, base = t, totals
                    break
            if base_t >= newest_t:
                # Window shorter than one tick: fall back to the
                # previous sample so short windows still report.
                base_t, base = self._samples[-2]
            dt = newest_t - base_t
            entry: Dict[str, Dict[str, float]] = {}
            for name, value in newest.items():
                delta = value - base.get(name, 0)
                entry[name] = {
                    "delta": delta,
                    "per_second": (delta / dt) if dt > 0 else 0.0,
                }
            out[f"{window:g}s"] = entry
        return out


# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------


class ServiceConfig:
    """Everything tunable about one service run."""

    def __init__(self,
                 lanes: int = 1,
                 lane_transport: str = "thread",
                 queue_capacity: int = 512,
                 overload: str = "block",
                 tick_seconds: float = 1.0,
                 windows: Tuple[float, ...] = (1.0, 10.0, 60.0),
                 duration_seconds: Optional[float] = None,
                 drain_timeout: float = 30.0,
                 backoff_base: float = 0.25,
                 backoff_cap: float = 30.0,
                 breaker_threshold: float = 0.5,
                 breaker_min_starts: int = 4,
                 healthy_packets: int = 256,
                 fault_seed: int = 0,
                 inject_rates: Optional[Dict[str, float]] = None,
                 watchdog_budget: Optional[int] = None,
                 max_sessions: Optional[int] = None,
                 session_ttl: Optional[float] = None,
                 memory_budget_bytes: Optional[int] = None,
                 http_host: Optional[str] = "127.0.0.1",
                 http_port: Optional[int] = 0,
                 logdir: str = "logs",
                 results_name: str = "results.log",
                 app_name: str = "app",
                 lane_metrics: bool = False,
                 history_samples: int = 600):
        if overload not in ("block", "shed"):
            raise ValueError(f"overload must be block|shed, got {overload!r}")
        if lane_transport not in ("thread", "pool"):
            raise ValueError(
                f"lane_transport must be thread|pool, got {lane_transport!r}")
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes!r}")
        if lane_transport == "pool" and inject_rates:
            raise ValueError(
                "fault injection requires thread lanes — pool lanes run "
                "in worker processes")
        self.lanes = lanes
        self.lane_transport = lane_transport
        self.queue_capacity = queue_capacity
        self.overload = overload
        self.tick_seconds = tick_seconds
        self.windows = tuple(windows)
        self.duration_seconds = duration_seconds
        self.drain_timeout = drain_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.breaker_threshold = breaker_threshold
        self.breaker_min_starts = breaker_min_starts
        self.healthy_packets = healthy_packets
        self.fault_seed = fault_seed
        self.inject_rates = dict(inject_rates) if inject_rates else None
        self.watchdog_budget = watchdog_budget
        self.max_sessions = max_sessions
        self.session_ttl = session_ttl
        self.memory_budget_bytes = memory_budget_bytes
        self.http_host = http_host
        self.http_port = http_port
        self.logdir = logdir
        self.results_name = results_name
        self.app_name = app_name
        self.lane_metrics = bool(lane_metrics)
        if history_samples < 1:
            raise ValueError(
                f"history_samples must be >= 1, got {history_samples!r}")
        self.history_samples = history_samples

    def as_dict(self) -> Dict[str, object]:
        return {
            "lanes": self.lanes,
            "lane_transport": self.lane_transport,
            "queue_capacity": self.queue_capacity,
            "overload": self.overload,
            "tick_seconds": self.tick_seconds,
            "windows": list(self.windows),
            "duration_seconds": self.duration_seconds,
            "fault_seed": self.fault_seed,
            "inject_rates": self.inject_rates,
            "watchdog_budget": self.watchdog_budget,
            "max_sessions": self.max_sessions,
            "session_ttl": self.session_ttl,
            "memory_budget_bytes": self.memory_budget_bytes,
            "app": self.app_name,
            "lane_metrics": self.lane_metrics,
            "history_samples": self.history_samples,
        }


# --------------------------------------------------------------------------
# Lanes
# --------------------------------------------------------------------------


class _Lane:
    """One supervised worker: a bounded queue, an isolated app
    instance, the lane's own fault-injection stream and escalation
    breaker, and crash/restart accounting."""

    def __init__(self, index: int, config: ServiceConfig):
        self.index = index
        self.queue = BoundedQueue(config.queue_capacity,
                                  name=f"lane{index}")
        # One injector per lane, persistent across restarts, seeded per
        # lane so the fault schedule is deterministic and independent.
        if config.inject_rates:
            self.injector = FaultInjector(
                seed=config.fault_seed + 1009 * index,
                rates=config.inject_rates)
        else:
            self.injector = NULL_INJECTOR
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            min_flows=config.breaker_min_starts)
        self.app: Optional[HostApp] = None
        self.thread: Optional[threading.Thread] = None
        self.processed = 0
        self.processed_since_start = 0
        self.crashes = 0
        self.restarts = 0
        self.packets_lost = 0
        self.backoff_seconds = 0.0
        self.crashed = False
        self.drained = False
        self.failed = False
        self.last_error: Optional[str] = None
        self.pending_restart_at: Optional[float] = None
        self.archived_lines: List[str] = []
        self.archived_records: List[str] = []
        self.end_stats: Optional[Dict] = None
        # Pool-transport state: the ring replaces the object queue, so
        # shed and in-flight accounting live on the lane itself.
        self.pool_lock = threading.Lock()
        self.pool_down = False       # worker dead/poisoned, respawn due
        self.pool_shed = 0           # shed at a full ring (shed policy)
        self.pool_base = 0           # processed by prior incarnations

    def alive(self) -> bool:
        """Is the lane's executor currently able to consume packets?
        Thread transport: the lane thread is running.  Pool transport
        (no parent-side thread): not failed, not in a crash window."""
        if self.thread is not None:
            return self.thread.is_alive()
        return not (self.failed or self.pool_down)

    def snapshot(self) -> Dict[str, object]:
        return {
            "lane": self.index,
            "alive": self.alive(),
            "processed": self.processed,
            "crashes": self.crashes,
            "restarts": self.restarts,
            "packets_lost": self.packets_lost,
            "backoff_seconds": round(self.backoff_seconds, 3),
            "failed": self.failed,
            "queue_depth": self.queue.depth(),
            "queue_high_water": self.queue.high_water,
            "queue_shed": self.queue.shed + self.pool_shed,
            "last_error": self.last_error,
            "breaker": self.breaker.as_dict(),
        }


# --------------------------------------------------------------------------
# The service
# --------------------------------------------------------------------------


class HostService:
    """A long-running, supervised host-application daemon.

    *make_app* builds one isolated app per lane:
    ``make_app(services) -> HostApp`` (the same factory contract
    :func:`repro.host.cli.run_host_app` uses).  *source* is any
    iterable of ``(Time, frame)`` — a
    :class:`~repro.net.replay.TraceReplayer`, a
    :class:`~repro.net.replay.LiveCaptureSource`, or a test generator.
    *spec* supplies flow placement (default: 5-tuple sharding; the
    firewall's host-pair spec keeps its state lane-local).

    ``serve()`` runs until a stop is requested (signal, duration
    bound, or source exhaustion), then drains and writes artifacts.
    """

    def __init__(self, make_app: Callable[[PipelineServices], HostApp],
                 source, config: Optional[ServiceConfig] = None,
                 spec: Optional[LaneSpec] = None):
        self.make_app = make_app
        self.source = source
        self.config = config if config is not None else ServiceConfig()
        self.spec = spec if spec is not None else LaneSpec()
        self.lanes = [_Lane(i, self.config)
                      for i in range(self.config.lanes)]
        self._transport = self.config.lane_transport
        self._pool = None
        if self._transport == "pool":
            # The shared pool outlives this service instance: a restart
            # reattaches to the same hot workers instead of respawning.
            from .pool import WorkerPool

            self._pool = WorkerPool.shared(self.config.lanes)
        self.metrics = MetricsRegistry()
        self.windows = RollingWindows(self.config.windows)
        self.history = TimeSeriesStore(
            max_samples=self.config.history_samples)
        self._stop = threading.Event()
        self.stop_reason: Optional[str] = None
        self._lock = threading.Lock()  # metrics + windows + snapshots
        self._ingest_thread: Optional[threading.Thread] = None
        self._httpd = None
        self._http_thread: Optional[threading.Thread] = None
        self.http_address: Optional[Tuple[str, int]] = None
        self._started_at: Optional[float] = None
        self._started_ts: Optional[float] = None  # wall clock, discovery
        self.ingested = 0
        self.ingest_done = False
        self.dropped_on_stop = 0
        self.dropped_to_failed = 0
        self.exit_code: Optional[int] = None
        self.artifacts: List[str] = []

    # -- control -----------------------------------------------------------

    def should_stop(self) -> bool:
        return self._stop.is_set()

    def request_stop(self, reason: str = "requested") -> None:
        """Ask the service to drain and exit (thread/signal safe)."""
        if not self._stop.is_set():
            self.stop_reason = reason
            self._stop.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT -> graceful drain (main thread only; a no-op
        elsewhere, so in-process test harnesses can call it freely)."""
        if threading.current_thread() is not threading.main_thread():
            return
        def _handler(signum, frame):
            self.request_stop(f"signal {signum}")
        _signal.signal(_signal.SIGTERM, _handler)
        _signal.signal(_signal.SIGINT, _handler)

    def uptime(self) -> float:
        if self._started_at is None:
            return 0.0
        return _time.monotonic() - self._started_at

    # -- lane lifecycle ----------------------------------------------------

    def _lane_services(self, lane: _Lane) -> PipelineServices:
        config = self.config
        return PipelineServices(
            faults=lane.injector,
            watchdog_budget=config.watchdog_budget,
            telemetry=Telemetry(metrics=config.lane_metrics),
            max_sessions=config.max_sessions,
            session_ttl=config.session_ttl,
            memory_budget_bytes=config.memory_budget_bytes,
        )

    def _start_lane(self, lane: _Lane) -> None:
        lane.breaker.record_flow()
        lane.crashed = False
        lane.drained = False
        lane.processed_since_start = 0
        lane.thread = threading.Thread(
            target=self._lane_body, args=(lane,),
            name=f"service-lane-{lane.index}", daemon=True)
        lane.thread.start()

    def _lane_body(self, lane: _Lane) -> None:
        in_hand = False
        try:
            if lane.app is None:
                # Built inside the lane thread so a slow (or crashing)
                # construction never blocks supervision.
                lane.app = self.make_app(self._lane_services(lane))
                lane.app.on_begin()
            while True:
                item = lane.queue.get(timeout=0.2)
                if item is _EMPTY:
                    continue
                if item is _SENTINEL:
                    lane.drained = True
                    return
                in_hand = True
                lane.injector.check(SITE_SERVICE_LANE)
                timestamp, frame = item
                lane.app.on_packet(timestamp, frame)
                in_hand = False
                lane.processed += 1
                lane.processed_since_start += 1
        except BaseException as error:  # noqa: BLE001 — crash boundary
            lane.crashes += 1
            lane.crashed = True
            lane.last_error = f"{type(error).__name__}: {error}"
            if in_hand:
                lane.packets_lost += 1

    def _archive_lane_app(self, lane: _Lane) -> None:
        """Harvest whatever a (possibly crashed) app produced so its
        results survive the replacement instance."""
        if lane.app is None:
            return
        try:
            lane.archived_lines.extend(lane.app.result_lines())
        except Exception:
            pass
        try:
            lane.archived_records.extend(lane.app.flow_record_lines())
        except Exception:
            pass
        lane.app = None

    def _supervise_lanes(self, now: float) -> None:
        config = self.config
        for lane in self.lanes:
            if lane.failed or lane.thread is None:
                continue
            if lane.thread.is_alive() or lane.drained:
                continue
            if not lane.crashed:
                continue
            if lane.pending_restart_at is None:
                # Fresh crash: a long healthy run forgives past
                # violations (the breaker targets rapid crash loops,
                # not a crash every few million packets).
                if lane.processed_since_start >= config.healthy_packets:
                    lane.breaker = CircuitBreaker(
                        threshold=config.breaker_threshold,
                        min_flows=config.breaker_min_starts)
                    lane.breaker.record_flow()
                lane.breaker.record_violation()
                if lane.breaker.tripped:
                    lane.failed = True
                    # Nothing will consume this queue again; count the
                    # leftovers now so the drain condition (all queues
                    # empty) stays reachable and accounting stays exact.
                    self.dropped_to_failed += lane.queue.drain()
                    self._archive_lane_app(lane)
                    lane.thread = None
                    continue
                consecutive = max(1, lane.breaker.violations)
                delay = min(config.backoff_cap,
                            config.backoff_base * (2 ** (consecutive - 1)))
                lane.backoff_seconds += delay
                lane.pending_restart_at = now + delay
            elif now >= lane.pending_restart_at:
                lane.pending_restart_at = None
                lane.restarts += 1
                self._archive_lane_app(lane)
                self._start_lane(lane)

    def _crash_pool_lane(self, lane: _Lane, now: float,
                         error: str) -> None:
        """Shared crash bookkeeping for a pool lane: conservation
        accounting, breaker escalation, restart scheduling."""
        config = self.config
        pool = self._pool
        lane.pool_down = True
        lane.crashes += 1
        lane.crashed = True
        lane.last_error = error
        # Everything handed to the worker but not retired — including
        # the parent-side batch that never flushed — is lost with it.
        lost = max(0, pool.pushed(lane.index) + pool.buffered(lane.index)
                   - pool.progressed(lane.index))
        lane.packets_lost += lost
        lane.processed = lane.pool_base + pool.progressed(lane.index)
        lane.pool_base = lane.processed
        if lane.processed_since_start >= config.healthy_packets:
            lane.breaker = CircuitBreaker(
                threshold=config.breaker_threshold,
                min_flows=config.breaker_min_starts)
            lane.breaker.record_flow()
        lane.breaker.record_violation()
        if lane.breaker.tripped:
            lane.failed = True
            # Respawn anyway: the shared pool must stay healthy for
            # sibling lanes now and for future runs.
            with lane.pool_lock:
                pool.respawn(lane.index)
            return
        consecutive = max(1, lane.breaker.violations)
        delay = min(config.backoff_cap,
                    config.backoff_base * (2 ** (consecutive - 1)))
        lane.backoff_seconds += delay
        lane.pending_restart_at = now + delay

    def _supervise_pool_lanes(self, now: float) -> None:
        """Pool-transport supervision: liveness and in-run errors come
        from the pool's progress protocol instead of thread state."""
        pool = self._pool
        for lane in self.lanes:
            if lane.failed:
                continue
            index = lane.index
            if lane.pending_restart_at is not None:
                if now >= lane.pending_restart_at:
                    lane.pending_restart_at = None
                    lane.restarts += 1
                    with lane.pool_lock:
                        pool.respawn(index)
                        pool.begin_worker(index)
                        lane.pool_down = False
                    lane.crashed = False
                    lane.processed_since_start = 0
                    lane.breaker.record_flow()
                continue
            if lane.pool_down:
                continue
            pool.poll(index)
            failure = pool.failure(index)
            if failure is not None:
                self._crash_pool_lane(lane, now, failure)
            elif not pool.alive(index):
                self._crash_pool_lane(
                    lane, now, "worker process died "
                    f"(exitcode {pool.exitcode(index)})")
            else:
                progressed = pool.progressed(index)
                lane.processed = lane.pool_base + progressed
                lane.processed_since_start = progressed

    # -- ingest ------------------------------------------------------------

    def _place(self, frame: bytes) -> _Lane:
        flow = self.spec.flow_of(frame)
        if flow is None:
            return self.lanes[0]
        lanes = len(self.lanes)
        return self.lanes[self.spec.place(flow, lanes, lanes) % lanes]

    def _ingest_body(self) -> None:
        shed_policy = self.config.overload == "shed"
        try:
            for timestamp, frame in self.source:
                if self._stop.is_set():
                    break
                self.ingested += 1
                lane = self._place(frame)
                if lane.failed:
                    self.dropped_to_failed += 1
                    continue
                item = (timestamp, frame)
                if shed_policy:
                    lane.queue.offer(item)  # drop counted by the queue
                    continue
                # Backpressure must release when the service stops OR
                # when the blocked-on lane escalates to failed — put()
                # rechecks between wait slices, so neither deadlocks.
                queued = lane.queue.put(
                    item,
                    should_stop=lambda lane=lane: (self._stop.is_set()
                                                   or lane.failed))
                if not queued:
                    if lane.failed and not self._stop.is_set():
                        self.dropped_to_failed += 1
                    else:
                        self.dropped_on_stop += 1
        finally:
            self.ingest_done = True

    def _ingest_pool_body(self) -> None:
        """Pool-transport ingest: frames go straight into the placed
        lane's shared-memory ring as batches.  Overload semantics
        mirror the queue path — ``block`` waits for ring space
        (re-checking stop/crash), ``shed`` drops at a full ring — and
        packets placed to a lane inside its crash/backoff window are
        counted lost (the ring is reset on respawn, so nothing buffers
        across the gap)."""
        shed_policy = self.config.overload == "shed"
        pool = self._pool
        last_flush = _time.monotonic()
        try:
            for timestamp, frame in self.source:
                if self._stop.is_set():
                    break
                self.ingested += 1
                lane = self._place(frame)
                if lane.failed:
                    self.dropped_to_failed += 1
                    continue
                if lane.pool_down:
                    lane.packets_lost += 1
                    continue
                with lane.pool_lock:
                    fed = pool.feed(
                        lane.index, timestamp.nanos, frame,
                        wait=(0.0 if shed_policy else None),
                        should_stop=lambda lane=lane: (
                            self._stop.is_set() or lane.failed
                            or lane.pool_down))
                if not fed:
                    if shed_policy:
                        lane.pool_shed += 1
                    elif lane.pool_down and not self._stop.is_set():
                        lane.packets_lost += 1
                    elif lane.failed and not self._stop.is_set():
                        self.dropped_to_failed += 1
                    else:
                        self.dropped_on_stop += 1
                # Paced sources can leave a partial batch sitting in the
                # parent buffer indefinitely; a periodic flush bounds
                # that latency (all batch state stays on this thread).
                now = _time.monotonic()
                if now - last_flush >= 0.05:
                    last_flush = now
                    for other in self.lanes:
                        if not (other.failed or other.pool_down):
                            with other.pool_lock:
                                pool.flush(other.index, wait=0.0)
        finally:
            self.ingest_done = True

    # -- aggregation -------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        processed = sum(lane.processed for lane in self.lanes)
        shed = sum(lane.queue.shed + lane.pool_shed
                   for lane in self.lanes)
        lost = sum(lane.packets_lost for lane in self.lanes)
        return {
            "packets_ingested": self.ingested,
            "packets_processed": processed,
            "packets_shed": shed,
            "packets_lost": lost,
            "packets_dropped": self.dropped_on_stop
                               + self.dropped_to_failed,
            "packets_dropped_on_stop": self.dropped_on_stop,
            "packets_dropped_failed": self.dropped_to_failed,
            "lane_crashes": sum(lane.crashes for lane in self.lanes),
            "lane_restarts": sum(lane.restarts for lane in self.lanes),
        }

    def session_totals(self) -> Dict[str, int]:
        totals = {"open": 0, "evicted": 0, "expired": 0}
        for lane in self.lanes:
            app = lane.app
            if app is None:
                continue
            try:
                stats = app.session_stats()
            except Exception:
                continue
            for key in totals:
                totals[key] += int(stats.get(key, 0))
        return totals

    def _sample(self) -> None:
        """One aggregator tick: snapshot totals into the rolling
        windows, refresh the registry (the /metrics surface), publish
        the pool workers' latest TELEM snapshots, and append the whole
        registry to the time-series history ring."""
        now = _time.monotonic()
        totals = self.totals()
        sessions = self.session_totals()
        telem = {}
        if self._transport == "pool":
            for lane in self.lanes:
                snapshot = self._pool.telemetry(lane.index)
                if snapshot:
                    telem[lane.index] = snapshot
        with self._lock:
            self.windows.sample(now, totals)
            rates = self.windows.rates()
            metrics = self.metrics
            for name, value in totals.items():
                counter = metrics.counter(f"service.{name}")
                counter.value = 0
                counter.inc(int(value))
            for name, value in (
                ("service.uptime_seconds", self.uptime()),
                ("service.lanes_total", len(self.lanes)),
                ("service.lanes_failed",
                 sum(1 for lane in self.lanes if lane.failed)),
                ("service.sessions_open", sessions["open"]),
                ("service.restart_backoff_seconds",
                 sum(lane.backoff_seconds for lane in self.lanes)),
            ):
                metrics.gauge(name).set(value)
            for key in ("evicted", "expired"):
                counter = metrics.counter(f"service.sessions_{key}")
                counter.value = 0
                counter.inc(sessions[key])
            for lane in self.lanes:
                label = str(lane.index)
                metrics.gauge("service.queue_depth", lane=label).set(
                    lane.queue.depth())
                metrics.gauge("service.queue_high_water", lane=label).set(
                    lane.queue.high_water)
                shed = metrics.counter("service.queue_shed", lane=label)
                shed.value = 0
                shed.inc(lane.queue.shed)
            for window, entries in rates.items():
                pps = entries.get("packets_processed")
                if pps is not None:
                    metrics.gauge("service.packets_per_second",
                                  window=window).set(
                        round(pps["per_second"], 3))
            for lane in self.lanes:
                metrics.gauge("service.worker_alive",
                              worker=str(lane.index)).set(
                    int(lane.alive()))
            for index, snapshot in telem.items():
                self._apply_worker_snapshot(str(index), snapshot)
            self.history.sample(_time.time(), metrics.collect())

    def _apply_worker_snapshot(self, label: str, snapshot: Dict) -> None:
        """Publish one worker's latest ``TELEM`` snapshot into the
        service registry under a ``worker`` label.  The worker ships
        cumulative totals, so every value is *set* absolutely — a
        re-applied snapshot overwrites, never accumulates.  Caller
        holds ``self._lock``."""
        metrics = self.metrics
        for name, value in (snapshot.get("live") or {}).items():
            metrics.gauge(f"worker.{name}", worker=label).set(value)
        for name in ("spans_started", "spans_dropped"):
            if name in snapshot:
                metrics.gauge(f"worker.{name}", worker=label).set(
                    snapshot[name])
        for entry in snapshot.get("series") or []:
            labels = dict(entry.get("labels", {}))
            labels["worker"] = label
            kind = entry["kind"]
            if kind == "counter":
                counter = metrics.counter(entry["name"], **labels)
                counter.value = entry["value"]
            elif kind == "gauge":
                metrics.gauge(entry["name"], **labels).set(entry["value"])
            # Histograms are skipped live: their buckets merge exactly
            # once, from the final lane result at drain.

    # -- the HTTP control surface ------------------------------------------

    def healthz(self) -> Tuple[int, Dict[str, object]]:
        failed = sum(1 for lane in self.lanes if lane.failed)
        status = "ok" if failed == 0 else "degraded"
        body = {
            "status": status,
            "uptime_seconds": round(self.uptime(), 3),
            "lanes": len(self.lanes),
            "lanes_failed": failed,
            "stopping": self._stop.is_set(),
        }
        return (200 if failed == 0 else 503), body

    def stats_report(self) -> Dict[str, object]:
        with self._lock:
            rates = self.windows.rates()
        return {
            "app": self.config.app_name,
            "uptime_seconds": round(self.uptime(), 3),
            "overload": self.config.overload,
            "transport": self.config.lane_transport,
            "totals": self.totals(),
            "sessions": self.session_totals(),
            "windows": rates,
            "lanes": [lane.snapshot() for lane in self.lanes],
            "stop_reason": self.stop_reason,
        }

    def flows_report(self, limit: int = 256) -> Dict[str, object]:
        flows: List[Dict] = []
        for lane in self.lanes:
            app = lane.app
            if app is None:
                continue
            try:
                snapshot = app.flow_snapshot(limit - len(flows))
            except Exception:
                continue
            for entry in snapshot:
                entry = dict(entry)
                entry["lane"] = lane.index
                flows.append(entry)
            if len(flows) >= limit:
                break
        return {"flows": flows, "count": len(flows)}

    def flow_record_lines(self) -> List[str]:
        """Every sealed flow record so far: archived from replaced
        (crashed/drained) app instances plus the live apps' ledgers."""
        records: List[str] = []
        for lane in self.lanes:
            records.extend(lane.archived_records)
            app = lane.app
            if app is None:
                continue
            try:
                records.extend(app.flow_record_lines())
            except Exception:
                continue
        records.sort()
        return records

    def flow_records_report(self, limit: int = 1024) -> Dict[str, object]:
        """The ``/flows/records`` body: sealed flow records as parsed
        JSON documents (schema ``repro-flowrecords/1``)."""
        from ..net.flowrecord import FLOWRECORDS_SCHEMA

        lines = self.flow_record_lines()
        return {
            "schema": FLOWRECORDS_SCHEMA,
            "app": self.config.app_name,
            "count": len(lines),
            "records": [_json.loads(line) for line in lines[:limit]],
        }

    def metrics_jsonl(self) -> str:
        import io

        with self._lock:
            buffer = io.StringIO()
            self.metrics.emit_jsonl(buffer, meta={
                "app": self.config.app_name, "mode": "service",
            })
            return buffer.getvalue()

    def metrics_prometheus(self) -> str:
        """The registry in Prometheus text exposition format (0.0.4)."""
        with self._lock:
            return _promtext.render(self.metrics.collect())

    def history_report(self,
                       window: Optional[float] = None) -> Dict[str, object]:
        """The time-series ring as one JSON document (the
        ``/metrics/history`` body): schema tag plus the samples inside
        *window* seconds of the newest one (all of them when None)."""
        with self._lock:
            samples = self.history.history(window=window)
        return {
            "schema": TIMESERIES_SCHEMA,
            "app": self.config.app_name,
            "window": window,
            "count": len(samples),
            "samples": samples,
        }

    def _start_http(self) -> None:
        if self.config.http_host is None or self.config.http_port is None:
            return
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        service = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # silence per-request noise
                pass

            def _send(self, code: int, body: bytes,
                      content_type: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_json(self, code: int, doc) -> None:
                body = (_json.dumps(doc, sort_keys=True) + "\n").encode()
                self._send(code, body, "application/json")

            def do_GET(self):  # noqa: N802 — http.server's spelling
                from urllib.parse import parse_qs

                path, __, query = self.path.partition("?")
                params = parse_qs(query)
                try:
                    if path == "/healthz":
                        code, doc = service.healthz()
                        self._send_json(code, doc)
                    elif path == "/stats":
                        self._send_json(200, service.stats_report())
                    elif path == "/flows":
                        self._send_json(200, service.flows_report())
                    elif path == "/flows/records":
                        self._send_json(200,
                                        service.flow_records_report())
                    elif path == "/metrics":
                        # Content negotiation: JSON-lines natively,
                        # the Prometheus text format for scrapers
                        # (?format=prometheus or Accept: text/plain).
                        fmt = params.get("format", [None])[0]
                        accept = self.headers.get("Accept", "") or ""
                        if fmt == "prometheus" or (
                                fmt is None and "text/plain" in accept):
                            self._send(
                                200,
                                service.metrics_prometheus().encode(),
                                _promtext.CONTENT_TYPE)
                        else:
                            self._send(200,
                                       service.metrics_jsonl().encode(),
                                       "application/jsonl")
                    elif path == "/metrics/history":
                        raw = params.get("window", [None])[0]
                        window = float(raw) if raw is not None else None
                        self._send_json(200,
                                        service.history_report(window))
                    else:
                        self._send_json(404, {"error": "not found",
                                              "path": path})
                except Exception as error:  # pragma: no cover
                    self._send_json(500, {"error": str(error)})

        self._httpd = ThreadingHTTPServer(
            (self.config.http_host, self.config.http_port), Handler)
        self._httpd.daemon_threads = True
        self.http_address = self._httpd.server_address[:2]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="service-http",
            daemon=True)
        self._http_thread.start()

    def _stop_http(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None

    # -- service.json ------------------------------------------------------

    def _service_json_path(self) -> str:
        return _os.path.join(self.config.logdir, "service.json")

    def _write_service_json(self, state: str,
                            extra: Optional[Dict] = None,
                            name: str = "service.json") -> str:
        """The discovery file live tooling resolves the service from
        (``servicetop`` reads ``http`` out of it).  ``service.json``
        exists exactly while the service runs — the drain removes it
        and leaves the terminal document in ``service-final.json``."""
        _os.makedirs(self.config.logdir, exist_ok=True)
        doc: Dict[str, object] = {
            "schema": SERVICE_SCHEMA,
            "pid": _os.getpid(),
            "state": state,
            "started_ts": self._started_ts,
            "http": ({"host": self.http_address[0],
                      "port": self.http_address[1]}
                     if self.http_address else None),
            "config": self.config.as_dict(),
        }
        if extra:
            doc.update(extra)
        path = _os.path.join(self.config.logdir, name)
        with open(path, "w") as stream:
            _json.dump(doc, stream, indent=2, sort_keys=True)
            stream.write("\n")
        return path

    def _remove_service_json(self) -> None:
        try:
            _os.remove(self._service_json_path())
        except OSError:
            pass

    # -- running -----------------------------------------------------------

    def serve(self) -> int:
        """Run until stopped; drain; write artifacts; return the exit
        code (0 = clean drain)."""
        config = self.config
        self._started_at = _time.monotonic()
        self._started_ts = _time.time()
        self._start_http()
        self._write_service_json("running")
        if self._transport == "pool":
            # One shared begin: every pool worker arms a fresh lane
            # (dead workers are respawned inside begin_run).
            self._pool.begin_run(self.spec, {})
            for lane in self.lanes:
                lane.breaker.record_flow()
        else:
            for lane in self.lanes:
                self._start_lane(lane)
        self._ingest_thread = threading.Thread(
            target=(self._ingest_pool_body if self._transport == "pool"
                    else self._ingest_body),
            name="service-ingest", daemon=True)
        self._ingest_thread.start()

        next_tick = self._started_at + config.tick_seconds
        try:
            while not self._stop.is_set():
                now = _time.monotonic()
                if (config.duration_seconds is not None
                        and now - self._started_at
                        >= config.duration_seconds):
                    self.request_stop("duration")
                    break
                # Failed lanes are excluded: nothing consumes their
                # queues (a put() racing the escalation drain can still
                # land an item there; _drain re-counts it).  Pool lanes
                # have no parent-side queue — the drain collects what
                # is still in flight in the rings.
                if self.ingest_done and (
                        self._transport == "pool" or all(
                            lane.queue.depth() == 0 for lane in self.lanes
                            if not lane.failed)):
                    self.request_stop("source exhausted")
                    break
                if self._transport == "pool":
                    self._supervise_pool_lanes(now)
                else:
                    self._supervise_lanes(now)
                if now >= next_tick:
                    self._sample()
                    next_tick += config.tick_seconds
                self._stop.wait(0.02)
        except KeyboardInterrupt:
            self.request_stop("interrupt")
        finally:
            self.exit_code = self._drain()
        return self.exit_code

    def _drain(self) -> int:
        """Stop ingest, let lanes finish their queues/rings, finalize
        every app, flush telemetry, write artifacts."""
        config = self.config
        self._stop.set()
        if self.stop_reason is None:
            self.stop_reason = "drain"
        if self._ingest_thread is not None:
            self._ingest_thread.join(timeout=config.drain_timeout)

        if self._transport == "pool":
            lines, hung = self._drain_pool_lanes()
        else:
            lines, hung = self._drain_thread_lanes()
        lines.sort()

        self._sample()
        self.artifacts = self._write_artifacts(lines)
        self._stop_http()
        exit_code = 1 if hung else 0
        self._write_service_json("drained", {
            "exit_code": exit_code,
            "stop_reason": self.stop_reason,
            "totals": self.totals(),
            "sessions": self.session_totals(),
            "artifacts": self.artifacts,
        }, name="service-final.json")
        self._remove_service_json()
        return exit_code

    def _drain_thread_lanes(self) -> Tuple[List[str], bool]:
        config = self.config
        # Crashed-but-not-restarted lanes can't consume their queues.
        for lane in self.lanes:
            alive = lane.thread is not None and lane.thread.is_alive()
            if lane.failed:
                self.dropped_to_failed += lane.queue.drain()
            elif not alive:
                self.dropped_on_stop += lane.queue.drain()
            lane.queue.force(_SENTINEL)

        hung = False
        for lane in self.lanes:
            if lane.thread is not None:
                lane.thread.join(timeout=config.drain_timeout)
                if lane.thread.is_alive():
                    hung = True
        # Anything still queued behind a crash that raced the sentinel.
        for lane in self.lanes:
            self.dropped_on_stop += lane.queue.drain()

        lines: List[str] = []
        for lane in self.lanes:
            lines.extend(lane.archived_lines)
            if lane.app is None:
                continue
            try:
                if not lane.crashed:
                    lane.end_stats = lane.app.on_end()
                lines.extend(lane.app.result_lines())
                lane.archived_records.extend(lane.app.flow_record_lines())
            except Exception as error:
                lane.last_error = f"{type(error).__name__}: {error}"
                continue
            if lane.app.telemetry.enabled and not lane.crashed:
                self._merge_lane_series(
                    lane.index, lane.app.telemetry.metrics.collect())
        return lines, hung

    def _merge_lane_series(self, index: int, series: List[Dict]) -> None:
        """Fold one finished lane's final registry into the service's:
        additively unlabeled (the aggregate), and under ``worker=N``
        for attribution.  The labeled scalar copies are *set*, not
        added — the aggregator's periodic TELEM application already
        mirrors the worker's cumulative values there, and the final
        flush must overwrite that mirror, never stack on it.
        Histograms never travel in TELEM, so their labeled copies
        merge additively exactly once, here."""
        label = str(index)
        with self._lock:
            self.metrics.merge_series(series)
            histograms = [entry for entry in series
                          if entry["kind"] == "histogram"]
            if histograms:
                self.metrics.merge_series(
                    histograms, extra_labels={"worker": label})
            scalars = [entry for entry in series
                       if entry["kind"] != "histogram"]
            self._apply_worker_snapshot(label, {"series": scalars})

    def _drain_pool_lanes(self) -> Tuple[List[str], bool]:
        """Finish every live pool worker's run and harvest its result;
        lanes inside a crash window (or failed) have nothing left to
        collect — their losses were counted when they went down."""
        from .pool import PoolError

        config = self.config
        pool = self._pool
        lines: List[str] = []
        hung = False
        for lane in self.lanes:
            lines.extend(lane.archived_lines)
            index = lane.index
            if lane.failed or lane.pool_down:
                continue
            try:
                with lane.pool_lock:
                    pool.finish(index, timeout=config.drain_timeout)
                result = pool.collect(index, config.drain_timeout)
                lane.processed = lane.pool_base + pool.pushed(index)
                lane.end_stats = result.get("stats")
                lines.extend(self.spec.result_lines_of(result))
                lane.archived_records.extend(
                    self.spec.flow_record_lines_of(result))
                if result.get("metrics"):
                    self._merge_lane_series(index, result["metrics"])
            except PoolError as error:
                lane.crashes += 1
                lane.crashed = True
                lane.pool_down = True
                lane.last_error = str(error)
                lane.packets_lost += max(
                    0, pool.pushed(index) + pool.buffered(index)
                    - pool.progressed(index))
                lane.processed = lane.pool_base + pool.progressed(index)
                with lane.pool_lock:
                    pool.respawn(index)
        return lines, hung

    def _write_artifacts(self, lines: List[str]) -> List[str]:
        from ..net.flowrecord import write_flowrecords_jsonl
        from .pipeline import write_metrics_jsonl

        config = self.config
        _os.makedirs(config.logdir, exist_ok=True)
        written: List[str] = []

        results_path = _os.path.join(config.logdir, config.results_name)
        with open(results_path, "w") as stream:
            for line in lines:
                stream.write(line + "\n")
        written.append(results_path)

        # The drain already harvested every live app's ledger into the
        # lanes' archives; persist the sorted union.
        records = sorted(
            line for lane in self.lanes for line in lane.archived_records)
        written.append(write_flowrecords_jsonl(
            _os.path.join(config.logdir, "flow_records.jsonl"),
            config.app_name, records))

        with self._lock:
            written.append(write_metrics_jsonl(
                _os.path.join(config.logdir, "metrics.jsonl"),
                self.metrics, meta={"app": config.app_name,
                                    "mode": "service"}))
            history_path = _os.path.join(config.logdir,
                                         "timeseries.jsonl")
            with open(history_path, "w") as stream:
                self.history.emit_jsonl(stream, meta={
                    "app": config.app_name, "mode": "service"})
            written.append(history_path)

        stats_path = _os.path.join(config.logdir, "stats.log")
        with open(stats_path, "w") as stream:
            stream.write(self._render_stats())
        written.append(stats_path)
        return written

    def _render_stats(self) -> str:
        report = self.stats_report()
        out = [f"# stats.log — service run ({report['app']})"]
        out.append(f"uptime_seconds {report['uptime_seconds']}")
        out.append(f"stop_reason {report['stop_reason']}")
        for name in sorted(report["totals"]):
            out.append(f"{name} {int(report['totals'][name])}")
        sessions = report["sessions"]
        for name in sorted(sessions):
            out.append(f"sessions_{name} {sessions[name]}")
        for lane in report["lanes"]:
            out.append("")
            out.append(f"[lane {lane['lane']}]")
            for key in ("processed", "crashes", "restarts",
                        "packets_lost", "queue_high_water", "queue_shed",
                        "failed"):
                out.append(f"{key} {lane[key]}")
        return "\n".join(out) + "\n"
