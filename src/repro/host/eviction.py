"""LRU/TTL bookkeeping for per-session state tables.

Long-running analysis must keep flow state *flat*: the paper's target
workloads see millions of flows, and any table keyed by 5-tuples grows
without bound unless idle sessions expire and a hard cap backstops
bursts.  :class:`SessionLRU` is the shared bookkeeping both stateful
components use — :class:`repro.host.demux.FlowDemux` for the BinPAC++
driver's flows and :class:`repro.apps.bro.conn.ConnectionTracker` for
Bro's connections.  It tracks recency only; the owner closes the
session state the yielded keys name (final-flush semantics — an evicted
flow still gets its ``end()``/``connection_state_remove``).

Two distinct removal causes, counted separately by the owners:

* **expired** — idle longer than the TTL (network time, not wall
  clock: replayed traces age sessions exactly as a live capture
  would);
* **evicted** — the table hit its entry cap (or memory budget) and the
  least-recently-active session was sacrificed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator, Optional

__all__ = ["SessionLRU"]


class SessionLRU:
    """Recency ordering over session keys.

    ``touch(key, now)`` records activity (inserting on first touch),
    ``remove(key)`` forgets a key closed by its owner, and the two
    harvest generators pop and yield the keys to close — the owner
    performs the actual close while iterating.
    """

    __slots__ = ("_order",)

    def __init__(self) -> None:
        self._order: "OrderedDict[Hashable, float]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._order

    def touch(self, key: Hashable, now: float) -> None:
        """Mark *key* active at *now* and move it to most-recent."""
        self._order[key] = now
        self._order.move_to_end(key)

    def remove(self, key: Hashable) -> None:
        """Forget *key* (no-op when absent)."""
        self._order.pop(key, None)

    def last_active(self, key: Hashable) -> Optional[float]:
        return self._order.get(key)

    def oldest(self) -> Optional[Hashable]:
        return next(iter(self._order), None)

    def expired(self, deadline: float) -> Iterator[Hashable]:
        """Pop and yield every key last active at or before *deadline*,
        oldest first."""
        while self._order:
            key = next(iter(self._order))
            if self._order[key] > deadline:
                return
            del self._order[key]
            yield key

    def overflow(self, max_entries: int) -> Iterator[Hashable]:
        """Pop and yield oldest keys until at most *max_entries*
        remain."""
        while len(self._order) > max_entries:
            key, __ = self._order.popitem(last=False)
            yield key
