"""Flow-parallel drive of any :class:`HostApp` on the vthread scheduler.

The paper's concurrency model (section 3.2), generalized from the Bro
exemplar to the whole substrate: packets hash to virtual threads, each
vthread's lane runs one isolated app instance, and no lane touches
another lane's state.  Three drive backends execute the same dispatch
plan:

* ``vthread`` — the deterministic differential oracle
  (``Scheduler.run_until_idle`` on one OS thread);
* ``threaded`` — the same jobs on real ``threading`` workers;
* ``process`` — a ``multiprocessing`` fan-out, one subprocess per
  worker, results reduced at join.

What varies per application lives in a picklable :class:`LaneSpec`: how
to build a lane (``make_lane``), how to harvest it (``lane_result``),
how packets map to flows and vthreads (``flow_of`` / ``key_of`` /
``place`` — the firewall shards by host *pair* instead of 5-tuple so its
dynamic-rule state stays lane-local), and how per-flow uids are
pre-assigned in global arrival order (``uid_format``).

Output determinism is the load-bearing property: merged result lines are
sorted lexicographically, so the merge is a pure function of content,
never of worker interleaving — byte-identical to the sequential
pipeline.  See ``docs/PARALLELISM.md``.
"""

from __future__ import annotations

import multiprocessing
import os as _os
import time as _time
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.values import Time
from ..net.flows import FiveTuple, flow_of_frame, placement
from ..runtime.telemetry import Telemetry
from ..runtime.threads import Scheduler

__all__ = [
    "LaneSpec",
    "ParallelPipeline",
    "dispatch_plan",
    "flow_key",
    "merge_health",
]

_BACKENDS = ("vthread", "threaded", "process")


def flow_key(flow: FiveTuple) -> Tuple:
    """The canonical per-connection key, exactly as Bro's
    ``ConnectionTracker`` builds it — the dispatcher and the lanes must
    agree byte-for-byte so pre-assigned uids resolve."""
    canonical = flow.canonical()
    return (
        (canonical.src.value, canonical.src_port),
        (canonical.dst.value, canonical.dst_port),
        canonical.protocol,
    )


class LaneSpec:
    """Picklable description of one application's parallel lanes."""

    #: Metrics namespace of the app (used by the generic merge to repair
    #: the per-component CPU gauges after summing lanes).
    app_name = "app"

    #: ``None`` (no uid pre-assignment) or a callable ``serial -> str``.
    uid_format = None

    # -- flow placement (the Bro defaults; apps may reshard) --------------

    def flow_of(self, frame: bytes):
        """The frame's flow, or ``None`` for stray frames (lane 0)."""
        return flow_of_frame(frame)

    def key_of(self, flow) -> Tuple:
        """The state-locality key lanes shard by."""
        return flow_key(flow)

    def place(self, flow, vthreads: int, workers: int) -> int:
        """First-sight placement: the flow's vthread id."""
        vid, __ = placement(flow, vthreads, workers)
        return vid

    # -- lane lifecycle ---------------------------------------------------

    def make_lane(self, uid_map: Dict):
        """Build one isolated app instance (a :class:`HostApp`)."""
        raise NotImplementedError

    def lane_result(self, app) -> Dict:
        """Everything the merge needs from one finished lane, as plain
        data (the process backend sends this through a pipe)."""
        tracer = app.telemetry.tracer
        return {
            "lines": app.result_lines(),
            "stats": dict(app.stats),
            "metrics": (app.telemetry.metrics.collect()
                        if app.telemetry.enabled else None),
            "trace_roots": ([root.to_dict() for root in tracer.roots]
                            if tracer.enabled else None),
        }


def dispatch_plan(
    packets: Iterable[Tuple[Time, bytes]], vthreads: int, workers: int,
    spec: Optional[LaneSpec] = None,
) -> Tuple[List[Tuple[int, int, bytes]], Dict[Tuple, str]]:
    """One pass over the trace: per-packet vthread placement plus the
    global uid pre-assignment.

    Returns ``(jobs, uid_map)`` where *jobs* is ``(vid, nanos, frame)``
    per packet (frames with no flow ride on vthread 0, where the lane
    counts them exactly like the sequential pipeline) and *uid_map*
    assigns each flow key the uid the sequential run's counter would
    have produced — allocated in first-packet arrival order.
    """
    spec = spec if spec is not None else LaneSpec()
    jobs: List[Tuple[int, int, bytes]] = []
    uid_map: Dict[Tuple, str] = {}
    vids: Dict[Tuple, int] = {}
    serial = 0
    for timestamp, frame in packets:
        flow = spec.flow_of(frame)
        if flow is None:
            jobs.append((0, timestamp.nanos, frame))
            continue
        key = spec.key_of(flow)
        vid = vids.get(key)
        if vid is None:
            vid = spec.place(flow, vthreads, workers)
            vids[key] = vid
            serial += 1
            if spec.uid_format is not None:
                uid_map[key] = spec.uid_format(serial)
        jobs.append((vid, timestamp.nanos, frame))
    return jobs, uid_map


def merge_health(reports: List[Dict]) -> Dict:
    """Reduce per-lane HealthReport dicts into one."""
    merged = {
        "flows_quarantined": 0,
        "records_skipped": 0,
        "watchdog_trips": 0,
        "injected_faults": 0,
        "tier_fallback": False,
        "breaker": {"flows": 0, "violations": 0,
                    "threshold": None, "tripped": False},
        "site_errors": {},
    }
    for report in reports:
        for key in ("flows_quarantined", "records_skipped",
                    "watchdog_trips", "injected_faults"):
            merged[key] += report[key]
        merged["tier_fallback"] = (
            merged["tier_fallback"] or report["tier_fallback"])
        breaker = report["breaker"]
        merged["breaker"]["flows"] += breaker["flows"]
        merged["breaker"]["violations"] += breaker["violations"]
        if merged["breaker"]["threshold"] is None:
            merged["breaker"]["threshold"] = breaker["threshold"]
        merged["breaker"]["tripped"] = (
            merged["breaker"]["tripped"] or breaker["tripped"])
        for site, count in report["site_errors"].items():
            merged["site_errors"][site] = (
                merged["site_errors"].get(site, 0) + count)
    return merged


# --------------------------------------------------------------------------
# Lanes: one isolated app instance per vthread (or per process worker)
# --------------------------------------------------------------------------


class _LaneProgram:
    """Adapts per-flow packet analysis to the scheduler's program
    interface: contexts are app lanes, jobs are packets."""

    def __init__(self, spec: LaneSpec, uid_map: Dict):
        self._spec = spec
        self._uid_map = uid_map

    def make_context(self, vthread_id: int):
        lane = self._spec.make_lane(self._uid_map)
        lane.on_begin()
        return lane

    def init_context(self, lane) -> None:
        pass

    def call(self, lane, function: str, args: List) -> None:
        if function != "packet":
            raise ValueError(f"unknown lane job {function!r}")
        nanos, frame = args
        lane.on_packet(Time.from_nanos(nanos), frame)


def _process_worker(conn, spec: LaneSpec, shard, uid_map: Dict) -> None:
    """Subprocess body: run one lane over one flow shard, ship the
    result back through the pipe.  *shard* is either an in-memory list
    of ``(nanos, frame)`` or a path to a pcap shard file."""
    try:
        lane = spec.make_lane(uid_map)
        lane.on_begin()
        if isinstance(shard, str):
            from ..net.pcap import PcapReader

            with PcapReader(shard) as reader:
                for timestamp, frame in reader:
                    lane.on_packet(timestamp, frame)
        else:
            for nanos, frame in shard:
                lane.on_packet(Time.from_nanos(nanos), frame)
        lane.on_end()
        conn.send(spec.lane_result(lane))
    except BaseException as error:  # surface the failure to the parent
        try:
            conn.send({"error": repr(error)})
        except Exception:
            pass
        raise
    finally:
        conn.close()


# --------------------------------------------------------------------------
# The parallel driver
# --------------------------------------------------------------------------


class ParallelPipeline:
    """A flow-parallel run of one app: same analysis, N isolated lanes.

    *workers* is the hardware parallelism, *vthreads* the virtual-thread
    supply (defaults to ``4 * workers``), *backend* one of ``vthread``,
    ``threaded``, ``process``.  The deterministic fault injector is
    intentionally not plumbed through — its per-site random streams are
    sequential by construction and would diverge per lane.
    """

    #: Gauge series whose lane-merge takes the max instead of the sum.
    GAUGE_MERGE: Dict[str, str] = {"health.breaker_tripped": "max"}

    def __init__(
        self,
        spec: LaneSpec,
        workers: int = 4,
        vthreads: Optional[int] = None,
        backend: str = "process",
        telemetry: Optional[Telemetry] = None,
    ):
        if backend not in _BACKENDS:
            raise ValueError(f"unknown parallel backend {backend!r}")
        if workers < 1:
            raise ValueError("parallel pipeline needs at least one worker")
        self.spec = spec
        self.workers = workers
        self.vthreads = vthreads if vthreads is not None else 4 * workers
        if self.vthreads < workers:
            raise ValueError("vthreads must be >= workers")
        self.backend = backend
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.stats: Dict[str, object] = {}
        self.scheduler: Optional[Scheduler] = None
        self._results: List[Dict] = []
        self._lines: List[str] = []
        self._trace_roots: List[Dict] = []
        self._pcap_stats: Dict[str, int] = {}

    # -- running ------------------------------------------------------------

    def run(self, packets: Iterable[Tuple[Time, bytes]]) -> Dict:
        """Process a trace across all lanes; returns the merged stats."""
        begin = _time.perf_counter_ns()
        jobs, uid_map = dispatch_plan(packets, self.vthreads, self.workers,
                                      spec=self.spec)
        if self.backend == "process":
            self._run_process(jobs, uid_map)
        else:
            self._run_scheduler(jobs, uid_map,
                                threaded=self.backend == "threaded")
        self._merge(_time.perf_counter_ns() - begin)
        return self.stats

    def run_pcap(self, path: str, tolerant: bool = False,
                 shard_dir: Optional[str] = None) -> Dict:
        """Drive the lanes from a pcap trace.

        With *shard_dir* (process backend only) the trace is fanned out
        into per-worker pcap shard files which the workers read
        themselves — the scalable route for traces that should not live
        in the parent's memory twice.
        """
        from ..net.pcap import PcapReader

        if shard_dir is not None and self.backend != "process":
            raise ValueError("pcap sharding requires the process backend")
        begin = _time.perf_counter_ns()
        with PcapReader(path, tolerant=tolerant) as reader:
            jobs, uid_map = dispatch_plan(reader, self.vthreads,
                                          self.workers, spec=self.spec)
            self._pcap_stats = {
                "records_read": reader.packets_read,
                "records_skipped": reader.records_skipped,
                "resyncs": reader.resyncs,
            }
        if shard_dir is not None:
            shards = self._write_shards(jobs, shard_dir)
            self._run_process(jobs, uid_map, shard_paths=shards)
        elif self.backend == "process":
            self._run_process(jobs, uid_map)
        else:
            self._run_scheduler(jobs, uid_map,
                                threaded=self.backend == "threaded")
        self._merge(_time.perf_counter_ns() - begin)
        skipped = self._pcap_stats["records_skipped"]
        if skipped:
            self.stats["health"]["records_skipped"] += skipped
        return self.stats

    def _write_shards(self, jobs, shard_dir: str) -> List[str]:
        """Fan the dispatch plan out into per-worker pcap shard files."""
        from ..net.pcap import PcapWriter

        _os.makedirs(shard_dir, exist_ok=True)
        paths = [_os.path.join(shard_dir, f"shard-{i:03d}.pcap")
                 for i in range(self.workers)]
        writers = [PcapWriter(p, nanos=True) for p in paths]
        try:
            for vid, nanos, frame in jobs:
                writers[vid % self.workers].write(
                    Time.from_nanos(nanos), frame)
        finally:
            for writer in writers:
                writer.close()
        return paths

    def _run_scheduler(self, jobs, uid_map, threaded: bool) -> None:
        """In-process backends: packet jobs on the vthread scheduler."""
        program = _LaneProgram(self.spec, uid_map)
        scheduler = Scheduler(program, workers=self.workers)
        # Lane 0 always exists: it owns stray frames and guarantees any
        # per-lane lifecycle work runs at least once on an empty trace.
        scheduler.context_for(0)
        for vid, nanos, frame in jobs:
            scheduler.schedule(vid, "packet", (nanos, frame))
        if threaded:
            scheduler.run_threaded()
        else:
            scheduler.run_until_idle()
        self.scheduler = scheduler
        contexts = scheduler.contexts()
        results = []
        for vid in sorted(contexts):
            lane = contexts[vid]
            lane.on_end()
            results.append(self.spec.lane_result(lane))
        self._results = results

    def _run_process(self, jobs, uid_map,
                     shard_paths: Optional[List[str]] = None) -> None:
        """The multiprocessing backend: one subprocess per worker."""
        if shard_paths is None:
            shards: List[List[Tuple[int, bytes]]] = [
                [] for __ in range(self.workers)
            ]
            for vid, nanos, frame in jobs:
                shards[vid % self.workers].append((nanos, frame))
        else:
            shards = shard_paths  # type: ignore[assignment]
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        procs = []
        pipes = []
        for index in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_process_worker,
                args=(child_conn, self.spec, shards[index], uid_map),
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            pipes.append(parent_conn)
        results = []
        failures = []
        for index, (proc, conn) in enumerate(zip(procs, pipes)):
            try:
                result = conn.recv()
            except EOFError:
                result = {"error": "worker died before reporting"}
            finally:
                conn.close()
            if "error" in result:
                failures.append(f"worker {index}: {result['error']}")
            else:
                results.append(result)
        for proc in procs:
            proc.join()
        if failures:
            raise RuntimeError(
                "parallel workers failed: " + "; ".join(failures))
        self._results = results

    # -- the ordered merge --------------------------------------------------

    def _merge(self, total_ns: int) -> None:
        """Reduce per-lane results into one deterministic report: result
        lines merge by lexicographic sort, integer stats sum, the health
        reports reduce, per-lane metric registries merge."""
        results = self._results
        lanes = len(results)

        lines: List[str] = []
        for result in results:
            lines.extend(result["lines"])
        lines.sort()
        self._lines = lines

        def stat_sum(key):
            return sum(int(r["stats"].get(key, 0)) for r in results)

        parsing_ns = stat_sum("parsing_ns")
        script_ns = stat_sum("script_ns")
        glue_ns = stat_sum("glue_ns")
        self.stats = {
            "app": self.spec.app_name,
            "total_ns": total_ns,
            "parsing_ns": parsing_ns,
            "script_ns": script_ns,
            "glue_ns": glue_ns,
            "other_ns": max(
                0, total_ns - parsing_ns - script_ns - glue_ns),
            "packets": stat_sum("packets"),
            "health": merge_health(
                [r["stats"]["health"] for r in results]),
            "backend": self.backend,
            "workers": self.workers,
            "vthreads": self.vthreads,
            "lanes": lanes,
            "scheduler_errors": (
                len(self.scheduler.errors) if self.scheduler else 0
            ),
        }
        # Application counters (integer-valued app_stats entries) sum
        # across lanes; non-numeric entries pass through from lane 0.
        fixed = set(self.stats) | {"total_ns", "other_ns"}
        for result in results:
            for key, value in result["stats"].items():
                if key in fixed:
                    continue
                if isinstance(value, bool) or not isinstance(value, int):
                    self.stats.setdefault(key, value)
                else:
                    self.stats[key] = int(self.stats.get(key, 0)) + value
        if self.telemetry.enabled:
            self._merge_metrics(results, lanes)
        self._trace_roots = []
        for result in results:
            if result.get("trace_roots"):
                self._trace_roots.extend(result["trace_roots"])

    def _merge_metrics(self, results: List[Dict], lanes: int) -> None:
        """Reduce per-lane registries, then repair the series whose
        lane-sum is not the sequential semantic: the per-component CPU
        gauges (total is this run's wall clock, other its remainder) and
        the parent-side pcap counters."""
        metrics = self.telemetry.metrics
        for result in results:
            if result["metrics"]:
                metrics.merge_series(result["metrics"],
                                     gauge_merge=self.GAUGE_MERGE)
        name = self.spec.app_name
        for component in ("parsing", "script", "glue", "other", "total"):
            metrics.gauge(f"{name}.cpu_ns", component=component).set(
                int(self.stats[f"{component}_ns"]))
        for key, value in self._pcap_stats.items():
            metrics.counter(f"pcap.{key}").inc(value)

    # -- results ------------------------------------------------------------

    def result_lines(self) -> List[str]:
        """The deterministically merged result lines."""
        return list(self._lines)

    def cpu_breakdown(self, config: Optional[Dict] = None) -> Dict:
        from ..runtime.telemetry import cpu_breakdown_report

        if not self.stats:
            raise RuntimeError("cpu_breakdown() requires a completed run")
        if config is None:
            config = {
                "app": self.spec.app_name,
                "backend": self.backend,
                "workers": self.workers,
            }
        return cpu_breakdown_report(self.stats, config=config)

    def write_telemetry(self, logdir: str,
                        meta: Optional[Dict] = None) -> List[str]:
        """Emit the merged reporting files (``metrics.jsonl``,
        ``stats.log``, and ``flows.jsonl`` when tracing was armed).
        Per-function profiler dumps stay per-lane and are not merged."""
        import json as _json

        from .pipeline import write_metrics_jsonl, write_stats_log

        _os.makedirs(logdir, exist_ok=True)
        written: List[str] = []
        if meta is None:
            meta = {
                "app": self.spec.app_name,
                "backend": self.backend,
                "workers": self.workers,
                "vthreads": self.vthreads,
            }
        written.append(write_metrics_jsonl(
            _os.path.join(logdir, "metrics.jsonl"),
            self.telemetry.metrics, meta=meta))
        sections = {
            "parallel": {
                "backend": self.backend,
                "workers": self.workers,
                "vthreads": self.vthreads,
                "lanes": self.stats.get("lanes", 0),
            },
        }
        written.append(write_stats_log(
            _os.path.join(logdir, "stats.log"), self.stats, sections))
        if self._trace_roots:
            path = _os.path.join(logdir, "flows.jsonl")
            lines = sorted(
                _json.dumps(root, sort_keys=True)
                for root in self._trace_roots
            )
            with open(path, "w") as stream:
                for line in lines:
                    stream.write(line + "\n")
            written.append(path)
        return written
