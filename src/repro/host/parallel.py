"""Flow-parallel drive of any :class:`HostApp` on the vthread scheduler.

The paper's concurrency model (section 3.2), generalized from the Bro
exemplar to the whole substrate: packets hash to virtual threads, each
vthread's lane runs one isolated app instance, and no lane touches
another lane's state.  Four drive backends execute the same dispatch
plan:

* ``vthread`` — the deterministic differential oracle
  (``Scheduler.run_until_idle`` on one OS thread);
* ``threaded`` — the same jobs on real ``threading`` workers;
* ``process`` — a ``multiprocessing`` fan-out, one subprocess per
  worker, results reduced at join;
* ``pool`` — the persistent shared-memory worker pool
  (:mod:`repro.host.pool`): workers spawn once and stay hot across
  runs, packets travel as length-prefixed batches through SPSC rings.
  The default on multi-core hosts (:func:`default_backend`).

What varies per application lives in a picklable :class:`LaneSpec`: how
to build a lane (``make_lane``), how to harvest it (``lane_result``),
how packets map to flows and vthreads (``flow_of`` / ``key_of`` /
``place`` — the firewall shards by host *pair* instead of 5-tuple so its
dynamic-rule state stays lane-local), and how per-flow uids are
pre-assigned in global arrival order (``uid_format``).

Output determinism is the load-bearing property: merged result lines are
sorted lexicographically, so the merge is a pure function of content,
never of worker interleaving — byte-identical to the sequential
pipeline.  See ``docs/PARALLELISM.md``.
"""

from __future__ import annotations

import multiprocessing
import os as _os
import time as _time
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.values import Time
from ..net.flows import FiveTuple, flow_of_frame, placement
from ..runtime.telemetry import Telemetry
from ..runtime.threads import Scheduler
from .worker import process_worker as _process_worker  # noqa: F401 (re-export)

__all__ = [
    "LaneSpec",
    "ParallelPipeline",
    "default_backend",
    "dispatch_plan",
    "flow_key",
    "merge_health",
    "prof_snapshots",
    "usable_cpus",
]

_BACKENDS = ("vthread", "threaded", "process", "pool")


def usable_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(_os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return _os.cpu_count() or 1


def default_backend() -> str:
    """The backend ``--parallel`` picks when none is named: the
    persistent pool wherever real parallelism exists, the classic
    one-shot process fan-out on a single-CPU box (where hot workers
    buy nothing and the pool's resident processes are pure cost)."""
    return "pool" if usable_cpus() > 1 else "process"


def flow_key(flow: FiveTuple) -> FiveTuple:
    """The canonical per-connection key — the direction-independent
    :class:`FiveTuple` itself (value-hashed, picklable).  The dispatcher
    and the lanes' flow tables build exactly the same object, so
    pre-assigned uids resolve across process boundaries."""
    return flow.canonical()


class LaneSpec:
    """Picklable description of one application's parallel lanes."""

    #: Metrics namespace of the app (used by the generic merge to repair
    #: the per-component CPU gauges after summing lanes).
    app_name = "app"

    #: ``None`` (no uid pre-assignment) or a callable ``serial -> str``.
    uid_format = None

    #: Flow-record uid pre-assignment for apps whose sharding key is
    #: *not* the 5-tuple (or that assign no app uids at all): ``None``
    #: when ``uid_format`` already covers flow keys, else a callable
    #: ``serial -> str`` applied per first-sighted flow key.
    record_uid_format = None

    # -- flow placement (the Bro defaults; apps may reshard) --------------

    def flow_of(self, frame: bytes):
        """The frame's flow, or ``None`` for stray frames (lane 0)."""
        return flow_of_frame(frame)

    def key_of(self, flow) -> Tuple:
        """The state-locality key lanes shard by."""
        return flow_key(flow)

    def place(self, flow, vthreads: int, workers: int) -> int:
        """First-sight placement: the flow's vthread id."""
        vid, __ = placement(flow, vthreads, workers)
        return vid

    # -- lane lifecycle ---------------------------------------------------

    def make_lane(self, uid_map: Dict):
        """Build one isolated app instance (a :class:`HostApp`)."""
        raise NotImplementedError

    def lane_result(self, app) -> Dict:
        """Everything the merge needs from one finished lane, as plain
        data (the process backend sends this through a pipe)."""
        tracer = app.telemetry.tracer
        return {
            "lines": app.result_lines(),
            "flow_records": app.flow_record_lines(),
            "stats": dict(app.stats),
            "metrics": (app.telemetry.metrics.collect()
                        if app.telemetry.enabled else None),
            "prof": (prof_snapshots(app)
                     if app.telemetry.enabled else None),
            "trace_roots": ([root.to_dict() for root in tracer.roots]
                            if tracer.enabled else None),
        }

    def result_lines_of(self, result: Dict) -> List[str]:
        """The mergeable output lines inside one :meth:`lane_result`
        payload.  The default reads the generic ``lines`` key; apps
        with richer payloads (Bro's per-stream logs) override this so
        generic harvesters — the service's pool lanes — need no
        app-specific knowledge."""
        return list(result["lines"])

    def flow_record_lines_of(self, result: Dict) -> List[str]:
        """The lane's sealed flow-record lines inside one
        :meth:`lane_result` payload."""
        return list(result.get("flow_records") or [])


def dispatch_plan(
    packets: Iterable[Tuple[Time, bytes]], vthreads: int, workers: int,
    spec: Optional[LaneSpec] = None,
) -> Tuple[List[Tuple[int, int, bytes]], Dict[Tuple, str]]:
    """One pass over the trace: per-packet vthread placement plus the
    global uid pre-assignment.

    Returns ``(jobs, uid_map)`` where *jobs* is ``(vid, nanos, frame)``
    per packet (frames with no flow ride on vthread 0, where the lane
    counts them exactly like the sequential pipeline) and *uid_map*
    assigns each flow key the uid the sequential run's counter would
    have produced — allocated in first-packet arrival order.
    """
    spec = spec if spec is not None else LaneSpec()
    jobs: List[Tuple[int, int, bytes]] = []
    uid_map: Dict[Tuple, str] = {}
    vids: Dict[Tuple, int] = {}
    serial = 0
    record_serial = 0
    for timestamp, frame in packets:
        flow = spec.flow_of(frame)
        if flow is None:
            jobs.append((0, timestamp.nanos, frame))
            continue
        key = spec.key_of(flow)
        vid = vids.get(key)
        if vid is None:
            vid = spec.place(flow, vthreads, workers)
            vids[key] = vid
            serial += 1
            if spec.uid_format is not None:
                uid_map[key] = spec.uid_format(serial)
        if spec.record_uid_format is not None:
            # Flow-record uids ride the same map under the flow's own
            # canonical 5-tuple key — disjoint from ``key_of`` keys when
            # the app shards by something else (the firewall's host
            # pairs), identical when it shards by 5-tuple.
            rkey = flow_key(flow)
            if rkey not in uid_map:
                record_serial += 1
                uid_map[rkey] = spec.record_uid_format(record_serial)
        jobs.append((vid, timestamp.nanos, frame))
    return jobs, uid_map


def prof_snapshots(app) -> List[Tuple[str, str]]:
    """Render every engine context's profiler dump to text, labeled —
    the picklable form a lane result carries so parents can assemble a
    per-worker ``prof.log`` without shipping live contexts across the
    process boundary."""
    import io as _io

    out: List[Tuple[str, str]] = []
    for label, ctx in app.engine_contexts():
        buf = _io.StringIO()
        ctx.profilers.dump(buf)
        out.append((label, buf.getvalue()))
    return out


def merge_health(reports: List[Dict]) -> Dict:
    """Reduce per-lane HealthReport dicts into one."""
    merged = {
        "flows_quarantined": 0,
        "records_skipped": 0,
        "watchdog_trips": 0,
        "injected_faults": 0,
        "tier_fallback": False,
        "breaker": {"flows": 0, "violations": 0,
                    "threshold": None, "tripped": False},
        "site_errors": {},
    }
    for report in reports:
        for key in ("flows_quarantined", "records_skipped",
                    "watchdog_trips", "injected_faults"):
            merged[key] += report[key]
        merged["tier_fallback"] = (
            merged["tier_fallback"] or report["tier_fallback"])
        breaker = report["breaker"]
        merged["breaker"]["flows"] += breaker["flows"]
        merged["breaker"]["violations"] += breaker["violations"]
        if merged["breaker"]["threshold"] is None:
            merged["breaker"]["threshold"] = breaker["threshold"]
        merged["breaker"]["tripped"] = (
            merged["breaker"]["tripped"] or breaker["tripped"])
        for site, count in report["site_errors"].items():
            merged["site_errors"][site] = (
                merged["site_errors"].get(site, 0) + count)
    return merged


# --------------------------------------------------------------------------
# Lanes: one isolated app instance per vthread (or per process worker)
# --------------------------------------------------------------------------


class _LaneProgram:
    """Adapts per-flow packet analysis to the scheduler's program
    interface: contexts are app lanes, jobs are packets."""

    def __init__(self, spec: LaneSpec, uid_map: Dict):
        self._spec = spec
        self._uid_map = uid_map

    def make_context(self, vthread_id: int):
        lane = self._spec.make_lane(self._uid_map)
        lane.on_begin()
        return lane

    def init_context(self, lane) -> None:
        pass

    def call(self, lane, function: str, args: List) -> None:
        if function != "packet":
            raise ValueError(f"unknown lane job {function!r}")
        nanos, frame = args
        lane.on_packet(Time.from_nanos(nanos), frame)


# The subprocess entry bodies live in :mod:`repro.host.worker`, which
# is import-side-effect-free — the property that makes the ``spawn``
# start method safe (the child imports the entry's module before the
# target runs; importing *this* module would drag the whole substrate
# in).  ``_process_worker`` above is re-exported for compatibility.


# --------------------------------------------------------------------------
# The parallel driver
# --------------------------------------------------------------------------


class ParallelPipeline:
    """A flow-parallel run of one app: same analysis, N isolated lanes.

    *workers* is the hardware parallelism, *vthreads* the virtual-thread
    supply (defaults to ``4 * workers``), *backend* one of ``vthread``,
    ``threaded``, ``process``, ``pool`` (``None`` resolves via
    :func:`default_backend`).  The deterministic fault injector is
    intentionally not plumbed through — its per-site random streams are
    sequential by construction and would diverge per lane.

    *start_method* overrides the multiprocessing start method for the
    ``process`` and ``pool`` backends (default: ``fork`` where the
    platform has it, else ``spawn``); *join_timeout* bounds how long a
    run waits for any worker's result before declaring it lost — a
    worker killed mid-run is reaped, its unretired jobs are counted in
    :attr:`jobs_lost`, and the run fails with a diagnostic instead of
    hanging the join.
    """

    #: Gauge series whose lane-merge takes the max instead of the sum.
    GAUGE_MERGE: Dict[str, str] = {"health.breaker_tripped": "max"}

    def __init__(
        self,
        spec: LaneSpec,
        workers: int = 4,
        vthreads: Optional[int] = None,
        backend: Optional[str] = "process",
        telemetry: Optional[Telemetry] = None,
        start_method: Optional[str] = None,
        join_timeout: float = 60.0,
    ):
        if backend is None:
            backend = default_backend()
        if backend not in _BACKENDS:
            raise ValueError(f"unknown parallel backend {backend!r}")
        if workers < 1:
            raise ValueError("parallel pipeline needs at least one worker")
        self.spec = spec
        self.workers = workers
        self.vthreads = vthreads if vthreads is not None else 4 * workers
        if self.vthreads < workers:
            raise ValueError("vthreads must be >= workers")
        self.backend = backend
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.start_method = start_method
        self.join_timeout = join_timeout
        self.stats: Dict[str, object] = {}
        self.scheduler: Optional[Scheduler] = None
        #: Packets handed to workers that died before retiring them
        #: (conservation diagnostic populated when a run fails).
        self.jobs_lost = 0
        self._results: List[Dict] = []
        self._lines: List[str] = []
        self._flow_records: List[str] = []
        self._trace_roots: List[Dict] = []
        self._pcap_stats: Dict[str, int] = {}

    # -- running ------------------------------------------------------------

    def run(self, packets: Iterable[Tuple[Time, bytes]]) -> Dict:
        """Process a trace across all lanes; returns the merged stats."""
        begin = _time.perf_counter_ns()
        jobs, uid_map = dispatch_plan(packets, self.vthreads, self.workers,
                                      spec=self.spec)
        if self.backend == "pool":
            self._run_pool(jobs, uid_map)
        elif self.backend == "process":
            self._run_process(jobs, uid_map)
        else:
            self._run_scheduler(jobs, uid_map,
                                threaded=self.backend == "threaded")
        self._merge(_time.perf_counter_ns() - begin)
        return self.stats

    def run_pcap(self, path: str, tolerant: bool = False,
                 shard_dir: Optional[str] = None) -> Dict:
        """Drive the lanes from a pcap trace.

        With *shard_dir* (process backend only) the trace is fanned out
        into per-worker pcap shard files which the workers read
        themselves — the scalable route for traces that should not live
        in the parent's memory twice.
        """
        from ..net.pcap import PcapReader

        if shard_dir is not None and self.backend != "process":
            raise ValueError("pcap sharding requires the process backend")
        begin = _time.perf_counter_ns()
        with PcapReader(path, tolerant=tolerant) as reader:
            jobs, uid_map = dispatch_plan(reader, self.vthreads,
                                          self.workers, spec=self.spec)
            self._pcap_stats = {
                "records_read": reader.packets_read,
                "records_skipped": reader.records_skipped,
                "resyncs": reader.resyncs,
            }
        if shard_dir is not None:
            shards = self._write_shards(jobs, shard_dir)
            self._run_process(jobs, uid_map, shard_paths=shards)
        elif self.backend == "pool":
            self._run_pool(jobs, uid_map)
        elif self.backend == "process":
            self._run_process(jobs, uid_map)
        else:
            self._run_scheduler(jobs, uid_map,
                                threaded=self.backend == "threaded")
        self._merge(_time.perf_counter_ns() - begin)
        skipped = self._pcap_stats["records_skipped"]
        if skipped:
            self.stats["health"]["records_skipped"] += skipped
        return self.stats

    def _write_shards(self, jobs, shard_dir: str) -> List[str]:
        """Fan the dispatch plan out into per-worker pcap shard files."""
        from ..net.pcap import PcapWriter

        _os.makedirs(shard_dir, exist_ok=True)
        paths = [_os.path.join(shard_dir, f"shard-{i:03d}.pcap")
                 for i in range(self.workers)]
        writers = [PcapWriter(p, nanos=True) for p in paths]
        try:
            for vid, nanos, frame in jobs:
                writers[vid % self.workers].write(
                    Time.from_nanos(nanos), frame)
        finally:
            for writer in writers:
                writer.close()
        return paths

    def _run_scheduler(self, jobs, uid_map, threaded: bool) -> None:
        """In-process backends: packet jobs on the vthread scheduler."""
        program = _LaneProgram(self.spec, uid_map)
        scheduler = Scheduler(program, workers=self.workers)
        # Lane 0 always exists: it owns stray frames and guarantees any
        # per-lane lifecycle work runs at least once on an empty trace.
        scheduler.context_for(0)
        for vid, nanos, frame in jobs:
            scheduler.schedule(vid, "packet", (nanos, frame))
        if threaded:
            scheduler.run_threaded()
        else:
            scheduler.run_until_idle()
        self.scheduler = scheduler
        contexts = scheduler.contexts()
        results = []
        for vid in sorted(contexts):
            lane = contexts[vid]
            lane.on_end()
            results.append(self.spec.lane_result(lane))
        self._results = results

    def _shard_jobs(self, jobs) -> List[List[Tuple[int, bytes]]]:
        """Fan the dispatch plan out into per-worker in-memory shards
        (the scheduler rule: ``vid % workers``)."""
        shards: List[List[Tuple[int, bytes]]] = [
            [] for __ in range(self.workers)
        ]
        for vid, nanos, frame in jobs:
            shards[vid % self.workers].append((nanos, frame))
        return shards

    def _resolve_context(self):
        method = self.start_method
        if method is None:
            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else "spawn"
        return multiprocessing.get_context(method)

    def _run_pool(self, jobs, uid_map) -> None:
        """The persistent shared-memory pool backend: batched packet
        slices through SPSC rings into workers that outlive the run."""
        from .pool import PoolError, WorkerPool

        pool = WorkerPool.shared(self.workers,
                                 start_method=self.start_method)
        try:
            self._results = pool.run(self.spec, uid_map,
                                     self._shard_jobs(jobs),
                                     timeout=self.join_timeout)
        except PoolError as error:
            self.jobs_lost = error.jobs_lost
            raise

    def _run_process(self, jobs, uid_map,
                     shard_paths: Optional[List[str]] = None) -> None:
        """The one-shot multiprocessing backend: one subprocess per
        worker per run.

        The join polls every pipe with a deadline instead of blocking
        on ``recv()``: a worker killed mid-job (OOM, signal) is
        detected by liveness, reaped, and its shard's jobs accounted
        as lost — the run fails with the conservation diagnostic
        instead of hanging forever on a pipe no one will ever write.
        """
        if shard_paths is None:
            shards = self._shard_jobs(jobs)
        else:
            shards = shard_paths  # type: ignore[assignment]
        # Lost-job accounting needs per-worker job counts even when
        # workers read their shards from pcap files themselves.
        shard_counts = [0] * self.workers
        for vid, __, __unused in jobs:
            shard_counts[vid % self.workers] += 1
        ctx = self._resolve_context()
        procs = []
        pipes = []
        for index in range(self.workers):
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_process_worker,
                args=(child_conn, self.spec, shards[index], uid_map),
            )
            proc.start()
            child_conn.close()
            procs.append(proc)
            pipes.append(parent_conn)
        results: List[Optional[Dict]] = [None] * self.workers
        failures: List[str] = []
        jobs_lost = 0
        deadline = _time.monotonic() + self.join_timeout
        pending = set(range(self.workers))
        while pending:
            reaped = False
            for index in sorted(pending):
                proc, conn = procs[index], pipes[index]
                result: Optional[Dict] = None
                if conn.poll(0.01):
                    try:
                        result = conn.recv()
                    except EOFError:
                        result = {"error": "worker died before reporting"}
                elif not proc.is_alive():
                    # Dead with an empty pipe — but a worker can exit
                    # between writing its result and our poll, so give
                    # the pipe one more look before declaring a crash.
                    if conn.poll(0.01):
                        try:
                            result = conn.recv()
                        except EOFError:
                            result = {
                                "error": "worker died before reporting"}
                    else:
                        proc.join(timeout=1.0)
                        result = {"error": (
                            f"worker died (exitcode {proc.exitcode}) "
                            "before reporting")}
                else:
                    continue
                conn.close()
                pending.discard(index)
                reaped = True
                if "error" in result:
                    lost = shard_counts[index]
                    jobs_lost += lost
                    failures.append(
                        f"worker {index}: {result['error']} "
                        f"({lost} jobs lost)")
                else:
                    results[index] = result
            if pending and not reaped and _time.monotonic() >= deadline:
                for index in sorted(pending):
                    procs[index].terminate()
                    procs[index].join(timeout=1.0)
                    pipes[index].close()
                    lost = shard_counts[index]
                    jobs_lost += lost
                    failures.append(
                        f"worker {index}: no result within "
                        f"{self.join_timeout:.1f}s, terminated "
                        f"({lost} jobs lost)")
                pending.clear()
        for proc in procs:
            proc.join(timeout=5.0)
        self.jobs_lost = jobs_lost
        if failures:
            raise RuntimeError(
                "parallel workers failed: " + "; ".join(failures)
                + (f" — {jobs_lost} jobs lost (conservation broken)"
                   if jobs_lost else ""))
        self._results = [r for r in results if r is not None]

    # -- the ordered merge --------------------------------------------------

    def _merge(self, total_ns: int) -> None:
        """Reduce per-lane results into one deterministic report: result
        lines merge by lexicographic sort, integer stats sum, the health
        reports reduce, per-lane metric registries merge."""
        results = self._results
        lanes = len(results)

        lines: List[str] = []
        for result in results:
            lines.extend(result["lines"])
        lines.sort()
        self._lines = lines

        # Flow records merge exactly like result lines: each sealed flow
        # is wholly one lane's, so the sorted union is byte-identical to
        # the sequential ledger's sorted stream.
        records: List[str] = []
        for result in results:
            records.extend(self.spec.flow_record_lines_of(result))
        records.sort()
        self._flow_records = records

        def stat_sum(key):
            return sum(int(r["stats"].get(key, 0)) for r in results)

        parsing_ns = stat_sum("parsing_ns")
        script_ns = stat_sum("script_ns")
        glue_ns = stat_sum("glue_ns")
        self.stats = {
            "app": self.spec.app_name,
            "total_ns": total_ns,
            "parsing_ns": parsing_ns,
            "script_ns": script_ns,
            "glue_ns": glue_ns,
            "other_ns": max(
                0, total_ns - parsing_ns - script_ns - glue_ns),
            "packets": stat_sum("packets"),
            "health": merge_health(
                [r["stats"]["health"] for r in results]),
            "backend": self.backend,
            "workers": self.workers,
            "vthreads": self.vthreads,
            "lanes": lanes,
            "scheduler_errors": (
                len(self.scheduler.errors) if self.scheduler else 0
            ),
        }
        # Application counters (integer-valued app_stats entries) sum
        # across lanes; non-numeric entries pass through from lane 0.
        fixed = set(self.stats) | {"total_ns", "other_ns"}
        for result in results:
            for key, value in result["stats"].items():
                if key in fixed:
                    continue
                if isinstance(value, bool) or not isinstance(value, int):
                    self.stats.setdefault(key, value)
                else:
                    self.stats[key] = int(self.stats.get(key, 0)) + value
        if self.telemetry.enabled:
            self._merge_metrics(results, lanes)
        self._trace_roots = []
        for result in results:
            if result.get("trace_roots"):
                self._trace_roots.extend(result["trace_roots"])

    def _merge_metrics(self, results: List[Dict], lanes: int) -> None:
        """Reduce per-lane registries, then repair the series whose
        lane-sum is not the sequential semantic: the per-component CPU
        gauges (total is this run's wall clock, other its remainder) and
        the parent-side pcap counters."""
        metrics = self.telemetry.metrics
        for index, result in enumerate(results):
            if result["metrics"]:
                # Twice: once unlabeled (the aggregate the differential
                # oracle compares to the sequential run) and once under
                # a ``worker`` label for per-lane attribution.
                metrics.merge_series(result["metrics"],
                                     gauge_merge=self.GAUGE_MERGE)
                metrics.merge_series(result["metrics"],
                                     gauge_merge=self.GAUGE_MERGE,
                                     extra_labels={"worker": str(index)})
        name = self.spec.app_name
        for component in ("parsing", "script", "glue", "other", "total"):
            metrics.gauge(f"{name}.cpu_ns", component=component).set(
                int(self.stats[f"{component}_ns"]))
        for key, value in self._pcap_stats.items():
            metrics.counter(f"pcap.{key}").inc(value)

    # -- results ------------------------------------------------------------

    def result_lines(self) -> List[str]:
        """The deterministically merged result lines."""
        return list(self._lines)

    def flow_record_lines(self) -> List[str]:
        """The deterministically merged flow-record lines (sorted,
        byte-identical to the sequential ledger's)."""
        return list(self._flow_records)

    def cpu_breakdown(self, config: Optional[Dict] = None) -> Dict:
        from ..runtime.telemetry import cpu_breakdown_report

        if not self.stats:
            raise RuntimeError("cpu_breakdown() requires a completed run")
        if config is None:
            config = {
                "app": self.spec.app_name,
                "backend": self.backend,
                "workers": self.workers,
            }
        return cpu_breakdown_report(self.stats, config=config)

    def write_telemetry(self, logdir: str,
                        meta: Optional[Dict] = None) -> List[str]:
        """Emit the merged reporting files (``metrics.jsonl``,
        ``stats.log``, ``prof.log`` when lanes carried profiler dumps,
        and ``flows.jsonl`` when tracing was armed).  The profiler dump
        is sectioned per worker (``# worker N context L``) rather than
        merged — per-function timings from different lanes are distinct
        measurements, not shards of one."""
        import json as _json

        from ..net.flowrecord import write_flowrecords_jsonl
        from .pipeline import (write_metrics_jsonl,
                               write_parallel_prof_log, write_stats_log)

        _os.makedirs(logdir, exist_ok=True)
        written: List[str] = []
        if meta is None:
            meta = {
                "app": self.spec.app_name,
                "backend": self.backend,
                "workers": self.workers,
                "vthreads": self.vthreads,
            }
        written.append(write_metrics_jsonl(
            _os.path.join(logdir, "metrics.jsonl"),
            self.telemetry.metrics, meta=meta))
        sections = {
            "parallel": {
                "backend": self.backend,
                "workers": self.workers,
                "vthreads": self.vthreads,
                "lanes": self.stats.get("lanes", 0),
            },
        }
        written.append(write_stats_log(
            _os.path.join(logdir, "stats.log"), self.stats, sections))
        written.append(write_flowrecords_jsonl(
            _os.path.join(logdir, "flow_records.jsonl"),
            self.spec.app_name, self._flow_records))
        if any(result.get("prof") for result in self._results):
            written.append(write_parallel_prof_log(
                _os.path.join(logdir, "prof.log"), self._results))
        if self._trace_roots:
            path = _os.path.join(logdir, "flows.jsonl")
            lines = sorted(
                _json.dumps(root, sort_keys=True)
                for root in self._trace_roots
            )
            with open(path, "w") as stream:
                for line in lines:
                    stream.write(line + "\n")
            written.append(path)
        return written
