"""The host-application interface.

A :class:`HostApp` is one workload over the shared pipeline substrate:
the BPF filter, the stateful firewall, the BinPAC++ parser driver, and
the Bro-style script pipeline all implement this interface, and
:class:`repro.host.pipeline.Pipeline` / :class:`repro.host.parallel.
ParallelPipeline` drive any of them identically — same pcap ingest, same
fault-injection and health accounting, same telemetry exporter, same
parallel dispatch and merge.

The drive API is three calls — ``on_begin()``, ``on_packet(ts, frame)``
per record, ``on_end()`` — mirroring the incremental API the
flow-parallel lanes already used for Bro.  Apps implement the overridable
hooks below (``packet`` is the only mandatory one).
"""

from __future__ import annotations

import time as _time
from typing import Dict, Iterable, List, Optional, Tuple

from ..runtime.faults import NULL_INJECTOR, HealthReport
from ..runtime.telemetry import Telemetry

__all__ = ["HostApp", "PipelineServices", "export_health"]


class PipelineServices:
    """The cross-cutting services a pipeline run threads through an app:
    the (deterministic, off-by-default) fault injector, the recovery and
    health accounting, the per-packet instruction watchdog budget, the
    telemetry switchboard, the pcap reader's robustness counters, and
    the session-state bounds (entry cap / inactivity TTL / reassembly
    memory budget) stateful apps enforce via LRU eviction.
    """

    __slots__ = ("faults", "health", "watchdog_budget", "telemetry",
                 "pcap_stats", "max_sessions", "session_ttl",
                 "memory_budget_bytes")

    def __init__(self, faults=None, health=None,
                 watchdog_budget: Optional[int] = None,
                 telemetry: Optional[Telemetry] = None,
                 pcap_stats: Optional[Dict[str, int]] = None,
                 max_sessions: Optional[int] = None,
                 session_ttl: Optional[float] = None,
                 memory_budget_bytes: Optional[int] = None):
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.health = health if health is not None else HealthReport()
        self.watchdog_budget = watchdog_budget
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        # Filled in place by Pipeline's pcap ingest (records_read /
        # records_skipped / resyncs) so the exporter sees final counters.
        self.pcap_stats = pcap_stats if pcap_stats is not None else {}
        self.max_sessions = max_sessions
        self.session_ttl = session_ttl
        self.memory_budget_bytes = memory_budget_bytes


def export_health(metrics, health: Dict) -> None:
    """Publish one HealthReport dict into a MetricsRegistry — the shape
    every host app shares (``health.*`` counters plus the breaker gauge).
    """
    for name in ("flows_quarantined", "records_skipped",
                 "watchdog_trips", "injected_faults"):
        metrics.counter(f"health.{name}").inc(health[name])
    for site, count in health["site_errors"].items():
        metrics.counter("health.site_errors", site=site).inc(count)
    metrics.gauge("health.breaker_tripped").set(
        int(health["breaker"]["tripped"]))


class HostApp:
    """Base class for workloads driven by the shared pipeline.

    Subclasses set :attr:`name` (the metrics namespace) and implement
    :meth:`packet`; the remaining hooks — :meth:`begin`, :meth:`finish`,
    :meth:`cpu_ns`, :meth:`app_stats`, :meth:`gather_metrics`,
    :meth:`engine_contexts`, :meth:`metric_sources`,
    :meth:`result_lines` — have working defaults.
    """

    #: Metrics namespace and the ``app`` field of the stats report.
    name = "app"

    def __init__(self, services: Optional[PipelineServices] = None):
        self.services = (services if services is not None
                         else PipelineServices())
        self.telemetry = self.services.telemetry
        self.stats: Dict[str, object] = {}
        self.packets = 0
        self._begin_ns: Optional[int] = None

    # -- the drive API (what Pipeline / the parallel lanes call) ----------

    def on_begin(self) -> None:
        """Start a run: timing origin, app-specific setup."""
        self._begin_ns = _time.perf_counter_ns()
        self.packets = 0
        self.begin()

    def on_packet(self, timestamp, frame: bytes) -> None:
        """Process one trace record."""
        self.packets += 1
        self.packet(timestamp, frame)

    def on_end(self) -> Dict:
        """Finish a run: flush app state, assemble the stats report."""
        self.finish()
        total_ns = _time.perf_counter_ns() - (self._begin_ns or 0)
        cpu = self.cpu_ns()
        parsing_ns = int(cpu.get("parsing", 0))
        script_ns = int(cpu.get("script", 0))
        glue_ns = int(cpu.get("glue", 0))
        self.stats = {
            "app": self.name,
            "total_ns": total_ns,
            "parsing_ns": parsing_ns,
            "script_ns": script_ns,
            "glue_ns": glue_ns,
            "other_ns": max(0, total_ns - parsing_ns - script_ns - glue_ns),
            "packets": self.packets,
            "health": self.services.health.as_dict(self.services.faults),
        }
        self.stats.update(self.app_stats())
        if self.telemetry.enabled:
            self.export_metrics()
        return self.stats

    def run(self, packets: Iterable[Tuple[object, bytes]]) -> Dict:
        """Convenience sequential drive: begin + packet* + end."""
        self.on_begin()
        for timestamp, frame in packets:
            self.on_packet(timestamp, frame)
        return self.on_end()

    # -- overridable hooks -------------------------------------------------

    def begin(self) -> None:
        """App-specific run setup (lifecycle events, ...)."""

    def packet(self, timestamp, frame: bytes) -> None:
        """Process one packet (mandatory)."""
        raise NotImplementedError

    def finish(self) -> None:
        """App-specific teardown (close flows, flush parsers, ...)."""

    def cpu_ns(self) -> Dict[str, int]:
        """Per-component CPU attribution: any of ``parsing`` /
        ``script`` / ``glue`` (ns); the remainder becomes ``other``."""
        return {}

    def app_stats(self) -> Dict[str, object]:
        """Extra entries merged into the stats report.  Integer values
        are treated as counters by the parallel merge (they sum across
        lanes)."""
        return {}

    def engine_contexts(self) -> List[Tuple[str, object]]:
        """Every HILTI ExecutionContext the app drove, labeled — feeds
        the ``engine.*`` series and the ``prof.log`` dump."""
        return []

    def metric_sources(self) -> List[Tuple[str, object]]:
        """Labeled components with the uniform ``export_metrics``
        shape (session tables, reassemblers, I/O sources...)."""
        return []

    def gather_metrics(self, metrics) -> None:
        """App-specific series beyond the uniform exporter's."""

    def result_lines(self) -> List[str]:
        """The run's result stream as sortable text lines — the byte
        fingerprint the differential oracles (sequential vs parallel,
        compiled vs interpreted) compare."""
        return []

    def flow_record_lines(self) -> List[str]:
        """The run's sealed flow records as sorted JSON lines (schema
        ``repro-flowrecords/1``) — every app's ledger exports through
        here, and the parallel merge keeps the stream byte-identical
        to the sequential run's.  Apps without a flow ledger report an
        empty stream."""
        return []

    def session_stats(self) -> Dict[str, int]:
        """Session-table occupancy and eviction counters.  Stateful
        apps override; the default (no per-session state, or state
        HILTI-internal) reports zeros so every app exports the same
        ``sessions_evicted``/``sessions_expired`` series."""
        return {"open": 0, "evicted": 0, "expired": 0}

    def flow_snapshot(self, limit: int = 256) -> List[Dict]:
        """The open sessions as plain dicts (the service's ``/flows``
        endpoint); stateless apps report an empty list."""
        return []

    def live_metrics(self) -> Dict[str, float]:
        """Cheap point-in-time counters for the cross-process telemetry
        plane's periodic ``TELEM`` snapshots (pool workers ship these
        mid-run, before ``export_metrics`` has populated the registry
        at ``on_end``).  Must stay O(1): it runs on the worker's packet
        path cadence."""
        out = {"packets": float(self.packets)}
        try:
            out["sessions_open"] = float(self.session_stats()["open"])
        except Exception:
            pass
        return out

    # -- the uniform exporter ---------------------------------------------

    def export_metrics(self) -> None:
        """Publish the shared series every host app reports: packet
        throughput, per-component CPU, engine dispatch counters, the
        health report, pcap robustness counters, uniform component
        sources, tracer self-accounting — then the app's own extras."""
        metrics = self.telemetry.metrics
        stats = self.stats
        metrics.counter(f"{self.name}.packets_total").inc(
            int(stats["packets"]))
        for component in ("parsing", "script", "glue", "other", "total"):
            metrics.gauge(
                f"{self.name}.cpu_ns", component=component,
            ).set(int(stats[f"{component}_ns"]))
        for label, ctx in self.engine_contexts():
            metrics.counter(
                "engine.instructions", context=label,
            ).inc(ctx.instr_count)
            metrics.counter(
                "engine.blocks_dispatched", context=label,
            ).inc(ctx.blocks_dispatched)
            metrics.counter(
                "engine.segments_dispatched", context=label,
            ).inc(ctx.segments_dispatched)
            metrics.counter(
                "engine.allocations", context=label,
            ).inc(ctx.alloc_stats.allocations)
        export_health(metrics, stats["health"])
        sessions = self.session_stats()
        metrics.counter(f"{self.name}.sessions_evicted").inc(
            int(sessions["evicted"]))
        metrics.counter(f"{self.name}.sessions_expired").inc(
            int(sessions["expired"]))
        for name, value in self.services.pcap_stats.items():
            metrics.counter(f"pcap.{name}").inc(value)
        for label, source in self.metric_sources():
            source.export_metrics(metrics, label)
        self.gather_metrics(metrics)
        tracer = self.telemetry.tracer
        if tracer.enabled:
            metrics.counter("trace.spans_started").inc(tracer.spans_started)
            metrics.counter("trace.spans_dropped").inc(tracer.spans_dropped)
