"""A persistent, shared-memory-fed worker pool for flow-parallel runs.

The original ``process`` backend respawned every worker per run and
pickled every packet job through a ``Pipe`` — measured at 0.14–0.86x of
sequential on the recorded benchmarks, i.e. parallelism that costs more
than it buys.  This module removes both overheads, mirroring the DPDK
burst-processing idiom:

* **Workers spawn once and stay hot.**  A :class:`WorkerPool` owns N
  subprocesses that live across runs (and across service restarts);
  each run ships its pickled :class:`~repro.host.parallel.LaneSpec`
  and uid map to the workers, which build fresh lanes per run but pay
  interpreter/module startup exactly once.
* **Packets travel as length-prefixed batches through shared-memory
  rings** (:class:`~repro.host.ring.ShmRing`, one SPSC pair per
  worker).  The producer packs ~hundreds of frames into one ring
  record; the worker slices frames straight out of the mapped buffer —
  no per-packet pickling, no per-packet syscalls.
* **Results return batched** the same way: the worker pickles its
  whole lane result once and streams it back through its out-ring in
  chunks, with periodic ``PROGRESS`` messages so the parent (and the
  streaming service's conservation accounting) always knows how many
  packets a worker has actually retired.

Failure semantics match the hardened process backend: a worker death
or in-run error is detected by liveness polling against a deadline,
the un-retired packet count is reported in the diagnostic (the
conservation counters), the run fails loudly instead of hanging, and
the dead worker is respawned so the pool stays usable for the next
run.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import time as _time
from typing import Callable, Dict, List, Optional, Tuple

from .ring import MessageChannel, ShmRing
from .worker import (
    MSG_BEGIN,
    MSG_DATA,
    MSG_END,
    MSG_ERROR,
    MSG_PROGRESS,
    MSG_RESULT,
    MSG_SHUTDOWN,
    MSG_TELEM,
    encode_packet,
    pack_run_prefix,
    parse_progress,
    parse_run_prefix,
    pool_worker_main,
)

__all__ = ["PoolError", "WorkerPool", "default_start_method"]


class PoolError(RuntimeError):
    """A pool run failed; ``failures`` lists per-worker diagnostics and
    ``jobs_lost`` counts packets that were handed to dead workers but
    never retired."""

    def __init__(self, message: str, failures: List[str],
                 jobs_lost: int = 0):
        super().__init__(message)
        self.failures = failures
        self.jobs_lost = jobs_lost


def default_start_method() -> str:
    """``fork`` where the platform offers it, else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class _WorkerState:
    """Parent-side bookkeeping for one pool worker."""

    def __init__(self, index: int, ring_bytes: int):
        self.index = index
        self.in_ring = ShmRing(ring_bytes)
        self.out_ring = ShmRing(ring_bytes)
        self.inbox = MessageChannel(self.out_ring)   # worker -> parent
        self.outbox = MessageChannel(self.in_ring)   # parent -> worker
        self.proc = None
        self.run_id = 0
        self.batch = bytearray()
        self.batch_count = 0
        self.pushed = 0
        self.progressed = 0
        self.ended = False
        self.result: Optional[Dict] = None
        self.failure: Optional[str] = None
        self.telem: Optional[Dict] = None

    def reset_run(self) -> None:
        self.batch = bytearray()
        self.batch_count = 0
        self.pushed = 0
        self.progressed = 0
        self.ended = False
        self.result = None
        self.failure = None
        self.telem = None


class WorkerPool:
    """N persistent lane workers fed by batched shared-memory rings.

    One pool serves many runs: :meth:`run` is the batch entry the
    ``pool`` backend of :class:`~repro.host.parallel.ParallelPipeline`
    uses, and the granular :meth:`begin_run` / :meth:`feed` /
    :meth:`finish` / :meth:`collect` surface is what the streaming
    service's ring-fed lanes drive incrementally.  Use
    :meth:`WorkerPool.shared` to reuse one pool per ``(workers,
    start_method)`` across runs — that reuse is where the per-run
    spawn cost goes away.
    """

    #: Flush a batch once it holds this many packets ...
    BATCH_PACKETS = 256
    #: ... or this many payload bytes, whichever comes first.  Kept
    #: under the channel chunk bound so every batch is one atomic ring
    #: record (a timed-out push leaves no partial message behind).
    BATCH_BYTES = 128 * 1024

    #: Default deadline for joining results at the end of a run.
    JOIN_TIMEOUT = 60.0

    _shared: Dict[Tuple[int, str], "WorkerPool"] = {}

    def __init__(self, workers: int, ring_bytes: int = 1 << 20,
                 start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError("pool needs at least one worker")
        self.workers = workers
        self.start_method = start_method or default_start_method()
        self._ctx = multiprocessing.get_context(self.start_method)
        self._states = [_WorkerState(i, ring_bytes)
                        for i in range(workers)]
        self._spec_blob: Optional[bytes] = None
        self.closed = False
        self.runs_served = 0
        for state in self._states:
            self._spawn(state)
        atexit.register(self.close)

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def shared(cls, workers: int, start_method: Optional[str] = None,
               ring_bytes: int = 1 << 20) -> "WorkerPool":
        """The process-wide pool for this worker count (and start
        method) — created on first use, reused ever after."""
        method = start_method or default_start_method()
        key = (workers, method)
        pool = cls._shared.get(key)
        if pool is not None and pool.closed:
            pool = None
        if pool is None:
            pool = cls(workers, ring_bytes=ring_bytes, start_method=method)
            cls._shared[key] = pool
        return pool

    def _spawn(self, state: _WorkerState) -> None:
        state.proc = self._ctx.Process(
            target=pool_worker_main,
            args=(state.in_ring.name, state.out_ring.name),
            name=f"pool-worker-{state.index}",
            daemon=True,
        )
        state.proc.start()

    def alive(self, index: int) -> bool:
        proc = self._states[index].proc
        return proc is not None and proc.is_alive()

    def exitcode(self, index: int) -> Optional[int]:
        proc = self._states[index].proc
        return proc.exitcode if proc is not None else None

    def pids(self) -> List[Optional[int]]:
        return [state.proc.pid if state.proc else None
                for state in self._states]

    def respawn(self, index: int) -> None:
        """Replace a dead (or wedged) worker with a fresh process.

        Both rings are reset — safe because the peer is gone — and any
        half-received message state is dropped with them.
        """
        state = self._states[index]
        if state.proc is not None:
            if state.proc.is_alive():
                state.proc.terminate()
            state.proc.join(timeout=5.0)
        state.in_ring.reset()
        state.out_ring.reset()
        state.inbox.reset()
        state.outbox.reset()
        self._spawn(state)

    def close(self) -> None:
        """Shut every worker down and release the shared memory."""
        if self.closed:
            return
        self.closed = True
        for state in self._states:
            if state.proc is not None and state.proc.is_alive():
                state.outbox.send(MSG_SHUTDOWN, timeout=0.5)
        for state in self._states:
            if state.proc is not None:
                state.proc.join(timeout=2.0)
                if state.proc.is_alive():
                    state.proc.terminate()
                    state.proc.join(timeout=2.0)
        for state in self._states:
            state.in_ring.close()
            state.out_ring.close()

    # -- the per-run protocol ----------------------------------------------

    def begin_run(self, spec, uid_map: Optional[Dict] = None) -> None:
        """Arm every worker for a new run (respawning any dead ones)."""
        self._spec_blob = pickle.dumps(
            (spec, uid_map if uid_map is not None else {}),
            protocol=pickle.HIGHEST_PROTOCOL)
        self.runs_served += 1
        for state in self._states:
            if not self.alive(state.index):
                self.respawn(state.index)
            self.begin_worker(state.index)

    def begin_worker(self, index: int) -> None:
        """(Re)start one worker's run: a fresh lane, a fresh epoch."""
        state = self._states[index]
        state.run_id += 1
        state.reset_run()
        state.outbox.send(
            MSG_BEGIN, pack_run_prefix(state.run_id) + self._spec_blob)

    def feed(self, index: int, nanos: int, frame: bytes, *,
             wait: Optional[float] = None,
             should_stop: Optional[Callable[[], bool]] = None) -> bool:
        """Queue one packet for a worker, flushing full batches.

        ``wait=None`` blocks for ring space (re-checking *should_stop*)
        — the service's backpressure policy; a finite ``wait`` bounds
        the stall and returns ``False`` without consuming the packet —
        the shed policy.  A ``False`` return means the packet was NOT
        accepted."""
        state = self._states[index]
        if (state.batch_count >= self.BATCH_PACKETS
                or len(state.batch) >= self.BATCH_BYTES):
            if not self.flush(index, wait=wait, should_stop=should_stop):
                return False
        encode_packet(state.batch, nanos, frame)
        state.batch_count += 1
        return True

    def flush(self, index: int, *, wait: Optional[float] = None,
              should_stop: Optional[Callable[[], bool]] = None) -> bool:
        """Push the worker's buffered batch as one ring record."""
        state = self._states[index]
        if not state.batch_count:
            return True
        ok = state.outbox.send(
            MSG_DATA, pack_run_prefix(state.run_id) + bytes(state.batch),
            timeout=wait, should_stop=should_stop)
        if ok:
            state.pushed += state.batch_count
            state.batch = bytearray()
            state.batch_count = 0
        return ok

    def finish(self, index: int,
               timeout: Optional[float] = None) -> bool:
        """Flush any tail batch and mark the worker's run complete."""
        state = self._states[index]
        if state.ended:
            return True
        if not self.flush(index, wait=timeout):
            return False
        ok = state.outbox.send(
            MSG_END, pack_run_prefix(state.run_id), timeout=timeout)
        state.ended = ok
        return ok

    def poll(self, index: int) -> None:
        """Drain the worker's outbound messages without blocking:
        progress updates, the final result, or an error report."""
        state = self._states[index]
        while True:
            message = state.inbox.recv(timeout=0.0)
            if message is None:
                return
            tag, payload = message
            if tag == MSG_PROGRESS:
                run_id, processed = parse_progress(payload)
                if run_id == state.run_id:
                    state.progressed = processed
            elif tag == MSG_RESULT:
                run_id, body = parse_run_prefix(payload)
                if run_id == state.run_id:
                    state.result = pickle.loads(body)
                    state.progressed = state.result.get(
                        "stats", {}).get("packets", state.progressed)
            elif tag == MSG_TELEM:
                run_id, body = parse_run_prefix(payload)
                if run_id == state.run_id:
                    try:
                        state.telem = pickle.loads(body)
                    except Exception:
                        pass  # a torn snapshot never poisons the run
            elif tag == MSG_ERROR:
                run_id, body = parse_run_prefix(payload)
                if run_id == state.run_id:
                    diagnostic = pickle.loads(body)
                    state.progressed = int(
                        diagnostic.get("processed", state.progressed))
                    state.failure = diagnostic.get("error", "worker error")

    def pushed(self, index: int) -> int:
        return self._states[index].pushed

    def buffered(self, index: int) -> int:
        """Packets accepted by :meth:`feed` but not yet flushed into
        the ring (lost if the worker dies before the next flush)."""
        return self._states[index].batch_count

    def progressed(self, index: int) -> int:
        return self._states[index].progressed

    def failure(self, index: int) -> Optional[str]:
        return self._states[index].failure

    def telemetry(self, index: int) -> Optional[Dict]:
        """The worker's most recent ``TELEM`` snapshot this run (None
        until one arrives or when the lane's telemetry is off)."""
        return self._states[index].telem

    def result(self, index: int) -> Optional[Dict]:
        return self._states[index].result

    def collect(self, index: int, timeout: float) -> Dict:
        """Wait for one worker's result; raise :class:`PoolError` with
        the lost-packet accounting on error, death, or deadline."""
        state = self._states[index]
        deadline = _time.monotonic() + timeout
        while True:
            self.poll(index)
            if state.result is not None:
                return state.result
            lost = max(0, state.pushed - state.progressed)
            if state.failure is not None:
                raise PoolError(
                    f"worker {index}: {state.failure} "
                    f"({lost} queued packets lost)",
                    [state.failure], jobs_lost=lost)
            if not self.alive(index):
                # One grace poll: the result may already be in the ring.
                self.poll(index)
                if state.result is not None:
                    return state.result
                exitcode = state.proc.exitcode if state.proc else None
                raise PoolError(
                    f"worker {index} died (exitcode {exitcode}) "
                    f"with {lost} queued packets lost",
                    [f"worker {index} died (exitcode {exitcode})"],
                    jobs_lost=lost)
            if _time.monotonic() >= deadline:
                raise PoolError(
                    f"worker {index} produced no result within "
                    f"{timeout:.1f}s ({lost} queued packets unaccounted)",
                    [f"worker {index}: result deadline exceeded"],
                    jobs_lost=lost)
            _time.sleep(0.001)

    # -- the batch entry (ParallelPipeline's pool backend) -----------------

    def run(self, spec, uid_map: Dict,
            shards: List[List[Tuple[int, bytes]]],
            timeout: Optional[float] = None) -> List[Dict]:
        """Drive one complete run: fan *shards* out as batches, await
        every worker's result.  Raises :class:`PoolError` aggregating
        all failures (dead workers are respawned before it raises, so
        the pool survives for the next run)."""
        if len(shards) != self.workers:
            raise ValueError(
                f"expected {self.workers} shards, got {len(shards)}")
        timeout = timeout if timeout is not None else self.JOIN_TIMEOUT
        deadline = _time.monotonic() + timeout
        self.begin_run(spec, uid_map)

        offsets = [0] * self.workers
        pending = {i for i in range(self.workers) if shards[i]}
        while pending:
            advanced = False
            for index in sorted(pending):
                state = self._states[index]
                self.poll(index)
                if state.failure is not None or not self.alive(index):
                    pending.discard(index)
                    continue
                fed = self._feed_slice(index, shards[index],
                                       offsets[index])
                if fed:
                    offsets[index] += fed
                    advanced = True
                if offsets[index] >= len(shards[index]):
                    pending.discard(index)
            if pending and not advanced:
                if _time.monotonic() >= deadline:
                    break
                _time.sleep(0.0005)

        failures: List[str] = []
        jobs_lost = 0
        results: List[Optional[Dict]] = [None] * self.workers
        for index in range(self.workers):
            state = self._states[index]
            unfed = len(shards[index]) - offsets[index]
            try:
                if state.failure is None and self.alive(index):
                    self.finish(index, timeout=max(
                        0.1, deadline - _time.monotonic()))
                results[index] = self.collect(
                    index, max(0.1, deadline - _time.monotonic()))
            except PoolError as error:
                failures.extend(error.failures)
                jobs_lost += error.jobs_lost + unfed
            else:
                if unfed:
                    failures.append(
                        f"worker {index}: ring stalled with {unfed} "
                        "packets unfed")
                    jobs_lost += unfed
        for index in range(self.workers):
            if not self.alive(index):
                self.respawn(index)
        if failures:
            raise PoolError(
                "parallel pool workers failed: " + "; ".join(failures)
                + f" ({jobs_lost} packets lost — conservation broken)",
                failures, jobs_lost=jobs_lost)
        return [result for result in results if result is not None]

    def _feed_slice(self, index: int, shard: List[Tuple[int, bytes]],
                    offset: int) -> int:
        """Encode and push one batch starting at *offset*; returns the
        number of packets accepted (0 when the ring is full)."""
        state = self._states[index]
        batch = bytearray()
        count = 0
        end = len(shard)
        while offset + count < end and count < self.BATCH_PACKETS \
                and len(batch) < self.BATCH_BYTES:
            nanos, frame = shard[offset + count]
            encode_packet(batch, nanos, frame)
            count += 1
        if not count:
            return 0
        ok = state.outbox.send(
            MSG_DATA, pack_run_prefix(state.run_id) + bytes(batch),
            timeout=0.02)
        if not ok:
            return 0
        state.pushed += count
        return count


def shutdown_shared_pools() -> None:
    """Close every cached shared pool (test teardown helper)."""
    for pool in list(WorkerPool._shared.values()):
        pool.close()
    WorkerPool._shared.clear()
