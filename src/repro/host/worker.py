"""Subprocess entry points for the parallel backends.

This module is deliberately **side-effect-free at import time**: it
pulls in only the standard library and :mod:`repro.host.ring`, and
imports the runtime pieces it needs (``Time``, ``PcapReader``) lazily
inside the functions.  That is what makes the ``spawn`` start method
safe — a spawned child imports the module named by the process target
before anything runs, and the original home of the worker body
(:mod:`repro.host.parallel`) drags in the whole host substrate, which
under ``spawn`` re-executed driver-module import work in every worker.
Keeping the entry here means a worker boots with no application code
at all until a pickled :class:`~repro.host.parallel.LaneSpec` arrives
and names what to build.

Two entry points live here:

* :func:`process_worker` — the classic one-shot pipe backend body
  (one subprocess per run, results pickled back through a ``Pipe``);
* :func:`pool_worker_main` — the persistent pool worker: a loop over
  a shared-memory ring that serves many runs without respawning,
  parsing length-prefixed packet batches straight off the ring.

The pool protocol is tagged messages (:class:`~repro.host.ring.
MessageChannel`) with a per-run epoch so late batches of a failed run
are discarded instead of corrupting the next one::

    parent -> worker:  BEGIN(run, spec+uid_map)  DATA(run, batch)*
                       END(run)            ...next run...   SHUTDOWN
    worker -> parent:  PROGRESS(run, count)*  TELEM(run, snapshot)*
                       then RESULT(run, result) or ERROR(run, diagnostic)

``TELEM`` is the cross-process observability plane: a worker whose lane
has telemetry armed ships periodic pickled snapshots of its own
registry (plus the cheap ``live_metrics`` counters and span totals)
back through the same ring, so the parent — the streaming service's
aggregator in particular — can expose per-worker series while the run
is still in flight.  The final, complete registry still travels in
``RESULT`` (the lane result's ``metrics``/``prof`` entries); TELEM is
the live view, not the record of truth.  When telemetry is disabled
the worker never builds a snapshot and never sends the message — the
disabled path stays a no-op.
"""

from __future__ import annotations

import pickle
import struct
import time as _time
import traceback
from typing import Dict, Iterator, List, Tuple

from .ring import MessageChannel, ShmRing

__all__ = [
    "MSG_BEGIN",
    "MSG_DATA",
    "MSG_END",
    "MSG_ERROR",
    "MSG_PROGRESS",
    "MSG_RESULT",
    "MSG_SHUTDOWN",
    "MSG_TELEM",
    "TELEM_INTERVAL",
    "decode_batch",
    "encode_packet",
    "pool_worker_main",
    "process_worker",
    "telemetry_snapshot",
]

# Message tags (one byte each; see module docstring for the protocol).
MSG_BEGIN = 1
MSG_DATA = 2
MSG_END = 3
MSG_RESULT = 4
MSG_ERROR = 5
MSG_PROGRESS = 6
MSG_SHUTDOWN = 7
MSG_TELEM = 8

#: Minimum seconds between periodic TELEM snapshots from one worker.
TELEM_INTERVAL = 0.25

_RUN = struct.Struct("<I")      # run epoch prefix on run-scoped messages
_PKT = struct.Struct("<QI")     # per-packet batch header: nanos, length
_PROGRESS = struct.Struct("<IQ")  # run epoch, packets processed


def encode_packet(buf: bytearray, nanos: int, frame: bytes) -> None:
    """Append one ``(nanos, frame)`` record to a batch buffer."""
    buf += _PKT.pack(nanos, len(frame))
    buf += frame


def decode_batch(payload: bytes) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(nanos, frame)`` records from one batch payload."""
    offset = 0
    end = len(payload)
    size = _PKT.size
    while offset < end:
        nanos, length = _PKT.unpack_from(payload, offset)
        offset += size
        yield nanos, payload[offset:offset + length]
        offset += length


# --------------------------------------------------------------------------
# The one-shot pipe backend (``--backend process``)
# --------------------------------------------------------------------------


def process_worker(conn, spec, shard, uid_map) -> None:
    """Subprocess body: run one lane over one flow shard, ship the
    result back through the pipe.  *shard* is either an in-memory list
    of ``(nanos, frame)`` or a path to a pcap shard file."""
    try:
        from ..core.values import Time

        lane = spec.make_lane(uid_map)
        lane.on_begin()
        if isinstance(shard, str):
            from ..net.pcap import PcapReader

            with PcapReader(shard) as reader:
                for timestamp, frame in reader:
                    lane.on_packet(timestamp, frame)
        else:
            for nanos, frame in shard:
                lane.on_packet(Time.from_nanos(nanos), frame)
        lane.on_end()
        conn.send(spec.lane_result(lane))
    except BaseException as error:  # surface the failure to the parent
        try:
            conn.send({"error": repr(error)})
        except Exception:
            pass
        raise
    finally:
        conn.close()


def telemetry_snapshot(lane, processed: int) -> Dict:
    """One worker-local telemetry snapshot, as picklable plain data.

    Built only when the lane's telemetry is armed (callers guard on
    ``lane.telemetry.any_enabled``); ``series`` is the lane registry's
    ``collect()`` — sparse mid-run for apps that export at ``on_end``,
    which is why the cheap ``live`` counters ride along.
    """
    telemetry = lane.telemetry
    snapshot: Dict[str, object] = {
        "processed": processed,
        "ts": _time.time(),
    }
    try:
        snapshot["live"] = lane.live_metrics()
    except Exception:
        snapshot["live"] = {}
    if telemetry.enabled:
        snapshot["series"] = telemetry.metrics.collect()
    tracer = telemetry.tracer
    if tracer.enabled:
        snapshot["spans_started"] = tracer.spans_started
        snapshot["spans_dropped"] = tracer.spans_dropped
    return snapshot


# --------------------------------------------------------------------------
# The persistent pool worker (``--backend pool``)
# --------------------------------------------------------------------------


def pool_worker_main(in_name: str, out_name: str) -> None:
    """The pool worker loop: attach both rings, then serve runs until
    a ``SHUTDOWN`` message (or a closed parent) ends the process.

    A failure inside one run (lane construction, a packet, the final
    harvest) is reported as ``ERROR`` and poisons only that run: the
    worker stays alive, discards the failed run's remaining traffic by
    epoch, and serves the next ``BEGIN`` normally.
    """
    in_ring = ShmRing.attach(in_name)
    out_ring = ShmRing.attach(out_name)
    inbox = MessageChannel(in_ring)
    outbox = MessageChannel(out_ring)

    lane = None
    spec = None
    run_id = -1
    processed = 0
    telem_armed = False
    last_telem = 0.0

    def fail(error: BaseException) -> None:
        nonlocal lane, spec
        lane = None
        spec = None
        diagnostic = {
            "error": repr(error),
            "traceback": traceback.format_exc(),
            "processed": processed,
        }
        outbox.send(MSG_ERROR,
                    _RUN.pack(run_id) + pickle.dumps(diagnostic),
                    timeout=5.0)

    try:
        from ..core.values import Time

        while True:
            # A long timeout keeps an idle worker in one deep-backoff
            # pop instead of restarting the backoff ladder twice a
            # second; shutdown and BEGIN latency are bounded by the
            # ring's 50ms backoff cap, not by this value.
            message = inbox.recv(timeout=30.0)
            if message is None:
                continue
            tag, payload = message
            if tag == MSG_SHUTDOWN:
                return
            msg_run = _RUN.unpack_from(payload, 0)[0]
            body = payload[_RUN.size:]
            if tag == MSG_BEGIN:
                run_id = msg_run
                processed = 0
                try:
                    spec, uid_map = pickle.loads(body)
                    lane = spec.make_lane(uid_map)
                    lane.on_begin()
                    telemetry = getattr(lane, "telemetry", None)
                    telem_armed = (telemetry is not None
                                   and telemetry.any_enabled)
                    last_telem = _time.monotonic()
                except BaseException as error:  # noqa: BLE001
                    fail(error)
                continue
            if msg_run != run_id or lane is None:
                # A stale message from a run that already failed (or
                # that a respawned sibling never saw): drop it.
                continue
            if tag == MSG_DATA:
                try:
                    for nanos, frame in decode_batch(body):
                        lane.on_packet(Time.from_nanos(nanos), frame)
                        processed += 1
                except BaseException as error:  # noqa: BLE001
                    fail(error)
                    continue
                outbox.send(MSG_PROGRESS,
                            _PROGRESS.pack(run_id, processed),
                            timeout=5.0)
                # Periodic telemetry: the disabled path never reaches
                # the snapshot (one boolean test per batch, not per
                # packet — the NULL_SPAN discipline).
                if telem_armed:
                    now = _time.monotonic()
                    if now - last_telem >= TELEM_INTERVAL:
                        last_telem = now
                        try:
                            blob = pickle.dumps(
                                telemetry_snapshot(lane, processed),
                                protocol=pickle.HIGHEST_PROTOCOL)
                        except Exception:
                            blob = None
                        if blob is not None:
                            outbox.send(MSG_TELEM,
                                        _RUN.pack(run_id) + blob,
                                        timeout=1.0)
            elif tag == MSG_END:
                try:
                    lane.on_end()
                    result = pickle.dumps(
                        spec.lane_result(lane),
                        protocol=pickle.HIGHEST_PROTOCOL)
                except BaseException as error:  # noqa: BLE001
                    fail(error)
                    continue
                outbox.send(MSG_RESULT, _RUN.pack(run_id) + result)
                lane = None
                spec = None
    finally:
        in_ring.close()
        out_ring.close()


def parse_progress(payload: bytes) -> Tuple[int, int]:
    """Decode a ``PROGRESS`` payload into ``(run_id, processed)``."""
    return _PROGRESS.unpack(payload)


def parse_run_prefix(payload: bytes) -> Tuple[int, bytes]:
    """Split a run-scoped payload into ``(run_id, body)``."""
    return _RUN.unpack_from(payload, 0)[0], payload[_RUN.size:]


def pack_run_prefix(run_id: int) -> bytes:
    """The run-epoch prefix parents prepend to run-scoped messages."""
    return _RUN.pack(run_id)
