"""Generic flow demultiplexing + TCP reassembly for host applications.

The slice of Bro's connection tracker every other host app needs: frames
parse to 5-tuples, each flow gets one handler from an app-provided
factory, TCP payload arrives in stream order through a
:class:`~repro.net.reassembly.ConnectionReassembler`, UDP payload is
delivered per datagram.  The BinPAC++ driver (``repro.apps.binpac.app``)
runs its per-flow parse sessions on top of this.

Handler protocol (all optional but ``data``/``datagram``):

* ``data(is_originator, payload)`` — contiguous TCP stream bytes;
* ``datagram(is_originator, payload)`` — one UDP datagram's payload;
* ``end()`` — flow closed (TCP teardown, end of trace, or eviction);
* ``kill()`` — flow quarantined (slow-flow budget exceeded).

Long-running robustness (docs/SERVICE.md): when *max_sessions*,
*session_ttl*, or *memory_budget_bytes* is set, the table runs LRU/TTL
eviction over network time so occupancy stays flat across millions of
flows — idle flows expire (``sessions_expired``), capacity overflows
sacrifice the least-recently-active flow (``sessions_evicted``), and
every removal still delivers the handler's ``end()``.  A per-flow
*flow_budget_ns* extends the watchdog idea to handler dispatch: one
pathological flow whose handler overruns the wall-clock budget is
quarantined (``kill()``, no further payload) instead of stalling the
pipeline.  With none of these armed, behavior is byte-identical to the
original unbounded table.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional, Tuple

from ..net.flows import FiveTuple
from ..net.packet import (
    PROTO_TCP,
    PROTO_UDP,
    TCPSegment,
    UDPDatagram,
    parse_ethernet,
)
from ..net.reassembly import ConnectionReassembler, StreamReassembler
from .flowtable import FlowTable

__all__ = ["FlowDemux"]

#: Memory-budget enforcement samples the (O(open flows)) pending-bytes
#: sum once per this many fed packets, not per packet.
_BUDGET_CHECK_INTERVAL = 64


class _Flow:
    __slots__ = ("key", "handler", "originator", "reassembler", "closed")

    def __init__(self, key: Tuple, handler, originator: Optional[Tuple]):
        self.key = key
        self.handler = handler
        self.originator = originator
        self.reassembler: Optional[ConnectionReassembler] = None
        self.closed = False


class FlowDemux:
    """A per-flow handler table over raw Ethernet frames.

    *factory* is called once per new flow as ``factory(flow)`` with the
    first packet's :class:`FiveTuple` (src = originator); returning
    ``None`` ignores the flow.  ``feed(frame)`` routes one frame;
    ``finish()`` closes every open flow.

    ``feed``'s optional *now* is the packet's network time in seconds;
    it drives TTL eviction when *session_ttl* is armed.
    """

    def __init__(self, factory,
                 max_pending_bytes: int =
                 StreamReassembler.DEFAULT_MAX_PENDING,
                 max_sessions: Optional[int] = None,
                 session_ttl: Optional[float] = None,
                 memory_budget_bytes: Optional[int] = None,
                 flow_budget_ns: Optional[int] = None,
                 on_slow_flow: Optional[Callable] = None,
                 uid_map: Optional[Dict] = None,
                 uid_format: Optional[Callable[[int], str]] = None):
        self._factory = factory
        self._max_pending = max_pending_bytes
        self._flows: Dict[FiveTuple, _Flow] = {}
        self.max_sessions = max_sessions
        self.session_ttl = session_ttl
        self.memory_budget_bytes = memory_budget_bytes
        self.flow_budget_ns = flow_budget_ns
        self._on_slow_flow = on_slow_flow
        # The shared ledger owns keying, uid assignment, bidirectional
        # accounting, recency, and the TTL/cap eviction loop; the demux
        # keeps what is its own — handlers, reassemblers, the memory
        # budget over pending reassembly bytes — and flushes evicted
        # flows through ``_on_evict_flow``.  Recency covers *every*
        # table entry (ignored-flow and torn-down tombstones included:
        # they absorb trailing packets like TIME_WAIT, and eviction is
        # what finally reaps them).
        self.table = FlowTable(uid_map=uid_map, uid_format=uid_format,
                               max_sessions=max_sessions,
                               session_ttl=session_ttl,
                               on_evict=self._on_evict_flow)
        self._evicting = (max_sessions is not None
                          or session_ttl is not None
                          or memory_budget_bytes is not None)
        self._clock: Optional[float] = None
        self._fed = 0
        self.flows_opened = 0
        self.flows_closed = 0
        self.flows_ignored = 0
        self.packets_ignored = 0
        self.flows_quarantined_slow = 0
        self._reassembly = {
            "delivered_bytes": 0,
            "gap_bytes": 0,
            "overlap_bytes": 0,
            "dropped_bytes": 0,
        }

    # Eviction counters live in the shared ledger now; the historical
    # attribute surface stays.
    @property
    def sessions_evicted(self) -> int:
        return self.table.sessions_evicted

    @property
    def sessions_expired(self) -> int:
        return self.table.sessions_expired

    def open_flows(self) -> int:
        return sum(1 for flow in self._flows.values() if not flow.closed)

    # -- feeding -----------------------------------------------------------

    def feed(self, frame: bytes, now: Optional[float] = None) -> None:
        """Route one Ethernet frame to its flow's handler."""
        try:
            ip, transport = parse_ethernet(frame)
        except Exception:
            self.packets_ignored += 1
            return
        if isinstance(transport, TCPSegment):
            flow = FiveTuple(ip.src, ip.dst, transport.src_port,
                             transport.dst_port, PROTO_TCP)
            tcp_flags = transport.flags
        elif isinstance(transport, UDPDatagram):
            flow = FiveTuple(ip.src, ip.dst, transport.src_port,
                             transport.dst_port, PROTO_UDP)
            tcp_flags = 0
        else:
            self.packets_ignored += 1
            return
        if now is not None:
            self._clock = now
        key = flow.canonical()
        state = self._flows.get(key)
        if state is None:
            handler = self._factory(flow)
            if handler is None:
                self.flows_ignored += 1
                self._flows[key] = state = _Flow(key, None, None)
                state.closed = True
            else:
                self.flows_opened += 1
                state = _Flow(key, handler,
                              (flow.src.value, flow.src_port))
                if flow.protocol == PROTO_TCP:
                    state.reassembler = ConnectionReassembler(
                        on_data=handler.data,
                        on_close=lambda s=state: self._close(s),
                        max_pending_bytes=self._max_pending,
                    )
                self._flows[key] = state
        # Ledger accounting covers every flow — tombstones included, so
        # records and serials are a pure function of trace content.
        self.table.account(
            flow, self._clock if self._clock is not None else 0.0,
            payload_len=len(transport.payload), tcp_flags=tcp_flags,
            touch=False)
        if self._evicting:
            self._fed += 1
            if self._clock is not None:
                self.table.touch(key, self._clock)
            self._run_eviction()
        if state.handler is None or state.closed:
            return
        is_orig = (flow.src.value, flow.src_port) == state.originator
        budget = self.flow_budget_ns
        begin = _time.perf_counter_ns() if budget is not None else 0
        if state.reassembler is not None:
            state.reassembler.feed_segment(is_orig, transport)
        elif transport.payload:
            state.handler.datagram(is_orig, transport.payload)
        if budget is not None and not state.closed \
                and _time.perf_counter_ns() - begin > budget:
            self._quarantine_slow(state)

    def finish(self) -> None:
        """End of trace: close every flow still open and seal the
        ledger's remaining entries as finished."""
        for state in list(self._flows.values()):
            self._close(state)
        self.table.finish()

    # -- internals ---------------------------------------------------------

    def _close(self, state: _Flow) -> None:
        if state.closed:
            return
        state.closed = True
        if state.reassembler is not None:
            stats = state.reassembler.stats()
            for name in self._reassembly:
                self._reassembly[name] += stats[name]
        if state.handler is not None:
            end = getattr(state.handler, "end", None)
            if end is not None:
                end()
        self.flows_closed += 1

    def _quarantine_slow(self, state: _Flow) -> None:
        """One handler dispatch overran the flow budget: no further
        payload reaches this flow (Python can't preempt the call that
        already ran, so the cost is one slow dispatch, not a stall)."""
        state.closed = True
        if state.reassembler is not None:
            stats = state.reassembler.stats()
            for name in self._reassembly:
                self._reassembly[name] += stats[name]
        kill = getattr(state.handler, "kill", None)
        if kill is not None:
            kill()
        self.flows_quarantined_slow += 1
        if self._on_slow_flow is not None:
            self._on_slow_flow(state.handler)

    # -- eviction ----------------------------------------------------------

    def _on_evict_flow(self, key: FiveTuple, reason: str) -> bool:
        """The ledger's owner callback: final-flush a TTL/cap victim.
        Returns whether the eviction counts (tombstones do not)."""
        state = self._flows.pop(key, None)
        if state is None or state.closed:
            return False
        self._close(state)
        return True

    def _run_eviction(self) -> None:
        """TTL and capacity run through the shared ledger; the memory
        budget over pending reassembly bytes is demux-specific and
        drives the ledger's eviction primitives directly."""
        self.table.run_eviction(self._clock)
        budget = self.memory_budget_bytes
        if budget is not None and self._fed % _BUDGET_CHECK_INTERVAL == 0:
            pending = sum(
                state.reassembler.stats()["pending_bytes"]
                for state in self._flows.values()
                if state.reassembler is not None and not state.closed
            )
            while pending > budget:
                key = self.table.oldest()
                if key is None:
                    break
                state = self._flows.get(key)
                if state is not None and state.reassembler is not None \
                        and not state.closed:
                    pending -= state.reassembler.stats()["pending_bytes"]
                self.table.evict(key, "evicted")

    # -- telemetry ---------------------------------------------------------

    def flow_snapshot(self, limit: int = 256) -> List[Dict]:
        """The open flows, most recent last (service ``/flows``)."""
        out: List[Dict] = []
        for key, state in self._flows.items():
            if state.closed:
                continue
            out.append({
                "key": [[key.src.value, key.src_port],
                        [key.dst.value, key.dst_port], key.protocol],
                "uid": getattr(state.handler, "uid", None),
                "protocol": getattr(state.handler, "protocol", None),
                "last_active": self.table.last_active(key),
            })
            if len(out) >= limit:
                break
        return out

    def flow_records(self) -> List:
        """The sealed :class:`~repro.net.flowrecord.FlowRecord` list."""
        return self.table.records()

    def flow_record_lines(self) -> List[str]:
        """The sorted, deterministic flow-record export stream."""
        return self.table.record_lines()

    def stats(self) -> dict:
        """Occupancy and reassembly accounting (telemetry export)."""
        out = {
            "flows_opened": self.flows_opened,
            "flows_closed": self.flows_closed,
            "flows_ignored": self.flows_ignored,
            "packets_ignored": self.packets_ignored,
            "flows_open": self.open_flows(),
            "sessions_evicted": self.sessions_evicted,
            "sessions_expired": self.sessions_expired,
            "flows_quarantined_slow": self.flows_quarantined_slow,
            "pending_bytes": sum(
                state.reassembler.stats()["pending_bytes"]
                for state in self._flows.values()
                if state.reassembler is not None and not state.closed
            ),
        }
        out.update(self._reassembly)
        return out

    def export_metrics(self, registry, label: str = "demux") -> None:
        """Publish the snapshot into a telemetry MetricsRegistry."""
        stats = self.stats()
        for name in ("flows_opened", "flows_closed", "flows_ignored",
                     "packets_ignored", "sessions_evicted",
                     "sessions_expired", "flows_quarantined_slow"):
            registry.counter(f"demux.{name}", table=label).inc(stats[name])
        registry.gauge("demux.flows_open", table=label).set(
            stats["flows_open"])
        registry.gauge("reassembly.pending_bytes").set(
            stats["pending_bytes"])
        for name in ("delivered_bytes", "gap_bytes", "overlap_bytes",
                     "dropped_bytes"):
            registry.counter(f"reassembly.{name}").inc(stats[name])
