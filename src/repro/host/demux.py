"""Generic flow demultiplexing + TCP reassembly for host applications.

The slice of Bro's connection tracker every other host app needs: frames
parse to 5-tuples, each flow gets one handler from an app-provided
factory, TCP payload arrives in stream order through a
:class:`~repro.net.reassembly.ConnectionReassembler`, UDP payload is
delivered per datagram.  The BinPAC++ driver (``repro.apps.binpac.app``)
runs its per-flow parse sessions on top of this.

Handler protocol (all optional but ``data``/``datagram``):

* ``data(is_originator, payload)`` — contiguous TCP stream bytes;
* ``datagram(is_originator, payload)`` — one UDP datagram's payload;
* ``end()`` — flow closed (TCP teardown or end of trace).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..net.flows import FiveTuple, flow_of_frame
from ..net.packet import PROTO_TCP, PacketError, parse_ethernet
from ..net.reassembly import ConnectionReassembler, StreamReassembler

__all__ = ["FlowDemux"]


class _Flow:
    __slots__ = ("handler", "originator", "reassembler", "closed")

    def __init__(self, handler, originator: Tuple):
        self.handler = handler
        self.originator = originator
        self.reassembler: Optional[ConnectionReassembler] = None
        self.closed = False


class FlowDemux:
    """A per-flow handler table over raw Ethernet frames.

    *factory* is called once per new flow as ``factory(flow)`` with the
    first packet's :class:`FiveTuple` (src = originator); returning
    ``None`` ignores the flow.  ``feed(frame)`` routes one frame;
    ``finish()`` closes every open flow.
    """

    def __init__(self, factory,
                 max_pending_bytes: int =
                 StreamReassembler.DEFAULT_MAX_PENDING):
        self._factory = factory
        self._max_pending = max_pending_bytes
        self._flows: Dict[Tuple, _Flow] = {}
        self.flows_opened = 0
        self.flows_closed = 0
        self.flows_ignored = 0
        self.packets_ignored = 0
        self._reassembly = {
            "delivered_bytes": 0,
            "gap_bytes": 0,
            "overlap_bytes": 0,
            "dropped_bytes": 0,
        }

    def open_flows(self) -> int:
        return sum(1 for flow in self._flows.values() if not flow.closed)

    # -- feeding -----------------------------------------------------------

    def feed(self, frame: bytes) -> None:
        """Route one Ethernet frame to its flow's handler."""
        flow = flow_of_frame(frame)
        if flow is None:
            self.packets_ignored += 1
            return
        key = self._key(flow)
        state = self._flows.get(key)
        if state is None:
            handler = self._factory(flow)
            if handler is None:
                self.flows_ignored += 1
                self._flows[key] = state = _Flow(None, None)
                state.closed = True
            else:
                self.flows_opened += 1
                state = _Flow(handler, (flow.src.value, flow.src_port))
                if flow.protocol == PROTO_TCP:
                    state.reassembler = ConnectionReassembler(
                        on_data=handler.data,
                        on_close=lambda s=state: self._close(s),
                        max_pending_bytes=self._max_pending,
                    )
                self._flows[key] = state
        if state.handler is None or state.closed:
            return
        is_orig = (flow.src.value, flow.src_port) == state.originator
        try:
            __, transport = parse_ethernet(frame)
        except PacketError:
            self.packets_ignored += 1
            return
        if state.reassembler is not None:
            state.reassembler.feed_segment(is_orig, transport)
        elif transport is not None and transport.payload:
            state.handler.datagram(is_orig, transport.payload)

    def finish(self) -> None:
        """End of trace: close every flow still open."""
        for state in self._flows.values():
            self._close(state)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _key(flow: FiveTuple) -> Tuple:
        canonical = flow.canonical()
        return (
            (canonical.src.value, canonical.src_port),
            (canonical.dst.value, canonical.dst_port),
            canonical.protocol,
        )

    def _close(self, state: _Flow) -> None:
        if state.closed:
            return
        state.closed = True
        if state.reassembler is not None:
            stats = state.reassembler.stats()
            for name in self._reassembly:
                self._reassembly[name] += stats[name]
        if state.handler is not None:
            end = getattr(state.handler, "end", None)
            if end is not None:
                end()
        self.flows_closed += 1

    # -- telemetry ---------------------------------------------------------

    def stats(self) -> dict:
        """Occupancy and reassembly accounting (telemetry export)."""
        out = {
            "flows_opened": self.flows_opened,
            "flows_closed": self.flows_closed,
            "flows_ignored": self.flows_ignored,
            "packets_ignored": self.packets_ignored,
            "flows_open": self.open_flows(),
            "pending_bytes": sum(
                state.reassembler.stats()["pending_bytes"]
                for state in self._flows.values()
                if state.reassembler is not None and not state.closed
            ),
        }
        out.update(self._reassembly)
        return out

    def export_metrics(self, registry, label: str = "demux") -> None:
        """Publish the snapshot into a telemetry MetricsRegistry."""
        stats = self.stats()
        for name in ("flows_opened", "flows_closed", "flows_ignored",
                     "packets_ignored"):
            registry.counter(f"demux.{name}", table=label).inc(stats[name])
        registry.gauge("demux.flows_open", table=label).set(
            stats["flows_open"])
        registry.gauge("reassembly.pending_bytes").set(
            stats["pending_bytes"])
        for name in ("delivered_bytes", "gap_bytes", "overlap_bytes",
                     "dropped_bytes"):
            registry.counter(f"reassembly.{name}").inc(stats[name])
