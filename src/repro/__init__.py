"""repro — a from-scratch reproduction of HILTI (IMC 2014).

HILTI is an abstract execution environment for deep, stateful network
traffic analysis: an abstract machine model tailored to the networking
domain plus a compilation strategy turning abstract-machine programs into
executable code.  This package provides:

* ``repro.core`` — the abstract machine: type system, IR, textual parser,
  builder API, verifier, optimizer, linker, and two execution tiers
  (closure-compiled and interpreted);
* ``repro.runtime`` — the runtime library: bytes buffers, state-managed
  containers, timers, fibers, virtual threads, regexps, classifiers,
  overlays, channels, files, profilers;
* ``repro.net`` — the packet substrate: wire formats, pcap traces, flows,
  TCP reassembly, and synthetic trace generation;
* ``repro.apps`` — the paper's four host applications: a BPF compiler, a
  stateful firewall, the BinPAC++ parser generator, and a Bro-style script
  compiler.
"""

__version__ = "1.0.0"

from .core.toolchain import hilti_build, hiltic, run_source  # noqa: F401
from .core.values import Addr, Interval, Network, Port, Time  # noqa: F401
