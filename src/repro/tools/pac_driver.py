"""The standalone BinPAC++ driver's command line.

Runs the generated HILTI parsers directly over a trace — the paper's
section 5 exemplar without the Bro event engine on top::

    python -m repro.tools.pac_driver -r trace.pcap
    python -m repro.tools.pac_driver -r trace.pcap \
        --protocols http,dns --parallel --backend vthread

Every finished unit becomes one line of ``events.log``; flow uids are
assigned in global first-packet order, so sequential and parallel runs
fingerprint identically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..apps.binpac.app import PROTOCOLS, PacApp, PacLaneSpec
from ..core.optimize import OPT_LEVELS
from ..host.cli import add_pipeline_args, add_service_args, run_host_app

_DEFAULT = "http,dns,ssh,tftp"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pac_driver",
        description="run BinPAC++-generated HILTI parsers over a pcap "
                    "trace on the shared host pipeline",
    )
    parser.add_argument("--protocols", default=_DEFAULT, metavar="LIST",
                        help="comma-separated protocols to parse "
                             f"(default {_DEFAULT})")
    parser.add_argument("-O", "--opt-level", type=int,
                        choices=list(OPT_LEVELS), default=None,
                        help="HILTI optimization level for the "
                             "generated parsers")
    parser.add_argument("--flow-budget-ms", type=float, default=None,
                        metavar="MS",
                        help="per-dispatch wall-clock budget for one "
                             "flow's parser; a flow exceeding it is "
                             "quarantined (counted in the health "
                             "report) instead of stalling the pipeline")
    add_pipeline_args(parser)
    add_service_args(parser)
    return parser


def _protocols(args: argparse.Namespace) -> tuple:
    names = tuple(p.strip() for p in args.protocols.split(",") if p.strip())
    unknown = [p for p in names if p not in PROTOCOLS]
    if unknown:
        known = ", ".join(sorted(PROTOCOLS))
        raise SystemExit(f"pac_driver: unknown protocols "
                         f"{', '.join(unknown)} (known: {known})")
    if not names:
        raise SystemExit("pac_driver: --protocols must name at least one "
                         "protocol")
    return names


def _flow_budget_ns(args: argparse.Namespace):
    if args.flow_budget_ms is None:
        return None
    return int(args.flow_budget_ms * 1e6)


def _make_app(args: argparse.Namespace, services) -> PacApp:
    return PacApp(protocols=_protocols(args),
                  opt_level=args.opt_level, services=services,
                  flow_budget_ns=_flow_budget_ns(args))


def _make_spec(args: argparse.Namespace) -> PacLaneSpec:
    return PacLaneSpec({
        "protocols": _protocols(args),
        "opt_level": args.opt_level,
        "watchdog_budget": args.watchdog,
        "metrics": args.metrics,
        "trace": args.trace_flows,
    })


def _summarize(stats: Dict) -> str:
    return (f", {stats['events']} events from "
            f"{stats['flows_opened']} flows "
            f"({stats['parse_errors']} parse errors)")


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    return run_host_app(args, "pac_driver", _make_app, _make_spec,
                        results_name="events.log",
                        summarize=_summarize)


if __name__ == "__main__":
    sys.exit(main())
