"""The BPF exemplar's command line: filter a trace through HILTI.

The paper's simplest host application as a standalone tool over the
shared pipeline driver::

    python -m repro.tools.bpf_filter 'tcp and port 80' -r trace.pcap
    python -m repro.tools.bpf_filter 'host 10.0.0.1' -r trace.pcap \
        --engine vm --parallel --backend threaded

Shares the full ``repro.host.cli`` surface with the other drivers:
``--metrics``, ``--inject``, ``--watchdog``, ``--parallel``,
``--tolerant-pcap`` and friends all behave identically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..apps.bpf.app import ENGINES, BpfApp, BpfLaneSpec
from ..core.optimize import OPT_LEVELS
from ..host.cli import add_pipeline_args, add_service_args, run_host_app


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bpf_filter",
        description="evaluate a BPF filter expression over a pcap trace "
                    "on the shared host pipeline",
    )
    parser.add_argument("filter", help="tcpdump-style filter expression "
                                       "(e.g. 'tcp and port 80')")
    parser.add_argument("--engine", choices=ENGINES, default="compiled",
                        help="execution tier: HILTI compiled (default), "
                             "HILTI interpreted, or the classic BPF "
                             "virtual machine")
    parser.add_argument("-O", "--opt-level", type=int,
                        choices=list(OPT_LEVELS), default=None,
                        help="HILTI optimization level for the compiled "
                             "tier")
    add_pipeline_args(parser)
    add_service_args(parser)
    return parser


def _make_app(args: argparse.Namespace, services) -> BpfApp:
    return BpfApp(args.filter, engine=args.engine,
                  opt_level=args.opt_level, services=services)


def _make_spec(args: argparse.Namespace) -> BpfLaneSpec:
    return BpfLaneSpec({
        "filter": args.filter,
        "engine": args.engine,
        "opt_level": args.opt_level,
        "watchdog_budget": args.watchdog,
        "metrics": args.metrics,
        "trace": args.trace_flows,
    })


def _summarize(stats: Dict) -> str:
    return (f", accepted {stats['accepted']}, "
            f"rejected {stats['rejected']} "
            f"({stats['engine']} engine)")


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    return run_host_app(args, "bpf_filter", _make_app, _make_spec,
                        results_name="accepted.log",
                        summarize=_summarize)


if __name__ == "__main__":
    sys.exit(main())
