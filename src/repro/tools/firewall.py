"""The stateful-firewall exemplar's command line.

The paper's section 4 firewall as a standalone tool over the shared
pipeline driver::

    python -m repro.tools.firewall --rules rules.txt -r trace.pcap
    python -m repro.tools.firewall --rules rules.txt -r trace.pcap \
        --engine reference --parallel --workers 8

Rule files use the ``src-net dst-net allow|deny`` format of
:meth:`repro.apps.firewall.rules.RuleSet.parse`.  Parallel runs shard
by canonical host pair, so the merged decision stream is byte-identical
to a sequential run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from ..apps.firewall.app import ENGINES, FirewallApp, FirewallLaneSpec
from ..apps.firewall.rules import RuleSet
from ..core.optimize import OPT_LEVELS
from ..host.cli import add_pipeline_args, add_service_args, run_host_app


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="firewall",
        description="run the stateful firewall over a pcap trace on the "
                    "shared host pipeline",
    )
    parser.add_argument("--rules", required=True, metavar="FILE",
                        help="rule file ('src-net dst-net allow|deny' "
                             "per line, '*' as wildcard)")
    parser.add_argument("--timeout", type=float, default=300.0,
                        metavar="SECONDS",
                        help="inactivity timeout of dynamic reverse "
                             "rules (default 300)")
    parser.add_argument("--engine", choices=ENGINES, default="compiled",
                        help="execution tier: HILTI compiled (default), "
                             "HILTI interpreted, or the pure-Python "
                             "reference")
    parser.add_argument("-O", "--opt-level", type=int,
                        choices=list(OPT_LEVELS), default=None,
                        help="HILTI optimization level for the compiled "
                             "tier")
    add_pipeline_args(parser)
    add_service_args(parser)
    return parser


def _read_rules(path: str) -> str:
    with open(path) as stream:
        return stream.read()


def _make_app_factory(rules_text: str):
    def make_app(args: argparse.Namespace, services) -> FirewallApp:
        ruleset = RuleSet.parse(rules_text,
                                timeout_seconds=args.timeout)
        return FirewallApp(ruleset, engine=args.engine,
                           opt_level=args.opt_level, services=services)
    return make_app


def _make_spec_factory(rules_text: str):
    def make_spec(args: argparse.Namespace) -> FirewallLaneSpec:
        return FirewallLaneSpec({
            "rules": rules_text,
            "timeout_seconds": args.timeout,
            "engine": args.engine,
            "opt_level": args.opt_level,
            "watchdog_budget": args.watchdog,
            "metrics": args.metrics,
            "trace": args.trace_flows,
        })
    return make_spec


def _summarize(stats: Dict) -> str:
    return (f", allowed {stats['allowed']}, denied {stats['denied']}, "
            f"ignored {stats['ignored']} ({stats['engine']} engine)")


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    rules_text = _read_rules(args.rules)
    # Parse eagerly so rule-file errors surface before any trace work.
    RuleSet.parse(rules_text, timeout_seconds=args.timeout)
    return run_host_app(args, "firewall",
                        _make_app_factory(rules_text),
                        _make_spec_factory(rules_text),
                        results_name="decisions.log",
                        summarize=_summarize)


if __name__ == "__main__":
    sys.exit(main())
