"""bro — run the analysis pipeline over a pcap trace.

The Figure 8 command line in miniature::

    # bro -r wikipedia.pcap compile_scripts=T track.bro
    python -m repro.tools.bro -r trace.pcap --compile-scripts track.bro

Without script files, the default conn/http/dns analysis scripts run;
logs are written into ``--logdir`` (default ``./logs``).
"""

from __future__ import annotations

import argparse
import sys

from ..apps.bro.main import Bro
from ..apps.bro.scripts import TRACK_SCRIPT

_BUNDLED = {"track.bro": TRACK_SCRIPT}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="bro", description="mini-Bro over a pcap trace")
    parser.add_argument("-r", "--read", required=True, metavar="TRACE",
                        help="pcap file to read")
    parser.add_argument("scripts", nargs="*",
                        help="script files (default: conn/http/dns); the "
                             "bundled track.bro may be named directly")
    parser.add_argument("--parsers", choices=["std", "pac"], default="std",
                        help="protocol parser tier (default std)")
    parser.add_argument("--compile-scripts", action="store_true",
                        help="compile scripts through HILTI "
                             "(the paper's compile_scripts=T)")
    parser.add_argument("--logdir", default="logs",
                        help="directory for the .log files")
    parser.add_argument("--stats", action="store_true",
                        help="print the per-component timing breakdown")
    args = parser.parse_args(argv)

    scripts = None
    if args.scripts:
        scripts = []
        for name in args.scripts:
            if name in _BUNDLED:
                scripts.append(_BUNDLED[name])
            else:
                with open(name) as stream:
                    scripts.append(stream.read())

    bro = Bro(
        scripts=scripts,
        parsers=args.parsers,
        scripts_engine="hilti" if args.compile_scripts else "interp",
    )
    stats = bro.run_pcap(args.read)
    bro.core.logs.save(args.logdir)
    written = {
        name: stream.writes
        for name, stream in bro.core.logs.streams.items()
        if stream.writes
    }
    print(f"processed {stats['packets']} packets, "
          f"{stats['events']} events")
    for name, count in sorted(written.items()):
        print(f"  {args.logdir}/{name}.log: {count} entries")
    if args.stats:
        for key in ("parsing_ns", "script_ns", "glue_ns", "other_ns"):
            print(f"  {key[:-3]:>8}: {stats[key] / 1e6:10.2f} ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
