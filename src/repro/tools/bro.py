"""bro — run the analysis pipeline over a pcap trace.

The Figure 8 command line in miniature::

    # bro -r wikipedia.pcap compile_scripts=T track.bro
    python -m repro.tools.bro -r trace.pcap --compile-scripts track.bro

Without script files, the default conn/http/dns analysis scripts run;
logs are written into ``--logdir`` (default ``./logs``).

Robustness controls (docs/ROBUSTNESS.md): ``--tolerant-pcap`` skips
corrupt trace records, ``--watchdog N`` bounds HILTI instructions per
packet, ``--inject SITE=RATE`` arms the deterministic fault injector,
and ``--health`` prints the recovery/health report after the run.

Telemetry controls (docs/OBSERVABILITY.md): ``--metrics`` writes
``metrics.jsonl``/``stats.log``/``prof.log`` into the log directory,
``--cpu-breakdown`` writes the Figures 9/10 parsing/script/glue/other
report as ``cpu_breakdown.json``, and ``--trace-flows`` records
per-flow span trees into ``flows.jsonl``.

Parallel controls (docs/PARALLELISM.md): ``--parallel`` drives the
flow-parallel pipeline — connections hash to vthreads, lanes analyze
independently, logs merge deterministically — with ``--workers N``,
``--vthreads M``, and ``--backend {vthread,threaded,process,pool}``.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..apps.bro.main import Bro
from ..apps.bro.parallel import BroLaneSpec, ParallelBro
from ..apps.bro.scripts import TRACK_SCRIPT
from ..core.optimize import OPT_LEVELS
from ..net.flowrecord import write_flowrecords_jsonl
from ..host.cli import (
    EXIT_INTERRUPTED,
    _install_interrupt_handler,
    _restore_interrupt_handler,
    add_service_args,
    parse_injections,
    print_health,
    run_host_service,
)
from ..runtime.faults import registered_sites
from ..runtime.telemetry import Telemetry

_BUNDLED = {"track.bro": TRACK_SCRIPT}


def _make_spec(ns, scripts) -> BroLaneSpec:
    """The pool-transport lane spec for ``--serve``.

    Full lane-constructor config: pool-transport lanes build Bro
    instances from this in worker processes, where only the picklable
    spec travels (thread lanes use make_app) — so every compilation
    knob, including ``-O``, must ride in the spec.
    """
    return BroLaneSpec({
        "scripts": scripts,
        "parsers": ns.parsers,
        "scripts_engine": ("hilti" if ns.compile_scripts
                           else "interp"),
        "log_enabled": True,
        "watchdog_budget": ns.watchdog,
        "opt_level": ns.opt_level,
        "metrics": ns.metrics,
        "trace": False,
    })


def main(argv=None) -> int:
    sites = ", ".join(sorted(registered_sites()))
    parser = argparse.ArgumentParser(
        prog="bro", description="mini-Bro over a pcap trace")
    parser.add_argument("-r", "--read", required=True, metavar="TRACE",
                        help="pcap file to read")
    parser.add_argument("scripts", nargs="*",
                        help="script files (default: conn/http/dns); the "
                             "bundled track.bro may be named directly")
    parser.add_argument("--parsers", choices=["std", "pac"], default="std",
                        help="protocol parser tier (default std)")
    parser.add_argument("--compile-scripts", action="store_true",
                        help="compile scripts through HILTI "
                             "(the paper's compile_scripts=T)")
    parser.add_argument("-O", "--opt-level", type=int,
                        choices=list(OPT_LEVELS), default=None,
                        help="HILTI optimization level for compiled "
                             "scripts and pac parsers")
    parser.add_argument("--logdir", default="logs",
                        help="directory for the .log files")
    parser.add_argument("--stats", action="store_true",
                        help="print the per-component timing breakdown")
    parser.add_argument("--tolerant-pcap", action="store_true",
                        help="skip truncated/corrupt trace records "
                             "instead of aborting (counted in the "
                             "health report)")
    parser.add_argument("--watchdog", type=int, default=None, metavar="N",
                        help="per-packet HILTI instruction budget; "
                             "exceeding it raises a catchable "
                             "Hilti::ProcessingTimeout and quarantines "
                             "the flow's analyzer")
    parser.add_argument("--inject", action="append", metavar="SITE=RATE",
                        help="arm the deterministic fault injector at "
                             "SITE with probability RATE per pass "
                             f"(SITE is 'all' or one of: {sites}); "
                             "repeatable")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the fault injector's per-site "
                             "random streams (default 0)")
    parser.add_argument("--health", action="store_true",
                        help="print the recovery/health report "
                             "(quarantines, skipped records, watchdog "
                             "trips, per-site error budget)")
    parser.add_argument("--metrics", action="store_true",
                        help="collect the unified metrics registry and "
                             "write metrics.jsonl, stats.log, and "
                             "prof.log into the log directory")
    parser.add_argument("--cpu-breakdown", action="store_true",
                        help="write the Figures 9/10 per-component CPU "
                             "report (cpu_breakdown.json) and print the "
                             "shares")
    parser.add_argument("--trace-flows", action="store_true",
                        help="record per-flow span trees (with "
                             "per-packet child spans) into flows.jsonl")
    parser.add_argument("--max-sessions", type=int, default=None,
                        metavar="N",
                        help="hard cap on tracked connections; the "
                             "least-recently-active one is evicted "
                             "(its connection_state_remove still fires) "
                             "to stay under it")
    parser.add_argument("--session-ttl", type=float, default=None,
                        metavar="SECONDS",
                        help="expire connections idle for SECONDS of "
                             "network time (final-flush events still "
                             "delivered)")
    parser.add_argument("--parallel", action="store_true",
                        help="flow-parallel pipeline: hash connections "
                             "to vthreads, analyze on worker lanes, "
                             "merge the logs deterministically")
    parser.add_argument("--workers", type=int, default=4, metavar="N",
                        help="parallel worker count (default 4)")
    parser.add_argument("--vthreads", type=int, default=None, metavar="M",
                        help="virtual thread supply (default 4*workers)")
    parser.add_argument("--backend",
                        choices=["vthread", "threaded", "process", "pool"],
                        default=None,
                        help="parallel drive mode: deterministic vthread "
                             "scheduler, real threads, one process per "
                             "worker, or the persistent shared-memory "
                             "worker pool (default: pool on multi-core, "
                             "else process)")
    parser.add_argument("--start-method", choices=["fork", "spawn"],
                        default=None,
                        help="multiprocessing start method for the "
                             "process/pool backends (default: fork "
                             "where available)")
    add_service_args(parser)
    # run_host_service reads the full shared namespace; bro has no
    # reassembly memory budget, so pin its slot to None.
    parser.set_defaults(memory_budget=None)
    args = parser.parse_args(argv)

    scripts = None
    if args.scripts:
        scripts = []
        for name in args.scripts:
            if name in _BUNDLED:
                scripts.append(_BUNDLED[name])
            else:
                with open(name) as stream:
                    scripts.append(stream.read())

    if args.serve:
        def make_app(ns, services):
            return Bro(
                scripts=scripts,
                parsers=ns.parsers,
                scripts_engine="hilti" if ns.compile_scripts else "interp",
                opt_level=ns.opt_level,
                fault_injector=services.faults,
                watchdog_budget=services.watchdog_budget,
                telemetry=services.telemetry,
                max_sessions=services.max_sessions,
                session_ttl=services.session_ttl,
            )

        def make_spec(ns):
            return _make_spec(ns, scripts)

        return run_host_service(args, "bro", make_app, make_spec)

    if args.parallel:
        if args.inject:
            raise SystemExit(
                "bro: --inject is sequential-only (the injector's "
                "per-site random streams diverge across lanes)")
        if args.max_sessions is not None or args.session_ttl is not None:
            raise SystemExit(
                "bro: session bounds (--max-sessions/--session-ttl) are "
                "sequential-only (a global LRU diverges across lanes)")
        bro = ParallelBro(
            scripts=scripts,
            parsers=args.parsers,
            scripts_engine="hilti" if args.compile_scripts else "interp",
            opt_level=args.opt_level,
            workers=args.workers,
            vthreads=args.vthreads,
            backend=args.backend,
            start_method=args.start_method,
            watchdog_budget=args.watchdog,
            telemetry=Telemetry(metrics=args.metrics,
                                trace=args.trace_flows),
        )
        stats = bro.run_pcap(args.read, tolerant=args.tolerant_pcap)
        bro.save_logs(args.logdir)
        written = {
            name: count
            for name, count in bro.log_writes().items()
            if count
        }
    else:
        bro = Bro(
            scripts=scripts,
            parsers=args.parsers,
            scripts_engine="hilti" if args.compile_scripts else "interp",
            opt_level=args.opt_level,
            fault_injector=parse_injections(args.inject, args.fault_seed,
                                            prog="bro"),
            watchdog_budget=args.watchdog,
            telemetry=Telemetry(metrics=args.metrics,
                                trace=args.trace_flows),
            max_sessions=args.max_sessions,
            session_ttl=args.session_ttl,
        )
        interrupted = False
        previous = _install_interrupt_handler()
        try:
            stats = bro.run_pcap(args.read, tolerant=args.tolerant_pcap)
        except KeyboardInterrupt:
            # Drain instead of discarding the partial run: finalize the
            # open connections, then fall through to the normal log and
            # telemetry writers below.
            interrupted = True
            try:
                stats = bro.on_end()
            except Exception:
                stats = dict(bro.stats) if bro.stats else {
                    "packets": bro.packets, "events": 0,
                }
        finally:
            _restore_interrupt_handler(previous)
        bro.core.logs.save(args.logdir)
        written = {
            name: stream.writes
            for name, stream in bro.core.logs.streams.items()
            if stream.writes
        }
        if interrupted:
            print(f"bro: interrupted — partial run drained "
                  f"({stats.get('packets', 0)} packets)")
            print(f"processed {stats.get('packets', 0)} packets, "
                  f"{stats.get('events', 0)} events")
            for name, count in sorted(written.items()):
                print(f"  {args.logdir}/{name}.log: {count} entries")
            try:
                write_flowrecords_jsonl(
                    os.path.join(args.logdir, "flow_records.jsonl"),
                    "bro", bro.flow_record_lines())
            except Exception:
                pass
            if args.metrics or args.trace_flows:
                try:
                    for path in bro.write_telemetry(args.logdir):
                        print(f"  wrote {path}")
                except Exception as error:
                    print(f"  telemetry flush incomplete: {error}")
            return EXIT_INTERRUPTED
    print(f"processed {stats['packets']} packets, "
          f"{stats['events']} events")
    if args.parallel:
        print(f"  parallel: {stats['lanes']} lanes on "
              f"{stats['workers']} {stats['backend']} workers "
              f"({stats['vthreads']} vthreads)")
    for name, count in sorted(written.items()):
        print(f"  {args.logdir}/{name}.log: {count} entries")
    record_lines = bro.flow_record_lines()
    records_path = write_flowrecords_jsonl(
        os.path.join(args.logdir, "flow_records.jsonl"), "bro",
        record_lines)
    print(f"  {records_path}: {len(record_lines)} flow records")
    if args.stats:
        for key in ("parsing_ns", "script_ns", "glue_ns", "other_ns"):
            print(f"  {key[:-3]:>8}: {stats[key] / 1e6:10.2f} ms")
    if args.metrics or args.trace_flows:
        for path in bro.write_telemetry(args.logdir):
            print(f"  wrote {path}")
    if args.cpu_breakdown:
        path = os.path.join(args.logdir, "cpu_breakdown.json")
        os.makedirs(args.logdir, exist_ok=True)
        if args.parallel:
            import json

            report = bro.cpu_breakdown()
            with open(path, "w") as stream:
                json.dump(report, stream, indent=2, sort_keys=True)
                stream.write("\n")
        else:
            report = bro.write_cpu_breakdown(path)
        print(f"  wrote {path}")
        print("cpu breakdown:")
        for name in ("parsing", "script", "glue", "other"):
            entry = report["components"][name]
            print(f"  {name:>8}: {entry['share']:6.2f}% "
                  f"({entry['ns'] / 1e6:.2f} ms)")
    if args.health:
        print_health(stats["health"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
