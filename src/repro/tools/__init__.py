"""Command-line tools mirroring the paper's toolchain.

* ``python -m repro.tools.hiltic`` — compile and optionally JIT-execute
  HILTI source files (the paper's ``hiltic``).
* ``python -m repro.tools.hilti_build`` — compile sources and run the
  ``Main::run`` entry point (the paper's ``hilti-build && ./a.out``).
* ``python -m repro.tools.bro`` — ``bro -r trace.pcap`` in miniature:
  run the default analysis scripts over a pcap, writing the logs.
* ``python -m repro.tools.tracegen`` — write synthetic HTTP/DNS pcaps.
"""
