"""hilti-build — compile HILTI sources and run them (paper, Figure 3).

    # hilti-build hello.hlt -o a.out && ./a.out
    python -m repro.tools.hilti_build hello.hlt
"""

from __future__ import annotations

import argparse
import sys

from ..core.toolchain import hilti_build
from .hiltic import add_opt_level_flags


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="hilti-build",
        description="Build a HILTI executable and run it",
    )
    parser.add_argument("sources", nargs="+", help="HILTI source files")
    add_opt_level_flags(parser)
    parser.add_argument("args", nargs="*", default=[],
                        help="arguments for Main::run")
    options = parser.parse_args(argv)
    sources = []
    for path in options.sources:
        with open(path) as stream:
            sources.append(stream.read())
    executable = hilti_build(sources, opt_level=options.opt_level)
    executable.run()
    return 0


if __name__ == "__main__":
    sys.exit(main())
