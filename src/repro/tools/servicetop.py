"""``servicetop`` — a top-style live console for a running service.

::

    python -m repro.tools.servicetop logs/service.json
    python -m repro.tools.servicetop http://127.0.0.1:8080 --once --plain

Polls the service's HTTP control surface (``/stats`` and
``/metrics/history``) and renders, per refresh: the conservation
totals, the rolling pps windows, a throughput sparkline derived from
the time-series history, and one row per lane — liveness, processed,
queue depth, shed/lost/crash/restart counters, breaker state.

The target argument is any of: a ``service.json`` discovery file (as
the service writes while running), the logdir containing one, or the
service's base URL directly.  ``--once`` renders a single frame and
exits (CI mode); ``--plain`` suppresses the ANSI screen-clear and
cursor control so the output is pipeline-friendly.  Pure stdlib.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

__all__ = ["main", "render_frame", "resolve_target"]

#: Characters of the throughput sparkline, lowest to highest.
_SPARK = " .:-=+*#%@"


def resolve_target(target: str) -> str:
    """Turn the CLI target into the service's base URL.

    URLs pass through; a directory resolves to its ``service.json``;
    a file is read as the discovery document (``repro-service/1``) and
    its ``http`` entry names the endpoint."""
    if target.startswith(("http://", "https://")):
        return target.rstrip("/")
    path = target
    if os.path.isdir(path):
        path = os.path.join(path, "service.json")
    try:
        with open(path) as stream:
            doc = json.load(stream)
    except OSError as error:
        raise SystemExit(
            f"servicetop: cannot read {path}: {error} — is the service "
            "running? (service.json exists only while it is)")
    except ValueError as error:
        raise SystemExit(f"servicetop: {path} is not JSON: {error}")
    http = doc.get("http")
    if not http:
        raise SystemExit(
            f"servicetop: {path} reports no HTTP endpoint "
            "(service started with --http-port -1?)")
    return f"http://{http['host']}:{http['port']}"


def _fetch_json(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read())


def _sparkline(values: List[float], width: int = 30) -> str:
    """Map the last *width* values onto the spark character ramp."""
    values = values[-width:]
    if not values:
        return ""
    top = max(values)
    if top <= 0:
        return _SPARK[0] * len(values)
    scale = len(_SPARK) - 1
    return "".join(
        _SPARK[min(scale, int(round(value / top * scale)))]
        for value in values)


def _history_deltas(history: Dict, name: str) -> List[float]:
    """Per-sample deltas of one unlabeled cumulative series."""
    out: List[float] = []
    for sample in history.get("samples", []):
        for entry in sample.get("series", []):
            if entry.get("name") == name and not entry.get("labels"):
                out.append(float(entry.get("delta", 0)))
                break
    return out


def render_frame(stats: Dict, history: Optional[Dict] = None) -> str:
    """One console frame from a ``/stats`` report (plus, optionally,
    a ``/metrics/history`` document for the sparkline)."""
    totals = stats.get("totals", {})
    sessions = stats.get("sessions", {})
    lines: List[str] = []
    lines.append(
        f"service {stats.get('app', '?')} — "
        f"up {stats.get('uptime_seconds', 0):.1f}s, "
        f"{stats.get('transport', '?')} lanes, "
        f"overload={stats.get('overload', '?')}")
    lines.append(
        "totals: "
        f"ingested {int(totals.get('packets_ingested', 0))}  "
        f"processed {int(totals.get('packets_processed', 0))}  "
        f"shed {int(totals.get('packets_shed', 0))}  "
        f"lost {int(totals.get('packets_lost', 0))}  "
        f"dropped {int(totals.get('packets_dropped', 0))}  "
        f"sessions {int(sessions.get('open', 0))}")
    windows = stats.get("windows", {})
    if windows:
        parts = []
        for window in sorted(windows, key=lambda w: float(w[:-1])):
            pps = windows[window].get("packets_processed")
            if pps is not None:
                parts.append(f"{window} {pps['per_second']:.1f} pps")
        if parts:
            lines.append("rates:  " + "   ".join(parts))
    if history:
        deltas = _history_deltas(history, "service.packets_processed")
        if deltas:
            lines.append(f"trend:  [{_sparkline(deltas)}] "
                         f"({history.get('count', 0)} samples)")
    lines.append("")
    lines.append(f"{'lane':>4} {'alive':>5} {'processed':>10} "
                 f"{'queue':>6} {'shed':>6} {'lost':>6} {'crash':>6} "
                 f"{'restart':>7} {'breaker':>8}")
    for lane in stats.get("lanes", []):
        breaker = lane.get("breaker", {})
        state = ("FAILED" if lane.get("failed")
                 else "open" if breaker.get("tripped") else "ok")
        lines.append(
            f"{lane.get('lane', '?'):>4} "
            f"{('yes' if lane.get('alive') else 'no'):>5} "
            f"{lane.get('processed', 0):>10} "
            f"{lane.get('queue_depth', 0):>6} "
            f"{lane.get('queue_shed', 0):>6} "
            f"{lane.get('packets_lost', 0):>6} "
            f"{lane.get('crashes', 0):>6} "
            f"{lane.get('restarts', 0):>7} "
            f"{state:>8}")
        error = lane.get("last_error")
        if error:
            lines.append(f"     ! {error}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="servicetop",
        description="live top-style console for a running host service")
    parser.add_argument("target", nargs="?", default="logs",
                        help="service.json path, its logdir, or the "
                             "service base URL (default: logs/)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh period in seconds (default 2)")
    parser.add_argument("--window", type=float, default=60.0,
                        help="history window for the trend line "
                             "(seconds, default 60)")
    parser.add_argument("--once", action="store_true",
                        help="render one frame and exit (CI mode)")
    parser.add_argument("--plain", action="store_true",
                        help="no ANSI clear/cursor control")
    args = parser.parse_args(argv)

    base = resolve_target(args.target)
    while True:
        try:
            stats = _fetch_json(f"{base}/stats")
        except (urllib.error.URLError, OSError) as error:
            print(f"servicetop: {base}/stats unreachable: {error}",
                  file=sys.stderr)
            return 1
        try:
            history = _fetch_json(
                f"{base}/metrics/history?window={args.window:g}")
        except (urllib.error.URLError, OSError):
            history = None  # older service or endpoint disabled
        frame = render_frame(stats, history)
        if not args.plain:
            sys.stdout.write("\x1b[2J\x1b[H")
        sys.stdout.write(frame)
        sys.stdout.flush()
        if args.once:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    sys.exit(main())
