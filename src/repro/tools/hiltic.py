"""hiltic — the HILTI compiler driver (paper, Figure 2/3).

Usage::

    python -m repro.tools.hiltic prog.hlt [more.hlt ...] [options]

Without ``--run``, parses / verifies / optimizes and reports; with
``--run``, JIT-executes the program's entry point.  ``--print-ir`` dumps
the linked module inventory, ``--profile`` inserts function-granularity
instrumentation and prints the profiler report after the run.
"""

from __future__ import annotations

import argparse
import sys

from ..core.optimize import DEFAULT_OPT_LEVEL, OPT_LEVELS
from ..core.toolchain import hiltic

_LEVEL_HELP = {
    0: "disable HILTI-level optimizations",
    1: "enable the IR pass pipeline",
    2: "additionally inline, specialize, and form superblock traces",
}


def add_opt_level_flags(parser: argparse.ArgumentParser) -> None:
    """Per-level ``-O<N>`` const flags, one per ``OPT_LEVELS`` entry."""
    for level in OPT_LEVELS:
        help_text = _LEVEL_HELP.get(level, f"optimization level {level}")
        if level == DEFAULT_OPT_LEVEL:
            help_text += " (default)"
        parser.add_argument(f"-O{level}", dest="opt_level",
                            action="store_const", const=level,
                            help=help_text)
    parser.set_defaults(opt_level=DEFAULT_OPT_LEVEL)


def build_argparser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hiltic", description="HILTI compiler")
    parser.add_argument("sources", nargs="+", help="HILTI source files")
    parser.add_argument("--run", action="store_true",
                        help="JIT-execute the entry point after compiling")
    parser.add_argument("--entry", default=None,
                        help="entry function (default Main::run)")
    parser.add_argument("--tier", choices=["compiled", "interpreted"],
                        default="compiled")
    add_opt_level_flags(parser)
    parser.add_argument("--profile", action="store_true",
                        help="insert function-granularity profiling")
    parser.add_argument("--profile-snapshots", type=float, default=0,
                        metavar="MS",
                        help="with --profile, record interval snapshots "
                             "of every profiler at least MS milliseconds "
                             "apart (paper §3.3 'regular intervals'); "
                             "dumped as #snapshot lines after the run")
    parser.add_argument("--print-ir", action="store_true",
                        help="print the linked program inventory")
    return parser


def main(argv=None) -> int:
    args = build_argparser().parse_args(argv)
    sources = []
    for path in args.sources:
        with open(path) as stream:
            sources.append(stream.read())
    program = hiltic(
        sources,
        opt_level=args.opt_level,
        entry=args.entry,
        tier=args.tier,
        profile=args.profile,
    )
    linked = program.linked
    if args.print_ir:
        print(f"modules:   {', '.join(m.name for m in linked.modules)}")
        print(f"functions: {len(linked.functions)}")
        for name in sorted(linked.functions):
            print(f"  {name}")
        print(f"hooks:     {len(linked.hooks)}")
        print(f"globals:   {len(linked.global_layout)}")
        stats = getattr(program, "opt_stats", None)
        fired = {key: value for key, value in stats.as_dict().items()
                 if value} if stats else {}
        if fired:
            print("opt:       " + ", ".join(
                f"{key}={value}" for key, value in sorted(fired.items())))
    if args.run:
        ctx = program.make_context()
        if args.profile_snapshots:
            ctx.profilers.default_snapshot_every_ns = int(
                args.profile_snapshots * 1e6
            )
        result = program.run(ctx=ctx)
        if result is not None:
            print(result)
        if args.profile:
            ctx.profilers.dump(sys.stdout)
    elif not args.print_ir:
        print(
            f"compiled {len(linked.functions)} functions, "
            f"{len(linked.hooks)} hooks ({args.tier} tier)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
