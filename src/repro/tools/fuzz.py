"""fuzz — the coverage-guided differential oracle for the optimizer.

The ``-O2`` tier rewrites programs aggressively (inlining,
specialization, superblock traces); the reference interpreter always
executes the *unoptimized* IR.  That pairing is a differential oracle:
for any program, every compiled level must produce byte-identical
observable behaviour to the interpreter.  This tool generates
random-but-well-typed programs and drives the oracle at scale::

    python -m repro.tools.fuzz --seed 1 --count 500
    python -m repro.tools.fuzz --replay tests/core/fuzz_corpus
    python -m repro.tools.fuzz --seed 7 --count 200 \
        --emit-corpus tests/core/fuzz_corpus

Four lanes, each a different program source:

* ``module`` — random HILTI modules built through ``core.builder``:
  integer dataflow, branches, bounded loops, switches, lexical
  fallthrough blocks, div/mod traps, and calls into small helper
  functions shaped to tickle the inliner and specializer.  Oracle:
  interpreter vs compiled ``-O0``/``-O1``/``-O2`` outcome (value or
  exception type), plus the ``ctx.instr_count`` parity invariant
  between the interpreter and ``-O0``.
* ``filter`` — random BPF expressions over well-formed and mutated
  frames; the classic VM, the interpreted tier, and every compiled
  level must agree on each accept/reject decision.
* ``script`` — random mini-Bro functions run on the tree-walking
  script interpreter and the HILTI script compiler at every level.
* ``pac`` — malformed HTTP byte streams through the BinPAC++-generated
  parser compiled at every level; unit events, parse errors, and
  completion state must match across levels.

Coverage guidance: each module case's ``-O2`` ``OptStats`` counters
(which passes actually fired) plus its structural features form a
signature; cases with novel signatures enter a pool that seeds further
mutations, steering generation toward optimizer paths not yet hit.
Diverging cases are minimized greedily (drop statements, unwrap
control flow, shrink constants) before being reported or written to
the corpus, so a failure lands as a small reproducible ``.hlt`` file.
"""

from __future__ import annotations

import argparse
import copy
import json
import random
import re
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import types as ht
from ..core.builder import FunctionBuilder, ModuleBuilder
from ..core.optimize import OPT_LEVELS
from ..core.parser import parse_module
from ..core.printer import print_module
from ..core.toolchain import hiltic
from ..runtime.exceptions import HiltiError

__all__ = [
    "Fuzzer",
    "build_module",
    "gen_module_spec",
    "minimize_module_case",
    "module_case_source",
    "mutate_module_spec",
    "run_corpus_text",
    "run_filter_case",
    "run_module_case",
    "run_script_case",
]

_N_VARS = 4
_ENTRY = "Main::f"

_BINOPS = ["int.add", "int.sub", "int.mul", "int.min", "int.max",
           "int.and", "int.or", "int.xor"]
_CMP_OPS = ["int.eq", "int.lt", "int.le", "int.gt", "int.ge"]
_DIV_OPS = ["int.div", "int.mod"]

# ---------------------------------------------------------------------------
# Module lane: spec -> IR
#
# A *spec* is a JSON-serializable description of one program: a list of
# helper functions plus a statement tree for ``Main::f``.  Everything
# the oracle runs is rebuilt from the spec (the optimizer mutates
# modules in place), and the corpus stores specs rendered to textual
# HILTI, so a case survives minimization, serialization, and replay.
#
# Operands are ``["v", i]`` (variable ``v<i>``) or ``["c", n]`` (an
# int<64> constant).  Statements:
#
#   ["op", mnemonic, target, a, b]          pure binary op
#   ["div", mnemonic, target, a, b]         int.div / int.mod (may trap)
#   ["if", cmp, a, b, then, else]           comparison + branch
#   ["loop", n, body]                       counted loop, 0..6 trips
#   ["switch", a, [[const, stmts]...], default_stmts]
#   ["fallthrough", stmts]                  stmts, then a lexical
#                                           fallthrough into a fresh block
#   ["call", helper_name, [operand...], target]
#
# Helpers are int<64> -> int<64> functions in one of four shapes:
# "leaf" (single pure block — an inline candidate), "init" (leaf plus
# an initialized local — exercises init seeding at the splice),
# "branchy" (two-armed — not inlinable, but specializable), and "big"
# (over the inline size cap).


def _operand(fb: FunctionBuilder, spec, names: Sequence[str]):
    kind, value = spec
    if kind == "v":
        return fb.var(names[value % len(names)])
    return fb.const(ht.INT64, int(value))


def _gen_operand(rng: random.Random, n_vars: int, lo=-50, hi=50):
    if rng.random() < 0.6:
        return ["v", rng.randrange(n_vars)]
    return ["c", rng.randint(lo, hi)]


def _gen_ops(rng: random.Random, n_vars: int, count: int) -> List:
    return [["op", rng.choice(_BINOPS), rng.randrange(n_vars),
             _gen_operand(rng, n_vars), _gen_operand(rng, n_vars)]
            for __ in range(count)]


def _gen_helper(rng: random.Random, index: int) -> Dict:
    kind = rng.choice(["leaf", "leaf", "init", "branchy", "big"])
    nparams = rng.randint(1, 3)
    n_vars = nparams + (1 if kind == "init" else 0)
    sizes = {"leaf": (1, 6), "init": (1, 5), "branchy": (1, 4),
             "big": (18, 22)}
    ops = _gen_ops(rng, n_vars, rng.randint(*sizes[kind]))
    helper = {
        "name": f"h{index}",
        "kind": kind,
        "params": nparams,
        "ops": ops,
        "ret": _gen_operand(rng, n_vars),
    }
    if kind == "init":
        helper["init"] = rng.randint(-20, 20)
    if kind == "branchy":
        helper["cmp"] = [rng.choice(_CMP_OPS),
                         _gen_operand(rng, nparams),
                         _gen_operand(rng, nparams)]
        helper["else_ops"] = _gen_ops(rng, n_vars,
                                      rng.randint(*sizes[kind]))
    return helper


def _gen_stmt(rng: random.Random, helpers: Sequence[Dict],
              depth: int) -> List:
    roll = rng.random()
    if depth >= 2 or roll < 0.45:
        return ["op", rng.choice(_BINOPS), rng.randrange(_N_VARS),
                _gen_operand(rng, _N_VARS), _gen_operand(rng, _N_VARS)]
    if roll < 0.52:
        return ["div", rng.choice(_DIV_OPS), rng.randrange(_N_VARS),
                _gen_operand(rng, _N_VARS), _gen_operand(rng, _N_VARS)]
    if roll < 0.67:
        return ["if", rng.choice(_CMP_OPS),
                _gen_operand(rng, _N_VARS), _gen_operand(rng, _N_VARS),
                _gen_stmts(rng, helpers, depth + 1, 1, 3),
                _gen_stmts(rng, helpers, depth + 1, 0, 3)]
    if roll < 0.78:
        return ["loop", rng.randint(0, 6),
                _gen_stmts(rng, helpers, depth + 1, 1, 3)]
    if roll < 0.85:
        cases, seen = [], set()
        for __ in range(rng.randint(1, 3)):
            const = rng.randint(-6, 6)
            if const in seen:
                continue
            seen.add(const)
            cases.append([const, _gen_stmts(rng, helpers, depth + 1, 1, 2)])
        return ["switch", _gen_operand(rng, _N_VARS, -6, 6), cases,
                _gen_stmts(rng, helpers, depth + 1, 0, 2)]
    if roll < 0.92 or not helpers:
        return ["fallthrough", _gen_stmts(rng, helpers, depth + 1, 1, 2)]
    helper = rng.choice(helpers)
    # Constant arguments (sometimes all of them) feed the specializer.
    arguments = [
        ["c", rng.randint(-9, 9)] if rng.random() < 0.5
        else _gen_operand(rng, _N_VARS)
        for __ in range(helper["params"])
    ]
    return ["call", helper["name"], arguments, rng.randrange(_N_VARS)]


def _gen_stmts(rng: random.Random, helpers: Sequence[Dict], depth: int,
               lo: int, hi: int) -> List:
    return [_gen_stmt(rng, helpers, depth)
            for __ in range(rng.randint(lo, hi))]


def gen_module_spec(rng: random.Random) -> Dict:
    helpers = [_gen_helper(rng, i) for i in range(rng.randint(0, 3))]
    return {
        "helpers": helpers,
        "body": _gen_stmts(rng, helpers, 0, 2, 7),
    }


def _build_helper(mb: ModuleBuilder, helper: Dict) -> None:
    nparams = helper["params"]
    names = [f"p{i}" for i in range(nparams)]
    fb = mb.function(helper["name"],
                     [(name, ht.INT64) for name in names], ht.INT64)
    if "init" in helper:
        fb.local("acc", ht.INT64, helper["init"])
        names.append("acc")

    def emit_ops(ops):
        for __, mnemonic, target, a, b in ops:
            fb.emit(mnemonic, _operand(fb, a, names),
                    _operand(fb, b, names),
                    target=fb.var(names[target % len(names)]))

    if helper["kind"] == "branchy":
        cmp_op, a, b = helper["cmp"]
        cond = fb.temp(ht.BOOL, "c")
        fb.emit(cmp_op, _operand(fb, a, names), _operand(fb, b, names),
                target=cond)
        fb.branch(cond, "then", "orelse")
        fb.block("then")
        emit_ops(helper["ops"])
        fb.jump("done")
        fb.block("orelse")
        emit_ops(helper["else_ops"])
        fb.jump("done")
        fb.block("done")
    else:
        emit_ops(helper["ops"])
    fb.ret(_operand(fb, helper["ret"], names))


def _emit_stmts(fb: FunctionBuilder, stmts: Sequence, names: List[str],
                helpers: Dict[str, Dict]) -> None:
    for stmt in stmts:
        tag = stmt[0]
        if tag == "op" or tag == "div":
            __, mnemonic, target, a, b = stmt
            fb.emit(mnemonic, _operand(fb, a, names),
                    _operand(fb, b, names),
                    target=fb.var(names[target % len(names)]))
        elif tag == "if":
            __, cmp_op, a, b, then_stmts, else_stmts = stmt
            cond = fb.temp(ht.BOOL, "c")
            fb.emit(cmp_op, _operand(fb, a, names),
                    _operand(fb, b, names), target=cond)
            then_l, else_l, join = (fb.fresh_label("t"),
                                    fb.fresh_label("e"),
                                    fb.fresh_label("j"))
            fb.branch(cond, then_l, else_l)
            fb.block(then_l)
            _emit_stmts(fb, then_stmts, names, helpers)
            fb.jump(join)
            fb.block(else_l)
            _emit_stmts(fb, else_stmts, names, helpers)
            fb.jump(join)
            fb.block(join)
        elif tag == "loop":
            __, trips, body = stmt
            counter = fb.temp(ht.INT64, "i")
            more = fb.temp(ht.BOOL, "m")
            head, body_l, out = (fb.fresh_label("h"),
                                 fb.fresh_label("b"),
                                 fb.fresh_label("o"))
            fb.emit("assign", fb.const(ht.INT64, 0), target=counter)
            fb.jump(head)
            fb.block(head)
            fb.emit("int.lt", counter, fb.const(ht.INT64, int(trips)),
                    target=more)
            fb.branch(more, body_l, out)
            fb.block(body_l)
            _emit_stmts(fb, body, names, helpers)
            fb.emit("int.incr", counter, target=counter)
            fb.jump(head)
            fb.block(out)
        elif tag == "switch":
            __, scrutinee, cases, default_stmts = stmt
            join = fb.fresh_label("j")
            default_l = fb.fresh_label("d")
            labels = [fb.fresh_label("s") for __ in cases]
            case_ops = [
                fb.args(fb.const(ht.INT64, int(const)), fb.label(label))
                for (const, __), label in zip(cases, labels)
            ]
            fb.emit("switch", _operand(fb, scrutinee, names),
                    fb.label(default_l), *case_ops)
            for (__, case_stmts), label in zip(cases, labels):
                fb.block(label)
                _emit_stmts(fb, case_stmts, names, helpers)
                fb.jump(join)
            fb.block(default_l)
            _emit_stmts(fb, default_stmts, names, helpers)
            fb.jump(join)
            fb.block(join)
        elif tag == "fallthrough":
            __, body = stmt
            _emit_stmts(fb, body, names, helpers)
            # No terminator: execution falls through lexically into the
            # next block — the shape merge_blocks' off-the-end repair
            # must keep honest in value-returning functions.
            fb.block(fb.fresh_label("ft"))
        elif tag == "call":
            __, name, arguments, target = stmt
            helper = helpers.get(name)
            if helper is None:
                continue
            ops = [_operand(fb, a, names)
                   for a in arguments[:helper["params"]]]
            while len(ops) < helper["params"]:
                ops.append(fb.const(ht.INT64, 0))
            fb.call(f"Main::{name}", ops,
                    target=fb.var(names[target % len(names)]))
        else:  # pragma: no cover - spec invariant
            raise ValueError(f"unknown fuzz statement {tag!r}")


def build_module(spec: Dict):
    """Build the spec's module fresh (callers compile it destructively)."""
    mb = ModuleBuilder("Main")
    helpers = {helper["name"]: helper for helper in spec["helpers"]}
    for helper in spec["helpers"]:
        _build_helper(mb, helper)
    names = [f"v{i}" for i in range(_N_VARS)]
    fb = mb.function("f", [(name, ht.INT64) for name in names], ht.INT64)
    _emit_stmts(fb, spec["body"], names, helpers)
    total = fb.temp(ht.INT64, "total")
    fb.emit("assign", fb.const(ht.INT64, 0), target=total)
    for name in names:
        fb.emit("int.add", total, fb.var(name), target=total)
    fb.ret(total)
    return mb.finish()


def mutate_module_spec(rng: random.Random, spec: Dict) -> Dict:
    """One random structural edit, for coverage-pool evolution."""
    mutant = copy.deepcopy(spec)
    body = mutant["body"]
    roll = rng.random()
    if roll < 0.3 and body:
        # Tweak one constant somewhere in the tree.
        def tweak(node):
            if isinstance(node, list):
                if len(node) == 2 and node[0] == "c" \
                        and isinstance(node[1], int):
                    node[1] = rng.randint(-50, 50)
                    return True
                for child in rng.sample(node, len(node)):
                    if tweak(child):
                        return True
            return False
        tweak(body)
    elif roll < 0.5 and len(body) > 1:
        body.pop(rng.randrange(len(body)))
    elif roll < 0.7 and body:
        body.insert(rng.randrange(len(body) + 1),
                    copy.deepcopy(rng.choice(body)))
    else:
        body.append(_gen_stmt(rng, mutant["helpers"], 0))
    return mutant


# ---------------------------------------------------------------------------
# Module lane: the oracle


def _outcome(call):
    try:
        return ("ok", call())
    except HiltiError as error:
        return ("raise", error.except_type.type_name)


_STMT_TAGS = ("op", "div", "if", "loop", "switch", "fallthrough", "call")


def _walk_stmts(node):
    """Yield every statement in a nested spec fragment."""
    if not isinstance(node, list):
        return
    if node and isinstance(node[0], str) and node[0] in _STMT_TAGS:
        yield node
    for child in node:
        yield from _walk_stmts(child)


def _spec_features(spec: Dict) -> List[str]:
    tags = {stmt[0] for stmt in _walk_stmts(spec["body"])}
    tags.update(helper["kind"] for helper in spec["helpers"])
    return sorted(tags)


def run_module_case(spec: Dict, args: Sequence[int],
                    levels: Sequence[int] = OPT_LEVELS) -> Dict:
    """Run one spec through the oracle; returns outcomes + divergences."""
    arguments = list(args)
    interp = hiltic([build_module(spec)], tier="interpreted",
                    optimize=False)
    interp_ctx = interp.make_context()
    expected = _outcome(
        lambda: interp.call(interp_ctx, _ENTRY, arguments))
    result = {
        "expected": expected,
        "levels": {},
        "divergences": [],
        "signature": [],
    }
    for level in levels:
        program = hiltic([build_module(spec)], opt_level=level)
        ctx = program.make_context()
        got = _outcome(lambda: program.call(ctx, _ENTRY, arguments))
        result["levels"][level] = got
        if got != expected:
            result["divergences"].append(
                f"-O{level}: {got!r} != interp {expected!r}")
        if level == 0 and ctx.instr_count != interp_ctx.instr_count:
            result["divergences"].append(
                f"-O0 instr_count {ctx.instr_count} != "
                f"interp {interp_ctx.instr_count}")
        if level == max(levels):
            stats = getattr(program, "opt_stats", None)
            fired = sorted(
                key for key, value in (stats.as_dict() if stats else
                                       {}).items() if value)
            result["signature"] = fired + _spec_features(spec)
    return result


def minimize_module_case(spec: Dict, args: Sequence[int],
                         levels: Sequence[int] = OPT_LEVELS,
                         budget: int = 200) -> Tuple[Dict, List[int]]:
    """Greedy shrink: keep any edit that preserves a divergence."""
    runs = [0]

    def diverges(candidate) -> bool:
        if runs[0] >= budget:
            return False
        runs[0] += 1
        try:
            return bool(run_module_case(candidate, args,
                                        levels)["divergences"])
        except Exception:
            # A candidate the toolchain rejects is not a reproduction.
            return False

    if not diverges(spec):
        return copy.deepcopy(spec), list(args)
    current = copy.deepcopy(spec)

    def _stmt_lists(stmt):
        """The nested statement lists inside one statement."""
        return [child for child in stmt[1:]
                if isinstance(child, list) and all(
                    isinstance(entry, list) and entry
                    and isinstance(entry[0], str)
                    for entry in child)]

    def shrink_list(stmts) -> bool:
        changed = False
        index = 0
        while index < len(stmts):
            trial = stmts[index]
            del stmts[index]
            if diverges(current):
                changed = True
                continue
            stmts.insert(index, trial)
            # Unwrap control flow: replace the statement with one of
            # its nested statement lists.
            unwrapped = False
            for child in _stmt_lists(trial):
                stmts[index:index + 1] = copy.deepcopy(child)
                if diverges(current):
                    changed = unwrapped = True
                    break
                stmts[index:index + len(child)] = [trial]
            if not unwrapped:
                # Recurse into nested lists in place (switch cases are
                # [const, stmts] pairs — descend through them too).
                for child in trial[1:]:
                    if isinstance(child, list):
                        for nested in _stmt_lists(["", child]):
                            changed |= shrink_list(nested)
                        for entry in child:
                            if isinstance(entry, list) and len(entry) == 2 \
                                    and isinstance(entry[1], list):
                                for nested in _stmt_lists(["", entry[1]]):
                                    changed |= shrink_list(nested)
                index += 1
            # After a successful unwrap, revisit the same index.
        return changed

    while shrink_list(current["body"]) and runs[0] < budget:
        pass
    # Drop helpers the (shrunken) body no longer calls.
    called = {stmt[1] for stmt in _walk_stmts(current["body"])
              if stmt[0] == "call"}
    trimmed = [helper for helper in current["helpers"]
               if helper["name"] in called]
    if len(trimmed) < len(current["helpers"]):
        trial = dict(current, helpers=trimmed)
        if diverges(trial):
            current = trial
    return current, list(args)


# ---------------------------------------------------------------------------
# Corpus serialization: spec -> .hlt text with replay headers


def module_case_source(spec: Dict, args: Sequence[int],
                       note: str = "") -> str:
    text = print_module(build_module(spec))
    header = [
        "# fuzz corpus case — repro.tools.fuzz (module lane)",
        f"# entry: {_ENTRY}",
        f"# args: {json.dumps(list(args))}",
    ]
    if note:
        header.append(f"# note: {note}")
    return "\n".join(header) + "\n\n" + text


def run_corpus_text(text: str,
                    levels: Sequence[int] = OPT_LEVELS) -> Dict:
    """Replay one corpus file's text through every tier."""
    match = re.search(r"#\s*args:\s*(\[[^\n]*\])", text)
    arguments = json.loads(match.group(1)) if match else [0] * _N_VARS
    match = re.search(r"#\s*entry:\s*(\S+)", text)
    entry = match.group(1) if match else _ENTRY

    interp = hiltic([parse_module(text)], tier="interpreted",
                    optimize=False)
    interp_ctx = interp.make_context()
    expected = _outcome(lambda: interp.call(interp_ctx, entry, arguments))
    divergences = []
    for level in levels:
        program = hiltic([parse_module(text)], opt_level=level)
        ctx = program.make_context()
        got = _outcome(lambda: program.call(ctx, entry, arguments))
        if got != expected:
            divergences.append(
                f"-O{level}: {got!r} != interp {expected!r}")
        if level == 0 and ctx.instr_count != interp_ctx.instr_count:
            divergences.append(
                f"-O0 instr_count {ctx.instr_count} != "
                f"interp {interp_ctx.instr_count}")
    return {"expected": expected, "divergences": divergences}


# ---------------------------------------------------------------------------
# Filter lane


_FILTER_PORTS = (21, 25, 53, 80, 443, 8080)
_FILTER_DIRS = ("", "src ", "dst ")


def gen_filter_text(rng: random.Random, depth: int = 0) -> str:
    if depth >= 3 or rng.random() < 0.45:
        roll = rng.random()
        if roll < 0.3:
            return rng.choice(("ip", "tcp", "udp"))
        if roll < 0.55:
            return (f"{rng.choice(_FILTER_DIRS)}port "
                    f"{rng.choice(_FILTER_PORTS)}")
        if roll < 0.8:
            return (f"{rng.choice(_FILTER_DIRS)}host "
                    f"172.16.{rng.randrange(4)}.{rng.randrange(1, 30)}")
        return (f"{rng.choice(_FILTER_DIRS)}net "
                f"172.16.{rng.randrange(4)}.0/"
                f"{rng.choice((16, 24))}")
    roll = rng.random()
    if roll < 0.45:
        return (f"{gen_filter_text(rng, depth + 1)} and "
                f"{gen_filter_text(rng, depth + 1)}")
    if roll < 0.9:
        return (f"{gen_filter_text(rng, depth + 1)} or "
                f"{gen_filter_text(rng, depth + 1)}")
    return f"not {gen_filter_text(rng, depth + 1)}"


def _mutate_frame(rng: random.Random, frame: bytes) -> bytes:
    data = bytearray(frame)
    roll = rng.random()
    if roll < 0.4 and data:
        return bytes(data[:rng.randrange(len(data))])
    if roll < 0.8 and data:
        for __ in range(rng.randint(1, 4)):
            data[rng.randrange(len(data))] ^= 1 << rng.randrange(8)
        return bytes(data)
    return bytes(rng.randrange(256) for __ in range(rng.randint(0, 60)))


def _filter_frames(rng: random.Random, count: int = 24) -> List[bytes]:
    from ..net.tracegen import HttpTraceConfig, generate_http_trace

    trace = generate_http_trace(
        HttpTraceConfig(sessions=6, seed=rng.randrange(1 << 16)))
    frames = [frame for __, frame in trace][:count]
    frames.extend(_mutate_frame(rng, rng.choice(frames))
                  for __ in range(count // 2))
    return frames


def run_filter_case(filter_text: str, frames: Sequence[bytes],
                    levels: Sequence[int] = OPT_LEVELS) -> Dict:
    from ..apps.bpf import compile_to_hilti, compile_to_vm, parse_filter

    node = parse_filter(filter_text)
    decisions = {}
    vm = compile_to_vm(node)
    decisions["vm"] = bytes(
        1 if vm.run(frame) else 0 for frame in frames)
    interp = compile_to_hilti(node, tier="interpreted")
    decisions["interp"] = bytes(
        1 if interp(frame) else 0 for frame in frames)
    for level in levels:
        hilti_filter = compile_to_hilti(node, opt_level=level)
        decisions[f"O{level}"] = bytes(
            1 if hilti_filter(frame) else 0 for frame in frames)
    expected = decisions["interp"]
    divergences = [
        f"filter {filter_text!r}: {key} decisions differ from interp"
        for key, got in decisions.items() if got != expected
    ]
    return {"decisions": decisions, "divergences": divergences}


# ---------------------------------------------------------------------------
# Script lane


def _gen_script_expr(rng: random.Random, names: Sequence[str],
                     depth: int = 0) -> str:
    if depth >= 2 or rng.random() < 0.5:
        if rng.random() < 0.4:
            return rng.choice(names)
        return str(rng.randint(0, 20))
    left = _gen_script_expr(rng, names, depth + 1)
    right = _gen_script_expr(rng, names, depth + 1)
    return f"({left} {rng.choice('+*')} {right})"


def gen_script_case(rng: random.Random) -> Tuple[str, List[int]]:
    cond_op = rng.choice(("<", "<=", ">", ">=", "=="))
    ab = ("a", "b")
    abx = ("a", "b", "x")
    source = f"""
function g(n: count): count {{
    return {_gen_script_expr(rng, ("n",))};
}}

function f(a: count, b: count): count {{
    local x: count = {_gen_script_expr(rng, ab)};
    if ( a {cond_op} {rng.randint(0, 40)} ) {{
        x = x + g({_gen_script_expr(rng, ab)});
    }} else {{
        x = {_gen_script_expr(rng, abx)};
    }}
    return x + a + b;
}}

event bro_init() {{
}}
"""
    return source, [rng.randint(0, 50), rng.randint(0, 50)]


def run_script_case(source: str, args: Sequence[int],
                    levels: Sequence[int] = OPT_LEVELS) -> Dict:
    import io

    from ..apps.bro import Bro

    def call(**kwargs):
        bro = Bro(scripts=[source], print_stream=io.StringIO(), **kwargs)
        return bro.call_function("f", list(args))

    expected = call(scripts_engine="interp")
    divergences = []
    outcomes = {"interp": expected}
    for level in levels:
        got = call(scripts_engine="hilti", opt_level=level)
        outcomes[f"O{level}"] = got
        if got != expected:
            divergences.append(
                f"script -O{level}: {got!r} != interp {expected!r}")
    return {"outcomes": outcomes, "divergences": divergences}


# ---------------------------------------------------------------------------
# Pac lane: malformed HTTP through the generated parser at every level


_HTTP_BASE = (b"GET /index.html HTTP/1.1\r\n"
              b"Host: example.org\r\n"
              b"User-Agent: fuzz/1.0\r\n"
              b"Content-Length: 5\r\n"
              b"\r\n"
              b"hello")


def gen_http_input(rng: random.Random) -> bytes:
    data = bytearray(_HTTP_BASE)
    for __ in range(rng.randint(1, 4)):
        roll = rng.random()
        if roll < 0.3 and data:
            data = data[:rng.randrange(len(data))]
        elif roll < 0.5 and data:
            data[rng.randrange(len(data))] = rng.randrange(256)
        elif roll < 0.7 and len(data) > 4:
            start = rng.randrange(len(data) - 2)
            del data[start:start + rng.randint(1, 8)]
        elif roll < 0.9:
            start = rng.randrange(len(data) + 1)
            data[start:start] = bytes(
                rng.randrange(256) for __ in range(rng.randint(1, 8)))
        else:
            data += rng.choice((b"\r\n", b"GET ", b"\xff\xfe",
                                b"Content-Length: 99\r\n"))
    return bytes(data)


class _PacOracle:
    """HTTP parsers compiled once per level, fed per-case sessions."""

    def __init__(self, levels: Sequence[int] = OPT_LEVELS):
        from ..apps.binpac.app import _render_unit
        from ..apps.binpac.codegen import Parser
        from ..apps.binpac.glue import unit_done_glue
        from ..apps.binpac.grammars import http_grammar

        self.levels = tuple(levels)
        self.events: List[Tuple[str, str]] = []
        self.parsers = {}

        def on_event(name, event_args):
            self.events.append((name, _render_unit(name, event_args[0])))

        for level in self.levels:
            self.parsers[level] = Parser(
                http_grammar(),
                extra_modules=[unit_done_glue("HTTP",
                                              ["Request", "Reply"])],
                optimize=True,
                opt_level=level,
                on_event=on_event,
            )

    def run_case(self, rng: random.Random, payload: bytes) -> Dict:
        # Identical chunking at every level so incremental resume
        # points line up.
        cuts = sorted(rng.randrange(len(payload) + 1)
                      for __ in range(rng.randint(0, 3)))
        chunks, start = [], 0
        for cut in cuts + [len(payload)]:
            chunks.append(payload[start:cut])
            start = cut
        results = {}
        for level in self.levels:
            self.events = []
            parser = self.parsers[level]
            error = None
            session = parser.start("Requests")
            try:
                for chunk in chunks:
                    session.feed(chunk)
                if not session.finished:
                    session.done()
            except HiltiError as exc:
                error = exc.except_type.type_name
            results[level] = (tuple(self.events), error,
                              session.finished)
        expected = results[self.levels[0]]
        divergences = [
            f"pac -O{level}: {results[level]!r} != "
            f"-O{self.levels[0]} {expected!r}"
            for level in self.levels[1:] if results[level] != expected
        ]
        return {"results": results, "divergences": divergences}


# ---------------------------------------------------------------------------
# The fuzzing loop


class Fuzzer:
    """Seeded, coverage-guided differential fuzzing across all lanes."""

    def __init__(self, seed: int = 0, levels: Sequence[int] = OPT_LEVELS,
                 lanes: Sequence[str] = ("module", "filter", "script",
                                         "pac")):
        self.rng = random.Random(seed)
        self.levels = tuple(levels)
        self.lanes = tuple(lanes)
        self.pool: List[Dict] = []
        self.signatures = set()
        self.divergences: List[Dict] = []
        self.cases = {lane: 0 for lane in self.lanes}
        self.interesting: List[Tuple[Dict, List[int], str]] = []
        self._pac: Optional[_PacOracle] = None
        self._frames: Optional[List[bytes]] = None

    # Lane weights: the module lane is where the optimizer lives.
    _WEIGHTS = {"module": 6, "filter": 2, "script": 1, "pac": 1}

    def _pick_lane(self) -> str:
        weights = [self._WEIGHTS.get(lane, 1) for lane in self.lanes]
        return self.rng.choices(self.lanes, weights=weights, k=1)[0]

    def _module_case(self) -> Dict:
        rng = self.rng
        if self.pool and rng.random() < 0.5:
            spec = mutate_module_spec(rng, rng.choice(self.pool))
        else:
            spec = gen_module_spec(rng)
        args = [rng.randint(-100, 100) for __ in range(_N_VARS)]
        try:
            result = run_module_case(spec, args, self.levels)
        except Exception as error:
            # The generator only emits well-typed programs; anything the
            # toolchain rejects is itself a finding.
            return {"lane": "module", "spec": spec, "args": args,
                    "divergences": [f"toolchain error: {error!r}"]}
        signature = tuple(result["signature"])
        if signature and signature not in self.signatures:
            self.signatures.add(signature)
            self.pool.append(spec)
            self.interesting.append(
                (spec, args, ",".join(result["signature"])))
        return {"lane": "module", "spec": spec, "args": args,
                "divergences": result["divergences"]}

    def _filter_case(self) -> Dict:
        if self._frames is None:
            self._frames = _filter_frames(self.rng)
        text = gen_filter_text(self.rng)
        result = run_filter_case(text, self._frames, self.levels)
        return {"lane": "filter", "filter": text,
                "divergences": result["divergences"]}

    def _script_case(self) -> Dict:
        source, args = gen_script_case(self.rng)
        result = run_script_case(source, args, self.levels)
        return {"lane": "script", "source": source, "args": args,
                "divergences": result["divergences"]}

    def _pac_case(self) -> Dict:
        if self._pac is None:
            self._pac = _PacOracle(self.levels)
        payload = gen_http_input(self.rng)
        result = self._pac.run_case(self.rng, payload)
        return {"lane": "pac", "payload": payload.hex(),
                "divergences": result["divergences"]}

    def run_one(self) -> Dict:
        lane = self._pick_lane()
        case = {
            "module": self._module_case,
            "filter": self._filter_case,
            "script": self._script_case,
            "pac": self._pac_case,
        }[lane]()
        self.cases[lane] += 1
        if case["divergences"]:
            if lane == "module" and "spec" in case:
                spec, args = minimize_module_case(
                    case["spec"], case["args"], self.levels)
                case["minimized"] = module_case_source(
                    spec, args, note="; ".join(case["divergences"]))
            self.divergences.append(case)
        return case

    def run(self, count: int, max_seconds: float = 0,
            progress=None) -> Dict:
        started = time.monotonic()
        for index in range(count):
            if max_seconds and time.monotonic() - started > max_seconds:
                break
            self.run_one()
            if progress and (index + 1) % progress == 0:
                print(f"fuzz: {index + 1}/{count} cases, "
                      f"{len(self.signatures)} signatures, "
                      f"{len(self.divergences)} divergences",
                      file=sys.stderr)
        return self.summary()

    def summary(self) -> Dict:
        return {
            "cases": dict(self.cases),
            "total": sum(self.cases.values()),
            "signatures": len(self.signatures),
            "divergences": len(self.divergences),
        }

    # -- corpus -------------------------------------------------------------

    def emit_corpus(self, directory: str, limit: int = 8) -> List[str]:
        """Write the most interesting minimized module cases as .hlt."""
        import os

        os.makedirs(directory, exist_ok=True)
        written = []
        for index, (spec, args, note) in enumerate(
                self.interesting[:limit]):
            small, small_args = _shrink_interesting(spec, args,
                                                    self.levels)
            path = os.path.join(directory, f"case_{index:03d}.hlt")
            with open(path, "w") as stream:
                stream.write(module_case_source(small, small_args,
                                                note=note))
            written.append(path)
        return written


def _shrink_interesting(spec: Dict, args: Sequence[int],
                        levels: Sequence[int]) -> Tuple[Dict, List[int]]:
    """Shrink a (non-diverging) corpus case while keeping its coverage
    signature — smaller files, same optimizer paths exercised."""
    target = tuple(run_module_case(spec, args, levels)["signature"])
    current = copy.deepcopy(spec)

    def keeps_signature(candidate) -> bool:
        try:
            result = run_module_case(candidate, args, levels)
        except Exception:
            return False
        return tuple(result["signature"]) == target \
            and not result["divergences"]

    index = 0
    while index < len(current["body"]):
        trial = current["body"][index]
        del current["body"][index]
        if keeps_signature(current):
            continue
        current["body"].insert(index, trial)
        index += 1
    return current, list(args)


# ---------------------------------------------------------------------------
# CLI


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fuzz",
        description="coverage-guided differential fuzzing of the "
                    "optimizer tiers against the interpreter oracle")
    parser.add_argument("--seed", type=int, default=0,
                        help="PRNG seed (default 0; runs are "
                             "deterministic per seed)")
    parser.add_argument("--count", type=int, default=200,
                        help="number of cases to run (default 200)")
    parser.add_argument("--levels", default=",".join(
                            str(level) for level in OPT_LEVELS),
                        help="comma-separated opt levels to compare "
                             "(default all)")
    parser.add_argument("--lanes",
                        default="module,filter,script,pac",
                        help="comma-separated lanes to fuzz")
    parser.add_argument("--max-seconds", type=float, default=0,
                        help="stop after this wall-clock budget "
                             "(0 = no limit)")
    parser.add_argument("--emit-corpus", metavar="DIR", default=None,
                        help="write minimized interesting module cases "
                             "into DIR as replayable .hlt files")
    parser.add_argument("--corpus-limit", type=int, default=8,
                        help="max corpus files to emit (default 8)")
    parser.add_argument("--replay", metavar="DIR", default=None,
                        help="replay every .hlt corpus case in DIR "
                             "instead of fuzzing")
    parser.add_argument("--progress", type=int, default=0, metavar="N",
                        help="print a progress line every N cases")
    args = parser.parse_args(argv)
    levels = tuple(int(part) for part in args.levels.split(","))

    if args.replay:
        import glob
        import os

        failures = 0
        paths = sorted(glob.glob(os.path.join(args.replay, "*.hlt")))
        for path in paths:
            with open(path) as stream:
                result = run_corpus_text(stream.read(), levels)
            status = "ok" if not result["divergences"] else "DIVERGED"
            print(f"{path}: {status}")
            for line in result["divergences"]:
                print(f"  {line}")
                failures += 1
        print(f"replayed {len(paths)} corpus cases, "
              f"{failures} divergences")
        return 1 if failures else 0

    lanes = tuple(part for part in args.lanes.split(",") if part)
    fuzzer = Fuzzer(seed=args.seed, levels=levels, lanes=lanes)
    summary = fuzzer.run(args.count, max_seconds=args.max_seconds,
                         progress=args.progress)
    print(f"fuzz: {summary['total']} cases "
          f"({', '.join(f'{lane}={n}' for lane, n in summary['cases'].items())}), "
          f"{summary['signatures']} coverage signatures, "
          f"{summary['divergences']} divergences")
    for case in fuzzer.divergences:
        print(f"DIVERGENCE in {case['lane']} lane:")
        for line in case["divergences"]:
            print(f"  {line}")
        if "minimized" in case:
            print("  minimized reproduction:")
            for line in case["minimized"].splitlines():
                print(f"    {line}")
    if args.emit_corpus:
        written = fuzzer.emit_corpus(args.emit_corpus,
                                     limit=args.corpus_limit)
        for path in written:
            print(f"wrote {path}")
    return 1 if fuzzer.divergences else 0


if __name__ == "__main__":
    sys.exit(main())
