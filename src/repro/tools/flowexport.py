"""Flow export: pcap -> flow records -> feature vectors.

The ledger as a standalone tool — no host application, no parsers,
just the shared :class:`~repro.host.flowtable.FlowTable` accounting
every TCP/UDP frame of a trace and sealing one
``repro-flowrecords/1`` record per flow::

    python -m repro.tools.flowexport -r trace.pcap --logdir logs
    python -m repro.tools.flowexport -r trace.pcap --window 60

Writes ``records.jsonl`` (the schema-valid sorted record stream),
``features.csv`` (one 19-feature vector per flow, see
``repro.net.features``), and — when ``--window`` is given —
``windows.csv`` (per-time-window mean vectors).  The outputs are pure
functions of trace content: re-running, or exporting from any pipeline
backend, fingerprints identically (docs/FLOWS.md).
"""

from __future__ import annotations

import argparse
import os as _os
import sys
from typing import List, Optional

from ..host.flowtable import FlowTable
from ..net.features import write_features_csv, write_windows_csv
from ..net.flowrecord import (
    format_record_uid,
    validate_flowrecord_lines,
    write_flowrecords_jsonl,
)
from ..net.flows import frame_flow_info
from ..net.pcap import PcapReader

__all__ = ["export_flows", "main"]


def export_flows(trace_path: str, tolerant: bool = False) -> FlowTable:
    """Account every TCP/UDP frame of *trace_path* into a fresh
    FlowTable; returns the table with all flows sealed."""
    table = FlowTable(uid_format=format_record_uid)
    with PcapReader(trace_path, tolerant=tolerant) as reader:
        for timestamp, frame in reader:
            info = frame_flow_info(frame)
            if info is None:
                continue
            flow, payload_len, tcp_flags = info
            table.account(flow, timestamp.seconds,
                          payload_len=payload_len, tcp_flags=tcp_flags)
    table.finish()
    return table


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flowexport",
        description="export per-flow records and feature vectors "
                    "from a pcap trace",
    )
    parser.add_argument("-r", "--read", required=True, metavar="TRACE",
                        help="pcap file to read")
    parser.add_argument("--logdir", default="logs",
                        help="directory for the output files "
                             "(default logs)")
    parser.add_argument("--tolerant-pcap", action="store_true",
                        help="skip truncated/corrupt trace records "
                             "instead of aborting")
    parser.add_argument("--window", type=float, default=None,
                        metavar="SECONDS",
                        help="additionally aggregate per-window mean "
                             "feature vectors into windows.csv")
    parser.add_argument("--validate", action="store_true",
                        help="re-read and schema-check the written "
                             "record stream (exit 1 on violations)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.window is not None and args.window <= 0:
        raise SystemExit("flowexport: --window must be > 0")

    table = export_flows(args.read, tolerant=args.tolerant_pcap)
    records = table.records()
    _os.makedirs(args.logdir, exist_ok=True)

    records_path = write_flowrecords_jsonl(
        _os.path.join(args.logdir, "records.jsonl"),
        "flowexport", table.record_lines())
    # Feature rows ride in record order (arrival order of the flows);
    # the jsonl stream stays sorted per the schema.
    features_path = write_features_csv(
        _os.path.join(args.logdir, "features.csv"), records)

    print(f"exported {len(records)} flows "
          f"({table.serial} first-sighted)")
    print(f"  wrote {records_path}")
    print(f"  wrote {features_path}")
    if args.window is not None:
        windows_path = write_windows_csv(
            _os.path.join(args.logdir, "windows.csv"),
            records, args.window)
        print(f"  wrote {windows_path}")

    if args.validate:
        with open(records_path) as stream:
            errors = validate_flowrecord_lines(stream.readlines())
        for error in errors:
            print(f"{records_path}: {error}")
        if errors:
            return 1
        print(f"{records_path}: ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
