"""trace-gen — write synthetic HTTP/DNS/SSH/TFTP pcap traces.

    python -m repro.tools.tracegen http --sessions 200 -o http.pcap
    python -m repro.tools.tracegen dns  --queries 5000 -o dns.pcap
    python -m repro.tools.tracegen ssh  --sessions 80  -o ssh.pcap
    python -m repro.tools.tracegen tftp --transfers 120 -o tftp.pcap

Malformation is controlled and reproducible: ``--crud-fraction`` sets
the share of non-conforming sessions/messages, ``--reorder-fraction``
(HTTP) the share of segments delivered out of order, and ``--seed``
fixes the whole trace byte-for-byte — the same seed and knobs always
yield the identical pcap, which is what the fault-injection oracle in
``tests/integration/test_fault_injection.py`` relies on.
"""

from __future__ import annotations

import argparse
import sys

from ..net.pcap import write_pcap
from ..net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    SshTraceConfig,
    TftpTraceConfig,
    generate_mixed_trace,
    write_dns_trace,
    write_http_trace,
    write_ssh_trace,
    write_tftp_trace,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace-gen", description="synthetic trace generator")
    sub = parser.add_subparsers(dest="kind", required=True)

    http = sub.add_parser("http", help="HTTP/TCP-80 trace")
    http.add_argument("--sessions", type=int, default=200)
    http.add_argument("--seed", type=int, default=1,
                      help="deterministic generation seed: same seed and "
                           "knobs -> byte-identical trace (default 1)")
    http.add_argument("--crud-fraction", type=float, default=None,
                      metavar="F",
                      help="fraction of sessions carrying malformed "
                           "('crud') traffic, 0..1 (default "
                           f"{HttpTraceConfig().crud_fraction})")
    http.add_argument("--reorder-fraction", type=float, default=None,
                      metavar="F",
                      help="fraction of TCP segments delivered out of "
                           "order (default "
                           f"{HttpTraceConfig().reorder_fraction})")
    http.add_argument("-o", "--output", default="http.pcap")

    dns = sub.add_parser("dns", help="DNS/UDP-53 trace")
    dns.add_argument("--queries", type=int, default=2000)
    dns.add_argument("--seed", type=int, default=2,
                     help="deterministic generation seed: same seed and "
                          "knobs -> byte-identical trace (default 2)")
    dns.add_argument("--crud-fraction", type=float, default=None,
                     metavar="F",
                     help="fraction of malformed DNS messages, 0..1 "
                          f"(default {DnsTraceConfig().crud_fraction})")
    dns.add_argument("-o", "--output", default="dns.pcap")

    ssh = sub.add_parser("ssh", help="SSH/TCP-22 banner trace")
    ssh.add_argument("--sessions", type=int, default=80)
    ssh.add_argument("--seed", type=int, default=3,
                     help="deterministic generation seed: same seed and "
                          "knobs -> byte-identical trace (default 3)")
    ssh.add_argument("--crud-fraction", type=float, default=None,
                     metavar="F",
                     help="fraction of sessions whose banner lacks the "
                          "SSH- magic, 0..1 (default "
                          f"{SshTraceConfig().crud_fraction})")
    ssh.add_argument("-o", "--output", default="ssh.pcap")

    tftp = sub.add_parser("tftp", help="TFTP/UDP-69 transfer trace")
    tftp.add_argument("--transfers", type=int, default=120)
    tftp.add_argument("--seed", type=int, default=4,
                      help="deterministic generation seed: same seed and "
                           "knobs -> byte-identical trace (default 4)")
    tftp.add_argument("--crud-fraction", type=float, default=None,
                      metavar="F",
                      help="fraction of transfers sending non-TFTP bytes "
                           "on port 69, 0..1 (default "
                           f"{TftpTraceConfig().crud_fraction})")
    tftp.add_argument("-o", "--output", default="tftp.pcap")

    mixed = sub.add_parser(
        "mixed",
        help="time-merged HTTP+DNS+SSH+TFTP trace — the four-app "
             "smoke fixture")
    mixed.add_argument("--sessions", type=int, default=30,
                       help="HTTP sessions (default 30)")
    mixed.add_argument("--queries", type=int, default=60,
                       help="DNS queries (default 60)")
    mixed.add_argument("--ssh-sessions", type=int, default=15,
                       help="SSH sessions (default 15)")
    mixed.add_argument("--transfers", type=int, default=20,
                       help="TFTP transfers (default 20)")
    mixed.add_argument("--seed", type=int, default=1,
                       help="deterministic generation seed applied to "
                            "all four sub-traces (default 1)")
    mixed.add_argument("-o", "--output", default="mixed.pcap")

    args = parser.parse_args(argv)
    if args.kind == "http":
        config = HttpTraceConfig(seed=args.seed, sessions=args.sessions)
        if args.crud_fraction is not None:
            config.crud_fraction = args.crud_fraction
        if args.reorder_fraction is not None:
            config.reorder_fraction = args.reorder_fraction
        count = write_http_trace(args.output, config)
    elif args.kind == "dns":
        config = DnsTraceConfig(seed=args.seed, queries=args.queries)
        if args.crud_fraction is not None:
            config.crud_fraction = args.crud_fraction
        count = write_dns_trace(args.output, config)
    elif args.kind == "ssh":
        config = SshTraceConfig(seed=args.seed, sessions=args.sessions)
        if args.crud_fraction is not None:
            config.crud_fraction = args.crud_fraction
        count = write_ssh_trace(args.output, config)
    elif args.kind == "tftp":
        config = TftpTraceConfig(seed=args.seed,
                                 transfers=args.transfers)
        if args.crud_fraction is not None:
            config.crud_fraction = args.crud_fraction
        count = write_tftp_trace(args.output, config)
    else:
        packets = generate_mixed_trace(
            http=HttpTraceConfig(seed=args.seed,
                                 sessions=args.sessions),
            dns=DnsTraceConfig(seed=args.seed, queries=args.queries),
            ssh=SshTraceConfig(seed=args.seed,
                               sessions=args.ssh_sessions),
            tftp=TftpTraceConfig(seed=args.seed,
                                 transfers=args.transfers),
        )
        count = write_pcap(args.output, packets)
    print(f"wrote {count} packets to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
