"""trace-gen — write synthetic HTTP/DNS pcap traces.

    python -m repro.tools.tracegen http --sessions 200 -o http.pcap
    python -m repro.tools.tracegen dns  --queries 5000 -o dns.pcap
"""

from __future__ import annotations

import argparse
import sys

from ..net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    write_dns_trace,
    write_http_trace,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace-gen", description="synthetic trace generator")
    sub = parser.add_subparsers(dest="kind", required=True)

    http = sub.add_parser("http", help="HTTP/TCP-80 trace")
    http.add_argument("--sessions", type=int, default=200)
    http.add_argument("--seed", type=int, default=1)
    http.add_argument("-o", "--output", default="http.pcap")

    dns = sub.add_parser("dns", help="DNS/UDP-53 trace")
    dns.add_argument("--queries", type=int, default=2000)
    dns.add_argument("--seed", type=int, default=2)
    dns.add_argument("-o", "--output", default="dns.pcap")

    args = parser.parse_args(argv)
    if args.kind == "http":
        count = write_http_trace(
            args.output,
            HttpTraceConfig(seed=args.seed, sessions=args.sessions),
        )
    else:
        count = write_dns_trace(
            args.output,
            DnsTraceConfig(seed=args.seed, queries=args.queries),
        )
    print(f"wrote {count} packets to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
