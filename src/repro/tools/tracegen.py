"""trace-gen — write synthetic HTTP/DNS pcap traces.

    python -m repro.tools.tracegen http --sessions 200 -o http.pcap
    python -m repro.tools.tracegen dns  --queries 5000 -o dns.pcap

Malformation is controlled and reproducible: ``--crud-fraction`` sets
the share of non-conforming sessions/messages, ``--reorder-fraction``
(HTTP) the share of segments delivered out of order, and ``--seed``
fixes the whole trace byte-for-byte — the same seed and knobs always
yield the identical pcap, which is what the fault-injection oracle in
``tests/integration/test_fault_injection.py`` relies on.
"""

from __future__ import annotations

import argparse
import sys

from ..net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    write_dns_trace,
    write_http_trace,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="trace-gen", description="synthetic trace generator")
    sub = parser.add_subparsers(dest="kind", required=True)

    http = sub.add_parser("http", help="HTTP/TCP-80 trace")
    http.add_argument("--sessions", type=int, default=200)
    http.add_argument("--seed", type=int, default=1,
                      help="deterministic generation seed: same seed and "
                           "knobs -> byte-identical trace (default 1)")
    http.add_argument("--crud-fraction", type=float, default=None,
                      metavar="F",
                      help="fraction of sessions carrying malformed "
                           "('crud') traffic, 0..1 (default "
                           f"{HttpTraceConfig().crud_fraction})")
    http.add_argument("--reorder-fraction", type=float, default=None,
                      metavar="F",
                      help="fraction of TCP segments delivered out of "
                           "order (default "
                           f"{HttpTraceConfig().reorder_fraction})")
    http.add_argument("-o", "--output", default="http.pcap")

    dns = sub.add_parser("dns", help="DNS/UDP-53 trace")
    dns.add_argument("--queries", type=int, default=2000)
    dns.add_argument("--seed", type=int, default=2,
                     help="deterministic generation seed: same seed and "
                          "knobs -> byte-identical trace (default 2)")
    dns.add_argument("--crud-fraction", type=float, default=None,
                     metavar="F",
                     help="fraction of malformed DNS messages, 0..1 "
                          f"(default {DnsTraceConfig().crud_fraction})")
    dns.add_argument("-o", "--output", default="dns.pcap")

    args = parser.parse_args(argv)
    if args.kind == "http":
        config = HttpTraceConfig(seed=args.seed, sessions=args.sessions)
        if args.crud_fraction is not None:
            config.crud_fraction = args.crud_fraction
        if args.reorder_fraction is not None:
            config.reorder_fraction = args.reorder_fraction
        count = write_http_trace(args.output, config)
    else:
        config = DnsTraceConfig(seed=args.seed, queries=args.queries)
        if args.crud_fraction is not None:
            config.crud_fraction = args.crud_fraction
        count = write_dns_trace(args.output, config)
    print(f"wrote {count} packets to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
