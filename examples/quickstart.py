#!/usr/bin/env python3
"""Quickstart: compile and run HILTI programs.

Reproduces the paper's Figure 3 (hello world through hilti-build) and
shows the three ways to drive HILTI code: run an entry point, call
individual functions from the host, and suspend/resume execution through
a fiber — the mechanism incremental protocol parsers are built on.
"""

from repro.core import hilti_build, hiltic
from repro.core.stubs import Stub

HELLO = """module Main

import Hilti

# Default entry point for execution.
void run() {
    call Hilti::print("Hello, World!")
}
"""

COUNTER = """module Main

import Hilti

global int<64> counter

void bump(int<64> amount) {
    counter = int.add counter amount
}

int<64> get() {
    return counter
}

int<64> fib(int<64> n) {
    local bool base
    base = int.lt n 2
    if.else base basecase recurse
basecase:
    return n
recurse:
    local int<64> n1
    local int<64> n2
    local int<64> a
    local int<64> b
    n1 = int.sub n 1
    n2 = int.sub n 2
    a = call fib(n1)
    b = call fib(n2)
    local int<64> r
    r = int.add a b
    return r
}
"""

SUSPENDING = """module Main

import Hilti

int<64> three_steps() {
    local int<64> x
    x = 1
    yield
    x = int.add x 10
    yield
    x = int.add x 100
    return x
}
"""


def main() -> None:
    # 1. Figure 3: build an "executable" and run it.
    print("== hilti-build hello.hlt -o a.out && ./a.out ==")
    executable = hilti_build([HELLO])
    executable.run()

    # 2. Host-driven: compile a module, call functions via the C-stub
    #    equivalent, observe per-context (thread-local) globals.
    print("\n== host application driving HILTI functions ==")
    program = hiltic([COUNTER])
    ctx = program.make_context()
    program.call(ctx, "Main::bump", [5])
    program.call(ctx, "Main::bump", [37])
    print("counter:", program.call(ctx, "Main::get"))
    print("fib(20):", program.call(ctx, "Main::fib", [20]))

    other = program.make_context()
    print("counter in a fresh context:", program.call(other, "Main::get"))

    # 3. Fibers: start a function, let it suspend, resume it later.
    print("\n== suspension and resumption through a fiber ==")
    suspending = hiltic([SUSPENDING])
    ctx = suspending.make_context()
    stub = Stub(suspending, "Main::three_steps")
    result = stub.start(ctx)
    steps = 0
    while result.suspended:
        steps += 1
        print(f"  suspended (step {steps}); resuming...")
        result = Stub.resume(result)
    print("  completed with result:", result.value)


if __name__ == "__main__":
    main()
