#!/usr/bin/env python3
"""BinPAC++ exemplar (paper §4, Figures 6-7): grammars to parsers.

Walks the paper's Figure 7 end to end: parse the SSH banner grammar from
its ``.pac2`` text, load the ``.evt`` event configuration, compile to
HILTI, and watch ``ssh_banner`` events fire — then demonstrates the
generated parsers' headline property, transparent incremental parsing,
by feeding an HTTP request one byte at a time.
"""

from repro.apps.binpac import Parser, build_glue_module, parse_evt
from repro.apps.binpac.grammars import SSH_EVT, SSH_PAC2, http_grammar, ssh_grammar


def ssh_demo() -> None:
    print("== Figure 7: SSH banners through grammar + event config ==")
    print(SSH_PAC2)
    evt = parse_evt(SSH_EVT)
    print("analyzer:", evt.analyzers[0])
    glue = build_glue_module(evt, "SSH")

    events = []
    parser = Parser(ssh_grammar(), extra_modules=[glue],
                    on_event=lambda name, args: events.append((name, args)))

    # Both sides of one SSH session, as in Figure 7(d).
    for banner in (b"SSH-1.99-OpenSSH_3.9p1\r\n",
                   b"SSH-2.0-OpenSSH_3.8.1p1\r\n"):
        parser.parse("Banner", banner)
    print("# bro -r ssh.trace ssh.evt ssh.bro")
    for __, args in events:
        version, software = (a.to_bytes().decode() for a in args)
        print(f"{software}, {version}")


def incremental_http_demo() -> None:
    print("\n== incremental parsing: one byte at a time ==")
    parser = Parser(http_grammar())
    session = parser.start("Request")
    request = (b"POST /api/v1/items HTTP/1.1\r\n"
               b"Host: api.example.org\r\n"
               b"Content-Length: 11\r\n"
               b"\r\n"
               b"hello=world")
    suspensions = 0
    for i in range(len(request)):
        if session.feed(request[i:i + 1]):
            break
        suspensions += 1
    obj = session.done()
    line = obj.get("request_line")
    print(f"fed {len(request)} bytes; parser suspended {suspensions} times")
    print("method: ", line.get("method").to_bytes().decode())
    print("uri:    ", line.get("uri").to_bytes().decode())
    print("headers:", len(obj.get("headers")))
    print("body:   ", obj.get("body").to_bytes().decode())


def main() -> None:
    ssh_demo()
    incremental_http_demo()


if __name__ == "__main__":
    main()
