#!/usr/bin/env python3
"""The stateful-firewall exemplar (paper §4/§6.3).

A rule set compiles into the Figure 5 HILTI program: a ``classifier``
holds the static rules and a ``set`` with an access-based timeout holds
dynamic reverse-direction permissions.  The firewall processes
ipsumdump-style input derived from a synthetic DNS trace, and its verdicts
are cross-checked against an independent plain-Python implementation.
"""

from repro.apps.firewall import (
    ReferenceFirewall,
    RuleSet,
    compile_firewall,
    generate_hilti_source,
)
from repro.net import ipsumdump
from repro.net.tracegen import DnsTraceConfig, generate_dns_trace

RULES = """
# (src-net, dst-net) -> {allow, deny}; first match wins; default deny.
10.20.0.0/26   192.0.2.0/28   allow
10.20.0.64/26  *              deny
*              192.0.2.2/32   allow
"""


def main() -> None:
    ruleset = RuleSet.parse(RULES, timeout_seconds=5.0)
    print(f"loaded {len(ruleset)} rules; inactivity timeout "
          f"{ruleset.timeout_seconds}s")

    print("\n-- generated HILTI (excerpt) --")
    source = generate_hilti_source(ruleset)
    for line in source.splitlines()[:14]:
        print("   ", line)
    print("    ...")

    firewall = compile_firewall(ruleset)
    reference = ReferenceFirewall(ruleset)

    frames = generate_dns_trace(DnsTraceConfig(queries=400))
    lines = list(ipsumdump.dump_lines(frames))
    print(f"\nreplaying {len(lines)} ipsumdump records...")

    mismatches = 0
    for line in lines:
        when, src, dst = ipsumdump.parse_line(line)
        if firewall.match_packet(when, src, dst) != \
                reference.match_packet(when, src, dst):
            mismatches += 1

    print(f"HILTI firewall:   {firewall.matches} allowed, "
          f"{firewall.lookups - firewall.matches} denied")
    print(f"Python reference: {reference.matches} allowed")
    print(f"disagreements:    {mismatches}")
    assert mismatches == 0
    print("\nverdicts identical — the §6.3 cross-check passes")


if __name__ == "__main__":
    main()
