#!/usr/bin/env python3
"""The BPF exemplar (paper §4/§6.2): one filter, two engines.

Compiles ``host <addr> or src net 10.10.0.0/16 and port 80`` both into
the classic interpreted BPF virtual machine and into HILTI, runs both
over a synthetic HTTP trace, and compares match counts and runtime —
the experiment of the paper's section 6.2.
"""

import time

from repro.apps.bpf import compile_to_hilti, compile_to_vm, parse_filter
from repro.net.packet import parse_ethernet
from repro.net.tracegen import HttpTraceConfig, generate_http_trace


def main() -> None:
    print("generating HTTP trace...")
    frames = [f for __, f in generate_http_trace(HttpTraceConfig(sessions=60))]

    # Pick a real address so the filter matches a few percent of packets.
    ip, __ = parse_ethernet(frames[5])
    expression = f"host {ip.src} or src net 10.10.0.0/16 and port 80"
    print(f"filter: {expression!r}  over {len(frames)} packets\n")

    node = parse_filter(expression)
    vm = compile_to_vm(node)
    hilti_filter = compile_to_hilti(node)
    print(f"classic BPF program: {len(vm)} VM instructions")

    begin = time.perf_counter()
    vm_matches = sum(1 for f in frames if vm.run(f))
    vm_seconds = time.perf_counter() - begin

    begin = time.perf_counter()
    hilti_matches = sum(1 for f in frames if hilti_filter(f))
    hilti_seconds = time.perf_counter() - begin

    print(f"BPF VM:      {vm_matches:5d} matches in {vm_seconds * 1e3:8.2f} ms")
    print(f"HILTI:       {hilti_matches:5d} matches in {hilti_seconds * 1e3:8.2f} ms")
    assert vm_matches == hilti_matches, "engines disagree!"
    print("\nidentical match counts — the §6.2 correctness check passes")


if __name__ == "__main__":
    main()
