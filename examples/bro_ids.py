#!/usr/bin/env python3
"""The full pipeline: a mini-Bro run in all four configurations.

The paper's evaluation matrix (§6.4-§6.5): {standard, BinPAC++} protocol
parsers x {interpreted, HILTI-compiled} analysis scripts, over synthetic
HTTP and DNS traces.  Prints log excerpts, per-component timing (the
Figure 9/10 breakdown), and the Table 2/3 agreement numbers.
"""

import io

from repro.apps.bro import Bro, normalize_log
from repro.apps.bro.analyzers.pac import PacParsers
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    generate_dns_trace,
    generate_http_trace,
)


def run(trace, parsers, engine, pac=None):
    bro = Bro(parsers=parsers, scripts_engine=engine,
              print_stream=io.StringIO(), pac_parsers=pac)
    stats = bro.run(trace)
    return bro, stats


def show_breakdown(label, stats):
    total = stats["total_ns"] or 1
    print(f"  {label:28s} parse {stats['parsing_ns'] / 1e6:8.1f} ms  "
          f"script {stats['script_ns'] / 1e6:8.1f} ms  "
          f"glue {stats['glue_ns'] / 1e6:7.1f} ms  "
          f"other {stats['other_ns'] / 1e6:7.1f} ms")


def agreement(a_lines, b_lines):
    a = normalize_log(a_lines, drop_columns=(0,))
    b = normalize_log(b_lines, drop_columns=(0,))
    same = len(set(a) & set(b))
    return 100.0 * same / max(len(a), len(b), 1)


def main() -> None:
    print("generating traces...")
    http = generate_http_trace(HttpTraceConfig(sessions=60))
    dns = generate_dns_trace(DnsTraceConfig(queries=400))
    pac = PacParsers()

    print(f"\nHTTP trace: {len(http)} packets; DNS trace: {len(dns)} packets")
    print("\n-- per-component timing (Figure 9/10 axes) --")
    results = {}
    for parsers in ("std", "pac"):
        for engine in ("interp", "hilti"):
            bro, stats = run(http, parsers, engine,
                             pac if parsers == "pac" else None)
            results[(parsers, engine)] = bro
            show_breakdown(f"HTTP {parsers}-parsers {engine}-scripts",
                           stats)

    std = results[("std", "interp")]
    pac_bro = results[("pac", "interp")]
    print("\n-- http.log (first 3 lines, std parsers) --")
    for line in std.log_lines("http")[:3]:
        print("   ", line[:110])

    print("\n-- Table 2: std vs BinPAC++ parsers --")
    print(f"  http.log agreement:  "
          f"{agreement(std.log_lines('http'), pac_bro.log_lines('http')):6.2f}%")
    print(f"  files.log agreement: "
          f"{agreement(std.log_lines('files'), pac_bro.log_lines('files')):6.2f}%")

    d_std, __ = run(dns, "std", "interp")
    d_pac, __ = run(dns, "pac", "interp", pac)
    print(f"  dns.log agreement:   "
          f"{agreement(d_std.log_lines('dns'), d_pac.log_lines('dns')):6.2f}%")

    print("\n-- Table 3: interpreted vs compiled scripts --")
    hilti = results[("std", "hilti")]
    identical = normalize_log(std.log_lines("http")) == \
        normalize_log(hilti.log_lines("http"))
    print(f"  http.log identical: {identical}")


if __name__ == "__main__":
    main()
