#!/usr/bin/env python3
"""Scan detection with scoped scheduling — the paper's §7 example.

"Consider a scan detector that counts connection attempts per source
address.  As each individual counter depends solely on the activity of
the associated source, one can parallelize the detector by ensuring,
through scheduling, that the same thread carries out all counter
operations associated with a particular address."

This example builds exactly that: the detector is a HILTI module keeping
per-source state in the reusable SessionTable component; packets are
scheduled onto virtual threads by *hash of the source address* (scoped
scheduling), so each source's counter lives in one thread's thread-local
globals with no synchronization anywhere.
"""

from repro.core import hiltic
from repro.core.values import Addr, Time
from repro.lib import SESSION_TABLE
from repro.net.packet import SYN, build_tcp_packet, parse_ethernet
from repro.net.tracegen import HttpTraceConfig, generate_http_trace
from repro.runtime.threads import Scheduler

DETECTOR = """module Scan

import Hilti

global ref<map<any, any>> attempts
global ref<list<any>> alerts

void init() {
    attempts = call SessionTable::create(interval(60))
    alerts = new list<any>
}

void attempt(time t, addr source) {
    call SessionTable::advance(t)
    local bool known
    known = call SessionTable::contains(attempts, source)
    if.else known bump fresh
fresh:
    call SessionTable::insert(attempts, source, 1)
    return
bump:
    local int<64> n
    n = call SessionTable::lookup(attempts, source)
    n = int.incr n
    call SessionTable::insert(attempts, source, n)
    local bool hit
    hit = int.eq n 25
    if.else hit alert done
alert:
    list.push_back alerts source
done:
    return
}
"""


def build_trace():
    """Background HTTP traffic plus one source SYN-scanning a /24."""
    frames = [f for __, f in
              generate_http_trace(HttpTraceConfig(sessions=30))]
    scanner = Addr("198.51.100.99")
    for host in range(1, 80):
        frames.append(build_tcp_packet(
            scanner, Addr(f"10.10.0.{host}"), 54321, 445, flags=SYN,
        ))
    return frames, scanner


def main() -> None:
    frames, scanner = build_trace()
    program = hiltic([SESSION_TABLE, DETECTOR])
    n_vthreads = 16
    scheduler = Scheduler(program, workers=4)

    # Scoped scheduling: vthread = hash(source address).  All state for
    # one source lands on one thread; no locks, no races, by design.
    scheduled = 0
    clock = 0.0
    for frame in frames:
        try:
            ip, tcp = parse_ethernet(frame)
        except Exception:
            continue
        if tcp is None or not getattr(tcp, "syn", False) or tcp.is_ack:
            continue
        clock += 0.001
        vid = ip.src.value % n_vthreads
        scheduler.schedule(vid, "Scan::attempt", (Time(clock), ip.src))
        scheduled += 1

    # Each vthread initializes its own thread-local state on first use.
    for vid in range(n_vthreads):
        ctx = scheduler.context_for(vid)
        program.call(ctx, "Scan::init")
    jobs = scheduler.run_until_idle()
    print(f"scheduled {scheduled} connection attempts onto "
          f"{scheduler.vthread_count} virtual threads ({jobs} jobs run)")

    alerted = []
    for vid, ctx in scheduler.contexts().items():
        alerts = ctx.globals[program.linked.global_slot("Scan::alerts")]
        if alerts is not None:
            alerted.extend(str(a) for a in alerts)
    print("scan alerts:", alerted or "none")
    assert str(scanner) in alerted
    print(f"\ndetected the scanner {scanner} with zero cross-thread "
          "synchronization (per-source state is thread-local)")


if __name__ == "__main__":
    main()
