"""The stateful firewall exemplar (§6.3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.firewall import (
    HiltiFirewall,
    ReferenceFirewall,
    RuleError,
    RuleSet,
    compile_firewall,
    generate_hilti_source,
)
from repro.core.values import Addr, Time
from repro.net import ipsumdump
from repro.net.tracegen import DnsTraceConfig, generate_dns_trace


class TestRuleSet:
    def test_text_format(self):
        rs = RuleSet.parse("""
# static policy
10.3.2.1/32  10.1.0.0/16  allow
10.12.0.0/16 10.1.0.0/16  deny
10.1.6.0/24  *            allow
""")
        assert len(rs) == 3
        assert rs.rules[0].allow
        assert not rs.rules[1].allow
        assert rs.rules[2].dst is None

    def test_bad_lines(self):
        with pytest.raises(RuleError):
            RuleSet.parse("10.0.0.0/8 allow")
        with pytest.raises(RuleError):
            RuleSet.parse("10.0.0.0/8 * maybe")


class TestSemantics:
    def _firewall(self, timeout=300.0):
        rs = RuleSet(timeout_seconds=timeout)
        rs.add("10.3.2.1/32", "10.1.0.0/16", True)
        rs.add("10.12.0.0/16", "10.1.0.0/16", False)
        rs.add("10.1.6.0/24", "*", True)
        return compile_firewall(rs)

    def test_first_match_wins(self):
        fw = self._firewall()
        assert fw.match_packet(Time(1.0), Addr("10.3.2.1"), Addr("10.1.9.9"))
        assert not fw.match_packet(Time(2.0), Addr("10.12.1.1"),
                                   Addr("10.1.2.3"))

    def test_default_deny(self):
        fw = self._firewall()
        assert not fw.match_packet(Time(1.0), Addr("1.2.3.4"),
                                   Addr("5.6.7.8"))

    def test_dynamic_reverse_rule(self):
        fw = self._firewall()
        assert fw.match_packet(Time(1.0), Addr("10.3.2.1"), Addr("10.1.5.5"))
        # Reverse direction normally denied, but dynamic state allows it.
        assert fw.match_packet(Time(2.0), Addr("10.1.5.5"), Addr("10.3.2.1"))

    def test_dynamic_rule_expires_on_inactivity(self):
        fw = self._firewall(timeout=10.0)
        fw.match_packet(Time(0.0), Addr("10.3.2.1"), Addr("10.1.5.5"))
        assert not fw.match_packet(Time(100.0), Addr("10.1.5.5"),
                                   Addr("10.3.2.1"))

    def test_activity_keeps_dynamic_rule_alive(self):
        fw = self._firewall(timeout=10.0)
        fw.match_packet(Time(0.0), Addr("10.3.2.1"), Addr("10.1.5.5"))
        for t in (5.0, 12.0, 19.0):
            assert fw.match_packet(Time(t), Addr("10.1.5.5"),
                                   Addr("10.3.2.1"))

    def test_generated_source_shape(self):
        rs = RuleSet().add("10.0.0.0/8", "*", True)
        source = generate_hilti_source(rs)
        assert "classifier.add r (10.0.0.0/8, *) True" in source
        assert "set.timeout dyn ExpireStrategy::Access" in source


class TestAgainstReference:
    def test_dns_trace_agreement(self):
        rs = RuleSet(timeout_seconds=2.0)
        rs.add("10.20.0.0/26", "192.0.2.0/28", True)
        rs.add("10.20.0.64/26", "*", False)
        rs.add("*", "192.0.2.2/32", True)
        frames = generate_dns_trace(DnsTraceConfig(queries=250))
        lines = list(ipsumdump.dump_lines(frames))
        hilti_fw = compile_firewall(rs)
        reference = ReferenceFirewall(rs)
        for line in lines:
            t, src, dst = ipsumdump.parse_line(line)
            assert hilti_fw.match_packet(t, src, dst) == \
                reference.match_packet(t, src, dst)
        assert 0 < hilti_fw.matches < len(lines)

    @given(
        st.lists(st.tuples(
            st.integers(0, 5),             # inter-arrival seconds
            st.integers(0, 3),             # src index
            st.integers(0, 3),             # dst index
        ), max_size=40),
        st.integers(1, 20),                # timeout
    )
    @settings(max_examples=15, deadline=None)
    def test_random_workloads_agree(self, packets, timeout):
        hosts = [Addr("10.0.0.1"), Addr("10.0.0.2"), Addr("10.1.0.1"),
                 Addr("192.168.1.1")]
        rs = RuleSet(timeout_seconds=float(timeout))
        rs.add("10.0.0.0/24", "10.1.0.0/16", True)
        rs.add("10.1.0.0/16", "*", False)
        hilti_fw = compile_firewall(rs)
        reference = ReferenceFirewall(rs)
        clock = 0
        for delta, s, d in packets:
            clock += delta
            t = Time(float(clock))
            assert hilti_fw.match_packet(t, hosts[s], hosts[d]) == \
                reference.match_packet(t, hosts[s], hosts[d])

    def test_interpreted_tier_agrees(self):
        rs = RuleSet(timeout_seconds=5.0)
        rs.add("10.0.0.0/8", "*", True)
        compiled = compile_firewall(rs, tier="compiled")
        interp = compile_firewall(rs, tier="interpreted")
        cases = [
            (Time(1.0), Addr("10.1.1.1"), Addr("9.9.9.9")),
            (Time(2.0), Addr("9.9.9.9"), Addr("10.1.1.1")),
            (Time(100.0), Addr("9.9.9.9"), Addr("10.1.1.1")),
        ]
        for t, s, d in cases:
            assert compiled.match_packet(t, s, d) == \
                interp.match_packet(t, s, d)

    def test_run_ipsumdump_interface(self):
        rs = RuleSet().add("10.20.0.0/16", "*", True)
        frames = generate_dns_trace(DnsTraceConfig(queries=30))
        lines = list(ipsumdump.dump_lines(frames))
        fw = compile_firewall(rs)
        matches, non_matches = fw.run_ipsumdump(lines)
        assert matches + non_matches == len(lines)
