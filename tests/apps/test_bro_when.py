"""Bro's ``when`` statement, lowered to HILTI watchpoints (footnote 4)."""

import io

import pytest

from repro.apps.bro.compiler import ScriptCompiler
from repro.apps.bro.core import BroCore
from repro.apps.bro.interp import ScriptInterp
from repro.apps.bro.lang import parse_script

_SRC = """
global seen: count;
global fired_at: count;

event tick() {
    seen = seen + 1;
    if ( seen == 1 ) {
        when ( seen >= 3 ) {
            fired_at = seen;
            print fmt("threshold at %d", seen);
        }
    }
}

function get_fired(): count {
    return fired_at;
}
"""


def _engine(kind, source=_SRC):
    out = io.StringIO()
    core = BroCore(print_stream=out)
    if kind == "interp":
        engine = ScriptInterp(parse_script(source), core, print_stream=out)
    else:
        engine = ScriptCompiler(parse_script(source), core).compile()
    core.script_engine = engine
    return engine, core, out


@pytest.mark.parametrize("kind", ["interp", "hilti"])
class TestWhen:
    def test_fires_once_at_threshold(self, kind):
        engine, core, out = _engine(kind)
        for __ in range(6):
            core.queue_event("tick", [])
            core.drain_events()
        assert out.getvalue() == "threshold at 3\n"
        assert engine.call_function("get_fired", []) == 3

    def test_not_fired_below_threshold(self, kind):
        engine, core, out = _engine(kind)
        core.queue_event("tick", [])
        core.drain_events()
        assert out.getvalue() == ""
        assert engine.call_function("get_fired", []) == 0

    def test_multiple_whens_fire_independently(self, kind):
        source = """
global a: count;
global b: count;

event start() {
    when ( a >= 2 ) {
        print "a";
    }
    when ( b >= 1 ) {
        print "b";
    }
}

event bump_a() {
    a = a + 1;
}

event bump_b() {
    b = b + 1;
}
"""
        engine, core, out = _engine(kind, source)
        core.queue_event("start", [])
        core.drain_events()
        core.queue_event("bump_b", [])
        core.drain_events()
        assert out.getvalue() == "b\n"
        core.queue_event("bump_a", [])
        core.queue_event("bump_a", [])
        core.drain_events()
        assert out.getvalue() == "b\na\n"


class TestEngineParity:
    def test_same_behaviour_on_both_engines(self):
        outputs = {}
        for kind in ("interp", "hilti"):
            engine, core, out = _engine(kind)
            for __ in range(5):
                core.queue_event("tick", [])
                core.drain_events()
            outputs[kind] = (out.getvalue(),
                             engine.call_function("get_fired", []))
        assert outputs["interp"] == outputs["hilti"]
