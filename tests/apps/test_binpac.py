"""BinPAC++: grammar language, generated parsers, incremental parsing."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.binpac import ParseError, Parser, parse_evt, parse_grammar
from repro.apps.binpac.ast import (
    BytesField,
    Call,
    ComputeField,
    Const,
    Grammar,
    GrammarError,
    ListField,
    PatternField,
    SelfField,
    SubUnitField,
    UIntField,
    Unit,
)
from repro.apps.binpac.evt import build_glue_module
from repro.apps.binpac.grammars import (
    SSH_EVT,
    SSH_PAC2,
    dns_grammar,
    http_grammar,
    ssh_grammar,
)
from repro.runtime.exceptions import HiltiError


class TestPac2Parser:
    def test_figure6_request_line(self):
        g = parse_grammar(r"""
module HTTP;

const Token = /[^ \t\r\n]+/;
const WhiteSpace = /[ \t]+/;
const NewLine = /\r?\n/;

type Version = unit {
    : /HTTP\//;
    number: /[0-9]+\.[0-9]+/;
};

type RequestLine = unit {
    method: Token;
    : WhiteSpace;
    uri: Token;
    : WhiteSpace;
    version: Version;
    : NewLine;
};
""")
        parser = Parser(g)
        obj = parser.parse("RequestLine", b"GET /index.html HTTP/1.1\r\n")
        assert obj.get("method") == b"GET"
        assert obj.get("uri") == b"/index.html"
        assert obj.get("version").get("number") == b"1.1"

    def test_figure7_ssh_banner(self):
        parser = Parser(ssh_grammar())
        obj = parser.parse("Banner", b"SSH-1.99-OpenSSH_3.9p1\r\n")
        assert obj.get("version") == b"1.99"
        assert obj.get("software") == b"OpenSSH_3.9p1"

    def test_uint_and_count(self):
        g = parse_grammar("""
module Bin;

type Item = unit {
    value: uint16;
};

type Msg = unit {
    n: uint8;
    items: Item[] &count=self.n;
};
""")
        parser = Parser(g)
        obj = parser.parse("Msg", bytes([2, 0, 5, 1, 0]))
        items = list(obj.get("items"))
        assert [i.get("value") for i in items] == [5, 256]

    def test_bytes_length_attr(self):
        g = parse_grammar("""
module Bin;

type Msg = unit {
    n: uint8;
    body: bytes &length=self.n;
};
""")
        parser = Parser(g)
        obj = parser.parse("Msg", b"\x03abcdef")
        assert obj.get("body") == b"abc"

    def test_conditional_field(self):
        g = parse_grammar("""
module Bin;

type Msg = unit {
    flag: uint8;
    extra: uint8 if (self.flag == 1);
};
""")
        parser = Parser(g)
        assert parser.parse("Msg", b"\x01\x42").get("extra") == 0x42
        obj = parser.parse("Msg", b"\x00\x42")
        with pytest.raises(HiltiError):
            obj.get("extra")

    def test_parse_error_on_mismatch(self):
        parser = Parser(ssh_grammar())
        with pytest.raises(HiltiError) as exc:
            parser.parse("Banner", b"HTTP/1.1 200 OK\r\n")
        assert "ParseError" in exc.value.except_type.type_name

    def test_grammar_errors(self):
        with pytest.raises(GrammarError):
            parse_grammar("type X = unit { };")  # missing module
        with pytest.raises(GrammarError):
            Unit("U", [PatternField("a", "x"), PatternField("a", "y")])


class TestIncremental:
    def test_byte_at_a_time(self):
        parser = Parser(ssh_grammar())
        session = parser.start("Banner")
        data = b"SSH-2.0-OpenSSH_6.1\r\n"
        for i, byte in enumerate(data):
            done = session.feed(bytes([byte]))
            if done:
                break
        obj = session.done()
        assert obj.get("software") == b"OpenSSH_6.1"

    def test_suspends_until_input(self):
        parser = Parser(http_grammar())
        session = parser.start("Request")
        assert not session.feed(b"GET /x HT")
        assert not session.feed(b"TP/1.1\r\nHost: h\r\n")
        assert session.feed(b"Content-Length: 2\r\n\r\nab")
        obj = session.done()
        assert obj.get("body") == b"ab"

    def test_done_without_input_raises_or_empty(self):
        parser = Parser(http_grammar())
        session = parser.start("Requests")
        obj = session.done()  # zero transactions before EOF
        assert len(obj.get("transactions")) == 0


class TestHttpGrammar:
    def test_pipelined_requests(self):
        parser = Parser(http_grammar())
        data = (
            b"GET /a HTTP/1.1\r\nHost: one\r\nContent-Length: 0\r\n\r\n"
            b"POST /b HTTP/1.1\r\nHost: two\r\nContent-Length: 4\r\n\r\nwxyz"
        )
        obj = parser.parse("Requests", data)
        txs = list(obj.get("transactions"))
        assert len(txs) == 2
        assert txs[0].get("request_line").get("method") == b"GET"
        assert txs[1].get("body") == b"wxyz"
        assert txs[1].get("content_length") == 4

    def test_headers_list(self):
        parser = Parser(http_grammar())
        data = b"GET / HTTP/1.0\r\nA: 1\r\nB: 2\r\n\r\n"
        obj = parser.parse("Request", data)
        headers = list(obj.get("headers"))
        assert [h.get("name") for h in headers] == [b"A", b"B"]

    def test_reply_with_body(self):
        parser = Parser(http_grammar())
        data = (b"HTTP/1.1 404 Not Found\r\nContent-Type: text/html\r\n"
                b"Content-Length: 9\r\n\r\nnot found")
        obj = parser.parse("Reply", data)
        assert obj.get("status_line").get("status") == b"404"
        assert obj.get("body") == b"not found"


def _dns_query(txid=0x1234, qname=b"\x03www\x07example\x03com\x00",
               qtype=1, flags=0x0100, answers=b"", ancount=0):
    return struct.pack(">HHHHHH", txid, flags, 1, ancount, 0, 0) + \
        qname + struct.pack(">HH", qtype, 1) + answers


class TestDnsGrammar:
    def test_query(self):
        parser = Parser(dns_grammar())
        obj = parser.parse("Message", _dns_query())
        assert obj.get("txid") == 0x1234
        assert not obj.get("is_response")
        q = list(obj.get("questions"))[0]
        assert q.get("qname") == "www.example.com"
        assert q.get("qtype") == 1

    def test_compressed_answer(self):
        a_record = b"\xc0\x0c" + struct.pack(">HHIH", 1, 1, 300, 4) + \
            bytes([1, 2, 3, 4])
        parser = Parser(dns_grammar())
        obj = parser.parse(
            "Message",
            _dns_query(flags=0x8180, answers=a_record, ancount=1),
        )
        rr = list(obj.get("answers"))[0]
        assert rr.get("rname") == "www.example.com"
        assert str(rr.get("addr")) == "1.2.3.4"
        assert rr.get("ttl") == 300

    def test_unknown_rtype_skipped_via_seek(self):
        weird = b"\xc0\x0c" + struct.pack(">HHIH", 99, 1, 60, 5) + b"?????"
        a_record = b"\xc0\x0c" + struct.pack(">HHIH", 1, 1, 60, 4) + \
            bytes([9, 9, 9, 9])
        parser = Parser(dns_grammar())
        obj = parser.parse(
            "Message",
            _dns_query(flags=0x8180, answers=weird + a_record, ancount=2),
        )
        rrs = list(obj.get("answers"))
        assert rrs[0].get("rtype") == 99
        assert str(rrs[1].get("addr")) == "9.9.9.9"

    def test_compression_loop_fails_safely(self):
        # A name whose pointer points at itself.
        evil = struct.pack(">HHHHHH", 1, 0x0100, 1, 0, 0, 0) + b"\xc0\x0c"
        parser = Parser(dns_grammar())
        with pytest.raises(HiltiError):
            parser.parse("Message", evil + struct.pack(">HH", 1, 1))


class TestEvt:
    def test_parse_evt_file(self):
        evt = parse_evt(SSH_EVT)
        assert evt.grammar_file == "ssh.pac2"
        analyzer = evt.analyzers[0]
        assert analyzer.name == "SSH"
        assert analyzer.transport == "tcp"
        assert analyzer.top_unit == "SSH::Banner"
        assert analyzer.ports[0].number == 22
        event = evt.events[0]
        assert event.event == "ssh_banner"
        assert event.args == ["version", "software"]

    def test_events_fire(self):
        evt = parse_evt(SSH_EVT)
        glue = build_glue_module(evt, "SSH")
        events = []
        parser = Parser(ssh_grammar(), extra_modules=[glue],
                        on_event=lambda n, a: events.append((n, a)))
        parser.parse("Banner", b"SSH-1.99-OpenSSH_3.9p1\r\n")
        assert len(events) == 1
        name, args = events[0]
        assert name == "ssh_banner"
        assert args[0] == b"1.99"
        assert args[1] == b"OpenSSH_3.9p1"

    def test_figure7_output_both_sides(self):
        """The paper's Figure 7(d): one SSH session, both directions."""
        evt = parse_evt(SSH_EVT)
        glue = build_glue_module(evt, "SSH")
        out = []
        parser = Parser(ssh_grammar(), extra_modules=[glue],
                        on_event=lambda n, a: out.append(
                            f"{a[1].to_bytes().decode()}, "
                            f"{a[0].to_bytes().decode()}"))
        parser.parse("Banner", b"SSH-1.99-OpenSSH_3.9p1\r\n")
        parser.parse("Banner", b"SSH-2.0-OpenSSH_3.8.1p1\r\n")
        assert out == ["OpenSSH_3.9p1, 1.99", "OpenSSH_3.8.1p1, 2.0"]


class TestUntilFields:
    def test_until_excludes_delimiter(self):
        g = parse_grammar(r"""
module KV;

export type Pair = unit {
    key: bytes &until=/=/;
    value: bytes &until=/;/;
};
""")
        parser = Parser(g)
        obj = parser.parse("Pair", b"name=value;trailing")
        assert obj.get("key") == b"name"
        assert obj.get("value") == b"value"

    def test_until_incremental(self):
        g = parse_grammar(r"""
module KV;

export type Pair = unit {
    key: bytes &until=/=/;
    value: bytes &until=/;/;
};
""")
        parser = Parser(g)
        session = parser.start("Pair")
        for chunk in (b"na", b"me=", b"val", b"ue;"):
            session.feed(chunk)
        obj = session.done()
        assert obj.get("key") == b"name"
        assert obj.get("value") == b"value"

    def test_until_missing_delimiter_fails(self):
        g = parse_grammar(r"""
module KV;

export type Pair = unit {
    key: bytes &until=/=/;
};
""")
        parser = Parser(g)
        with pytest.raises(HiltiError):
            parser.parse("Pair", b"no delimiter here")

    def test_until_regex_delimiter(self):
        from repro.apps.binpac.ast import BytesField, Grammar, Unit

        g = Grammar("Line")
        g.unit(Unit("Row", [
            BytesField("text", until=r"\r?\n"),
        ], exported=True))
        parser = Parser(g)
        assert parser.parse("Row", b"hello\r\nrest").get("text") == b"hello"
        assert parser.parse("Row", b"hello\nrest").get("text") == b"hello"


HTTP_PAC2_TEXT = r"""
module HTTP;

const Token = /[^ \t\r\n]+/;
const WhiteSpace = /[ \t]+/;
const NewLine = /\r?\n/;

type Version = unit {
    : /HTTP\//;
    number: /[0-9]+\.[0-9]+/;
};

type RequestLine = unit {
    method: Token;
    : WhiteSpace;
    uri: Token;
    : WhiteSpace;
    version: Version;
    : NewLine;
};

type Header = unit {
    name: /[^:\r\n]+/;
    : /:[ \t]*/;
    value: /[^\r\n]*/;
    : NewLine;
};

export type Request = unit {
    request_line: RequestLine;
    headers: Header[] &until_input=/\r?\n/;
    let content_length = http_content_length(self.headers);
    let has_body = self.content_length > 0;
    body: bytes &length=self.content_length if (self.has_body);
};
"""


class TestTextualHttpGrammar:
    """The full HTTP request grammar expressed in .pac2 text, agreeing
    with the AST-built grammar the evaluation uses."""

    def test_parses_request_with_body(self):
        parser = Parser(parse_grammar(HTTP_PAC2_TEXT))
        data = (b"POST /api HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: 5\r\n\r\nhello")
        obj = parser.parse("Request", data)
        assert obj.get("request_line").get("method") == b"POST"
        assert obj.get("content_length") == 5
        assert obj.get("body") == b"hello"

    def test_agrees_with_ast_grammar(self):
        text_parser = Parser(parse_grammar(HTTP_PAC2_TEXT))
        ast_parser = Parser(http_grammar())
        samples = [
            b"GET / HTTP/1.0\r\n\r\n",
            b"GET /x HTTP/1.1\r\nHost: h\r\nContent-Length: 0\r\n\r\n",
            b"PUT /y HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc",
        ]
        for data in samples:
            a = text_parser.parse("Request", data)
            b = ast_parser.parse("Request", data)
            assert a.get("request_line").get("method") == \
                b.get("request_line").get("method")
            assert a.get("content_length") == b.get("content_length")

    def test_incremental(self):
        parser = Parser(parse_grammar(HTTP_PAC2_TEXT))
        session = parser.start("Request")
        data = b"GET /z HTTP/1.1\r\nA: 1\r\n\r\n"
        for i in range(0, len(data), 5):
            session.feed(data[i:i + 5])
        obj = session.done()
        assert obj.get("request_line").get("uri") == b"/z"
