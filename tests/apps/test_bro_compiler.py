"""The Bro script compiler: interpreter vs. compiled HILTI differential."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.bro.compiler import ScriptCompiler
from repro.apps.bro.core import BroCore
from repro.apps.bro.interp import ScriptInterp
from repro.apps.bro.lang import parse_script
from repro.core.values import Addr


def _engines(source):
    """(interp_engine, interp_core), (hilti_engine, hilti_core)."""
    out_i, out_h = io.StringIO(), io.StringIO()
    core_i = BroCore(print_stream=out_i)
    interp = ScriptInterp(parse_script(source), core_i,
                          print_stream=out_i)
    core_i.script_engine = interp
    core_h = BroCore(print_stream=out_h)
    compiled = ScriptCompiler(parse_script(source), core_h).compile()
    core_h.script_engine = compiled
    return (interp, core_i, out_i), (compiled, core_h, out_h)


class TestDifferential:
    def test_fib(self):
        src = """
function fib(n: count): count {
    if ( n < 2 )
        return n;
    return fib(n - 1) + fib(n - 2);
}
"""
        (interp, *__), (compiled, *___) = _engines(src)
        for n in (0, 1, 5, 12):
            assert interp.call_function("fib", [n]) == \
                compiled.call_function("fib", [n])

    def test_figure8_output_matches(self):
        src = """
global hosts: set[addr];

event connection_established(c: connection) {
    add hosts[c$id$resp_h];
}

event bro_done() {
    for ( i in hosts )
        print i;
}
"""
        (interp, core_i, out_i), (compiled, core_h, out_h) = _engines(src)
        for engine, core in ((interp, core_i), (compiled, core_h)):
            for ip in ("208.80.152.118", "208.80.152.2", "208.80.152.3"):
                conn = core.make_connection_val(
                    "C1", Addr("10.0.0.1"), None, Addr(ip), None,
                    core.network_time(), "tcp",
                )
                engine.dispatch("connection_established", [conn])
            engine.dispatch("bro_done", [])
        assert out_i.getvalue() == out_h.getvalue()
        assert "208.80.152.118" in out_i.getvalue()

    def test_state_tables_match(self):
        src = """
global t: table[string] of count;

event put(k: string, v: count) {
    t[k] = v;
}

function get(k: string): count {
    if ( k in t )
        return t[k];
    return 0;
}
"""
        (interp, *__), (compiled, *___) = _engines(src)
        for engine in (interp, compiled):
            engine.dispatch("put", ["a", 1])
            engine.dispatch("put", ["b", 2])
            engine.dispatch("put", ["a", 3])
        assert interp.call_function("get", ["a"]) == \
            compiled.call_function("get", ["a"]) == 3
        assert interp.call_function("get", ["zz"]) == \
            compiled.call_function("get", ["zz"]) == 0

    def test_records_and_vectors_match(self):
        src = """
type Info: record {
    name: string;
    hits: count;
};

global infos: vector of Info;

event observe(name: string) {
    local found: bool = F;
    for ( i in infos ) {
        if ( infos[i]$name == name ) {
            infos[i]$hits = infos[i]$hits + 1;
            found = T;
        }
    }
    if ( ! found ) {
        local info: Info;
        info$name = name;
        info$hits = 1;
        infos[|infos|] = info;
    }
}

function report(): string {
    local s: string = "";
    for ( i in infos )
        s = s + fmt("%s=%d;", infos[i]$name, infos[i]$hits);
    return s;
}
"""
        (interp, *__), (compiled, *___) = _engines(src)
        for engine in (interp, compiled):
            for name in ("a", "b", "a", "c", "a", "b"):
                engine.dispatch("observe", [name])
        assert interp.call_function("report", []) == \
            compiled.call_function("report", []) == "a=3;b=2;c=1;"

    def test_logging_matches(self):
        src = """
type Row: record {
    k: string;
    v: count;
};

event emit(k: string, v: count) {
    local row: Row;
    row$k = k;
    row$v = v;
    Log::write("rows", row);
}
"""
        (interp, core_i, __), (compiled, core_h, ___) = _engines(src)
        core_i.logs.create_stream("rows", ["k", "v"])
        core_h.logs.create_stream("rows", ["k", "v"])
        for engine in (interp, compiled):
            engine.dispatch("emit", ["x", 1])
            engine.dispatch("emit", ["y", 2])
        assert core_i.logs.lines("rows") == core_h.logs.lines("rows")

    @given(st.lists(st.tuples(st.sampled_from("abcd"),
                              st.integers(0, 100)), max_size=20))
    @settings(max_examples=15, deadline=None)
    def test_random_event_sequences(self, ops):
        src = """
global acc: table[string] of count;

event bump(k: string, v: count) {
    if ( k in acc )
        acc[k] = acc[k] + v;
    else
        acc[k] = v;
}

function value(k: string): count {
    if ( k in acc )
        return acc[k];
    return 0;
}
"""
        (interp, *__), (compiled, *___) = _engines(src)
        for key, amount in ops:
            interp.dispatch("bump", [key, amount])
            compiled.dispatch("bump", [key, amount])
        for key in "abcd":
            assert interp.call_function("value", [key]) == \
                compiled.call_function("value", [key])


class TestGlueAccounting:
    def test_glue_counts_conversions(self):
        src = """
event noop(c: connection) {
}
"""
        (interp, core_i, __), (compiled, core_h, ___) = _engines(src)
        conn = core_h.make_connection_val(
            "C1", Addr("1.1.1.1"), None, Addr("2.2.2.2"), None,
            core_h.network_time(), "tcp",
        )
        before = compiled.glue.to_hilti_calls
        compiled.dispatch("noop", [conn])
        assert compiled.glue.to_hilti_calls > before
        assert compiled.glue.ns_spent > 0

    def test_roundtrip_preserves_values(self):
        from repro.apps.bro.glue import Glue
        from repro.apps.bro.val import RecordVal, SetVal, TableVal, VectorVal

        glue = Glue()
        table = TableVal({("k", 2): VectorVal([1, 2])})
        back = glue.from_hilti(glue.to_hilti(table))
        assert isinstance(back, TableVal)
        assert list(back.get(("k", 2))) == [1, 2]

        s = SetVal([Addr("1.2.3.4")])
        back = glue.from_hilti(glue.to_hilti(s))
        assert back.contains(Addr("1.2.3.4"))


_scalar_vals = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=8),
    st.booleans(),
    st.builds(Addr.from_v4_int, st.integers(0, (1 << 32) - 1)),
)


@st.composite
def _vals(draw, depth=0):
    from repro.apps.bro.val import RecordVal, SetVal, TableVal, VectorVal

    if depth >= 2:
        return draw(_scalar_vals)
    choice = draw(st.integers(0, 4))
    if choice == 0:
        return draw(_scalar_vals)
    if choice == 1:
        return VectorVal(draw(st.lists(_vals(depth + 1), max_size=4)))
    if choice == 2:
        return SetVal(draw(st.lists(_scalar_vals, max_size=4)))
    if choice == 3:
        keys = draw(st.lists(_scalar_vals, max_size=4, unique_by=str))
        from repro.apps.bro.val import TableVal

        table = TableVal()
        for key in keys:
            table.set(key, draw(_vals(depth + 1)))
        return table
    from repro.apps.bro.val import RecordVal

    fields = draw(st.dictionaries(
        st.sampled_from(["a", "b", "c"]), _vals(depth + 1), max_size=3,
    ))
    return RecordVal(None, fields)


class TestGlueRoundtripProperty:
    @staticmethod
    def _canonical(value):
        """Order-insensitive structural fingerprint.

        Anonymous-record field order is not semantically significant
        (the glue's struct types canonicalize it), so records render
        with sorted fields; sets sort their members.
        """
        from repro.apps.bro.val import RecordVal, SetVal, TableVal, VectorVal

        canonical = TestGlueRoundtripProperty._canonical
        if isinstance(value, RecordVal):
            inner = ", ".join(
                f"${k}={canonical(v)}"
                for k, v in sorted(value.fields().items())
            )
            return f"[{inner}]"
        if isinstance(value, VectorVal):
            return "<" + ", ".join(canonical(v) for v in value) + ">"
        if isinstance(value, SetVal):
            return "{" + ", ".join(sorted(canonical(v) for v in value)) + "}"
        if isinstance(value, TableVal):
            entries = sorted(
                f"{canonical(k)}:{canonical(value.get(k))}" for k in value
            )
            return "map{" + ", ".join(entries) + "}"
        return repr(value)

    @given(_vals())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_preserves_structure(self, value):
        from repro.apps.bro.glue import Glue

        glue = Glue()
        back = glue.from_hilti(glue.to_hilti(value))
        assert self._canonical(back) == self._canonical(value)
