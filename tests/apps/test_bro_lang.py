"""The mini-Bro script language and interpreter."""

import io

import pytest

from repro.apps.bro.builtins import bro_fmt
from repro.apps.bro.core import BroCore
from repro.apps.bro.interp import ScriptInterp
from repro.apps.bro.lang import BroParseError, parse_script
from repro.apps.bro.val import RecordVal, SetVal, TableVal, VectorVal
from repro.core.values import Addr, Interval, Port


def _interp(source, out=None):
    core = BroCore(print_stream=out or io.StringIO())
    return ScriptInterp(parse_script(source), core,
                        print_stream=core.print_stream), core


class TestParsing:
    def test_figure8_track_bro(self):
        script = parse_script("""
global hosts: set[addr];

event connection_established(c: connection) {
    add hosts[c$id$resp_h];
}

event bro_done() {
    for ( i in hosts )
        print i;
}
""")
        assert len(script.globals) == 1
        assert len(script.events) == 2

    def test_record_types(self):
        script = parse_script("""
type Info: record {
    ts: time;
    n: count &optional;
};
""")
        assert script.types[0].fields[0][0] == "ts"

    def test_literals(self):
        script = parse_script("""
global a: addr = 10.1.2.3;
global p: port = 80/tcp;
global i: interval = 5 min;
global s: string = "hi";
global b: bool = T;
""")
        inits = [g.init.value for g in script.globals]
        assert inits[0] == Addr("10.1.2.3")
        assert inits[1] == Port(80, "tcp")
        assert inits[2] == Interval(300.0)
        assert inits[3] == "hi"
        assert inits[4] is True

    def test_errors(self):
        with pytest.raises(BroParseError):
            parse_script("event f() { if }")
        with pytest.raises(BroParseError):
            parse_script("wat x;")


class TestInterpreter:
    def test_functions_and_recursion(self):
        interp, __ = _interp("""
function fib(n: count): count {
    if ( n < 2 )
        return n;
    return fib(n - 1) + fib(n - 2);
}
""")
        assert interp.call_function("fib", [10]) == 55

    def test_event_dispatch_multiple_handlers(self):
        interp, __ = _interp("""
global total: count;

event tick(n: count) {
    total = total + n;
}

event tick(n: count) {
    total = total + 100;
}
""")
        assert interp.dispatch("tick", [5]) == 2
        assert interp.globals["total"] == 105

    def test_tables_and_in(self):
        interp, __ = _interp("""
global t: table[string] of count;

function put(k: string, v: count) {
    t[k] = v;
}

function has(k: string): bool {
    return k in t;
}

function missing(k: string): bool {
    return k !in t;
}
""")
        interp.call_function("put", ["a", 1])
        assert interp.call_function("has", ["a"]) is True
        assert interp.call_function("has", ["b"]) is False
        assert interp.call_function("missing", ["b"]) is True

    def test_multi_key_tables(self):
        interp, __ = _interp("""
global t: table[string, count] of string;

function put(a: string, b: count, v: string) {
    t[a, b] = v;
}

function get(a: string, b: count): string {
    return t[a, b];
}

function has(a: string, b: count): bool {
    return [a, b] in t;
}
""")
        interp.call_function("put", ["x", 1, "v1"])
        assert interp.call_function("get", ["x", 1]) == "v1"
        assert interp.call_function("has", ["x", 1]) is True
        assert interp.call_function("has", ["x", 2]) is False

    def test_vector_append_idiom(self):
        interp, __ = _interp("""
global v: vector of count;

function push(x: count) {
    v[|v|] = x;
}

function total(): count {
    local sum: count = 0;
    for ( i in v )
        sum = sum + v[i];
    return sum;
}
""")
        for x in (1, 2, 3):
            interp.call_function("push", [x])
        assert interp.call_function("total", []) == 6

    def test_records(self):
        interp, __ = _interp("""
type Pair: record {
    a: count;
    b: string;
};

function make(x: count): Pair {
    local p: Pair;
    p$a = x;
    p$b = fmt("n=%d", x);
    return p;
}

function geta(p: Pair): count {
    return p$a;
}

function hasb(p: Pair): bool {
    return p?$b;
}
""")
        pair = interp.call_function("make", [7])
        assert interp.call_function("geta", [pair]) == 7
        assert interp.call_function("hasb", [pair]) is True
        assert pair.get("b") == "n=7"

    def test_sets_add_delete(self):
        interp, __ = _interp("""
global s: set[addr];

event seen(a: addr) {
    add s[a];
}

event forget(a: addr) {
    delete s[a];
}
""")
        interp.dispatch("seen", [Addr("1.1.1.1")])
        interp.dispatch("seen", [Addr("2.2.2.2")])
        assert len(interp.globals["s"]) == 2
        interp.dispatch("forget", [Addr("1.1.1.1")])
        assert len(interp.globals["s"]) == 1

    def test_print(self):
        out = io.StringIO()
        interp, __ = _interp("""
event go() {
    print "x", 42, T;
}
""", out=out)
        interp.dispatch("go", [])
        assert out.getvalue() == "x, 42, T\n"

    def test_ternary(self):
        interp, __ = _interp("""
function pick(b: bool): string {
    return b ? "yes" : "no";
}
""")
        assert interp.call_function("pick", [True]) == "yes"
        assert interp.call_function("pick", [False]) == "no"

    def test_short_circuit(self):
        interp, __ = _interp("""
global t: table[string] of count;

function safe(k: string): bool {
    return k in t && t[k] > 0;
}
""")
        # RHS would raise if evaluated: short-circuit must protect it.
        assert interp.call_function("safe", ["missing"]) is False


class TestBuiltins:
    def test_fmt(self):
        assert bro_fmt("%s=%d (%f)", "x", 3, 1.5) == "x=3 (1.500000)"
        assert bro_fmt("%%") == "%"
        assert bro_fmt("%x", 255) == "ff"

    def test_fmt_errors(self):
        from repro.apps.bro.val import BroRuntimeError

        with pytest.raises(BroRuntimeError):
            bro_fmt("%d")
        with pytest.raises(BroRuntimeError):
            bro_fmt("%q", 1)

    def test_log_write_through_core(self):
        core = BroCore()
        core.logs.create_stream("test", ["a", "b"])
        record = RecordVal(None, {"a": 1, "b": "x"})
        core.log_write("test", record)
        assert core.logs.lines("test") == ["1\tx"]
