"""The logging framework: rendering, streams, normalization."""

import pytest

from repro.apps.bro.logging import (
    LogManager,
    LogStream,
    normalize_log,
    render_value,
)
from repro.apps.bro.val import RecordVal, SetVal, VectorVal
from repro.core.values import Addr, Interval, Port, Time


class TestRendering:
    def test_scalars(self):
        assert render_value(None) == "-"
        assert render_value(True) == "T"
        assert render_value(False) == "F"
        assert render_value(1.5) == "1.500000"
        assert render_value("") == "(empty)"
        assert render_value("x") == "x"
        assert render_value(b"raw") == "raw"

    def test_domain_values(self):
        assert render_value(Addr("10.1.2.3")) == "10.1.2.3"
        assert render_value(Port(80, "tcp")) == "80/tcp"
        assert render_value(Time(1.5)) == "1.500000"
        assert render_value(Interval(300)) == "300.000000"

    def test_vectors_comma_joined(self):
        assert render_value(VectorVal(["a", "b"])) == "a,b"
        assert render_value(VectorVal()) == "-"


class TestStreams:
    def test_write_renders_columns_in_order(self):
        stream = LogStream("t", ["b", "a"])
        line = stream.write(RecordVal(None, {"a": 1, "b": 2}))
        assert line == "2\t1"

    def test_unset_column_is_dash(self):
        stream = LogStream("t", ["a", "missing"])
        assert stream.write(RecordVal(None, {"a": 1})) == "1\t-"

    def test_header(self):
        assert LogStream("t", ["x", "y"]).header() == "#fields\tx\ty"

    def test_manager_disabled_counts_but_skips(self):
        manager = LogManager(enabled=False)
        manager.create_stream("s", ["a"])
        manager.write("s", RecordVal(None, {"a": 1}))
        assert manager.streams["s"].writes == 1
        assert manager.lines("s") == []

    def test_unknown_stream(self):
        with pytest.raises(KeyError):
            LogManager().write("nope", RecordVal())

    def test_save(self, tmp_path):
        manager = LogManager()
        manager.create_stream("s", ["a"])
        manager.write("s", RecordVal(None, {"a": "v"}))
        manager.save(str(tmp_path))
        content = (tmp_path / "s.log").read_text()
        assert content == "#fields\ta\nv\n"


class TestNormalization:
    def test_sort_unique(self):
        lines = ["b\t2", "a\t1", "b\t2"]
        assert normalize_log(lines) == ["a\t1", "b\t2"]

    def test_drop_columns(self):
        lines = ["1.0\tx\tk", "2.0\tx\tk"]
        # Dropping the timestamp folds the two entries together.
        assert normalize_log(lines, drop_columns=(0,)) == ["x\tk"]
