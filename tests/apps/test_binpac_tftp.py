"""The TFTP grammar: opcode-switched binary parsing."""

import struct

import pytest

from repro.apps.binpac import Parser
from repro.apps.binpac.grammars import tftp_grammar
from repro.apps.binpac.grammars.tftp import (
    OP_ACK,
    OP_DATA,
    OP_ERROR,
    OP_RRQ,
    OP_WRQ,
)


@pytest.fixture(scope="module")
def parser():
    return Parser(tftp_grammar())


class TestTftp:
    def test_read_request(self, parser):
        packet = struct.pack(">H", OP_RRQ) + b"boot.img\x00NETASCII\x00"
        obj = parser.parse("Packet", packet)
        assert obj.get("opcode") == OP_RRQ
        assert obj.get("filename") == b"boot.img"
        assert obj.get("mode") == b"netascii"

    def test_write_request(self, parser):
        packet = struct.pack(">H", OP_WRQ) + b"up.bin\x00octet\x00"
        obj = parser.parse("Packet", packet)
        assert obj.get("filename") == b"up.bin"
        assert obj.get("mode") == b"octet"

    def test_data_block(self, parser):
        payload = bytes(range(100))
        packet = struct.pack(">HH", OP_DATA, 7) + payload
        obj = parser.parse("Packet", packet)
        assert obj.get("block") == 7
        assert obj.get("data") == payload

    def test_ack(self, parser):
        obj = parser.parse("Packet", struct.pack(">HH", OP_ACK, 42))
        assert obj.get("block") == 42

    def test_error(self, parser):
        packet = struct.pack(">HH", OP_ERROR, 1) + b"File not found\x00"
        obj = parser.parse("Packet", packet)
        assert obj.get("error_code") == 1
        assert obj.get("error_msg") == b"File not found"

    def test_unknown_opcode_leaves_fields_unset(self, parser):
        obj = parser.parse("Packet", struct.pack(">H", 99))
        assert obj.get("opcode") == 99
        from repro.runtime.exceptions import HiltiError

        with pytest.raises(HiltiError):
            obj.get("filename")

    def test_incremental_data_transfer(self, parser):
        session = parser.start("Packet")
        session.feed(struct.pack(">H", OP_DATA))
        session.feed(struct.pack(">H", 1))
        session.feed(b"chunk-one-")
        session.feed(b"chunk-two")
        obj = session.done()  # eod data needs the freeze
        assert obj.get("data") == b"chunk-one-chunk-two"
