"""Bro's ``schedule`` statement: timer-driven events on network time."""

import io

import pytest

from repro.apps.bro.compiler import ScriptCompiler
from repro.apps.bro.core import BroCore
from repro.apps.bro.interp import ScriptInterp
from repro.apps.bro.lang import parse_script
from repro.core.values import Time

_SRC = """
global fired: vector of count;

event start(n: count) {
    schedule 10 sec { event later(n); };
}

event later(n: count) {
    fired[|fired|] = n;
}

function count_fired(): count {
    return |fired|;
}
"""


def _engine(kind, source=_SRC):
    out = io.StringIO()
    core = BroCore(print_stream=out)
    if kind == "interp":
        engine = ScriptInterp(parse_script(source), core, print_stream=out)
    else:
        engine = ScriptCompiler(parse_script(source), core).compile()
    core.script_engine = engine
    return engine, core


@pytest.mark.parametrize("kind", ["interp", "hilti"])
class TestSchedule:
    def test_fires_after_delay(self, kind):
        engine, core = _engine(kind)
        core.advance_time(Time(100.0))
        core.queue_event("start", [1])
        core.drain_events()
        core.advance_time(Time(105.0))
        core.drain_events()
        assert engine.call_function("count_fired", []) == 0
        core.advance_time(Time(110.0))
        core.drain_events()
        assert engine.call_function("count_fired", []) == 1

    def test_multiple_schedules_fire_in_order(self, kind):
        engine, core = _engine(kind)
        core.advance_time(Time(0.0))
        for n in (1, 2, 3):
            core.queue_event("start", [n])
            core.drain_events()
        core.advance_time(Time(100.0))
        core.drain_events()
        assert engine.call_function("count_fired", []) == 3

    def test_event_arguments_carried(self, kind):
        engine, core = _engine(kind)
        core.advance_time(Time(0.0))
        core.queue_event("start", [99])
        core.drain_events()
        core.advance_time(Time(50.0))
        core.drain_events()
        fired = engine.globals["fired"] if kind == "interp" else None
        if fired is not None:
            assert list(fired) == [99]
        else:
            assert engine.call_function("count_fired", []) == 1


class TestParity:
    def test_engines_agree(self):
        results = {}
        for kind in ("interp", "hilti"):
            engine, core = _engine(kind)
            core.advance_time(Time(0.0))
            core.queue_event("start", [5])
            core.drain_events()
            core.advance_time(Time(9.999))
            core.drain_events()
            early = engine.call_function("count_fired", [])
            core.advance_time(Time(10.0))
            core.drain_events()
            results[kind] = (early, engine.call_function("count_fired", []))
        assert results["interp"] == results["hilti"] == (0, 1)
