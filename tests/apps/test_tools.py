"""The command-line tools (hiltic / hilti-build / bro / trace-gen)."""

import os

import pytest

from repro.tools import bro as bro_cli
from repro.tools import hilti_build as build_cli
from repro.tools import hiltic as hiltic_cli
from repro.tools import tracegen as tracegen_cli

_HELLO = """module Main

import Hilti

void run() {
    call Hilti::print("Hello, World!")
}
"""


@pytest.fixture()
def hello_file(tmp_path):
    path = tmp_path / "hello.hlt"
    path.write_text(_HELLO)
    return str(path)


class TestHiltic:
    def test_compile_only(self, hello_file, capsys):
        assert hiltic_cli.main([hello_file]) == 0
        assert "compiled 1 functions" in capsys.readouterr().out

    def test_run(self, hello_file, capsys):
        assert hiltic_cli.main([hello_file, "--run"]) == 0
        assert "Hello, World!" in capsys.readouterr().out

    def test_print_ir(self, hello_file, capsys):
        hiltic_cli.main([hello_file, "--print-ir"])
        out = capsys.readouterr().out
        assert "Main::run" in out

    def test_interpreted_tier(self, hello_file, capsys):
        assert hiltic_cli.main([hello_file, "--tier", "interpreted",
                                "--run"]) == 0
        assert "Hello, World!" in capsys.readouterr().out

    def test_profile(self, hello_file, capsys):
        hiltic_cli.main([hello_file, "--run", "--profile"])
        out = capsys.readouterr().out
        assert "#profile func/Main::run" in out


class TestHiltiBuild:
    def test_figure3(self, hello_file, capsys):
        assert build_cli.main([hello_file]) == 0
        assert capsys.readouterr().out == "Hello, World!\n"


class TestTraceGenAndBro:
    def test_end_to_end(self, tmp_path, capsys):
        pcap = str(tmp_path / "dns.pcap")
        assert tracegen_cli.main(["dns", "--queries", "50",
                                  "-o", pcap]) == 0
        logdir = str(tmp_path / "logs")
        assert bro_cli.main(["-r", pcap, "--logdir", logdir]) == 0
        out = capsys.readouterr().out
        assert "processed" in out
        assert os.path.exists(os.path.join(logdir, "dns.log"))
        with open(os.path.join(logdir, "dns.log")) as stream:
            header = stream.readline()
        assert header.startswith("#fields\tts\tuid")

    def test_compiled_scripts_flag(self, tmp_path, capsys):
        pcap = str(tmp_path / "http.pcap")
        tracegen_cli.main(["http", "--sessions", "5", "-o", pcap])
        logdir = str(tmp_path / "logs")
        assert bro_cli.main(["-r", pcap, "--compile-scripts",
                             "--stats", "--logdir", logdir]) == 0
        out = capsys.readouterr().out
        assert "glue" in out

    def test_bundled_track_script(self, tmp_path, capsys):
        pcap = str(tmp_path / "http.pcap")
        tracegen_cli.main(["http", "--sessions", "4", "-o", pcap])
        logdir = str(tmp_path / "logs")
        assert bro_cli.main(["-r", pcap, "track.bro",
                             "--logdir", logdir]) == 0


class TestBroOptLevel:
    def test_opt_level_cli_run(self, tmp_path, capsys):
        pcap = str(tmp_path / "http.pcap")
        tracegen_cli.main(["http", "--sessions", "4", "-o", pcap])
        logdir = str(tmp_path / "logs")
        assert bro_cli.main(["-r", pcap, "--compile-scripts", "-O", "2",
                             "--logdir", logdir]) == 0
        assert "processed" in capsys.readouterr().out

    def test_opt_level_rides_in_serve_spec(self):
        # The --serve pool transport rebuilds Bro instances from the
        # picklable lane spec in worker processes; -O must travel in it
        # (it used to be hardcoded to None).
        class _Namespace:
            parsers = "std"
            compile_scripts = True
            watchdog = 7
            opt_level = 2
            metrics = False

        spec = bro_cli._make_spec(_Namespace(), scripts=None)
        assert spec.config["opt_level"] == 2
        assert spec.config["scripts_engine"] == "hilti"
        assert spec.config["watchdog_budget"] == 7

    def test_opt_level_flag_parses_from_registry(self, tmp_path):
        # The argparse choices come straight from OPT_LEVELS, so an
        # out-of-range level is rejected before any work happens.
        from repro.core.optimize import OPT_LEVELS

        pcap = str(tmp_path / "missing.pcap")
        with pytest.raises(SystemExit):
            bro_cli.main(["-r", pcap, "-O", str(max(OPT_LEVELS) + 1)])


class TestBroPacParsers:
    def test_pac_parser_tier_cli(self, tmp_path, capsys):
        pcap = str(tmp_path / "dns.pcap")
        tracegen_cli.main(["dns", "--queries", "30", "-o", pcap])
        logdir = str(tmp_path / "logs")
        assert bro_cli.main(["-r", pcap, "--parsers", "pac",
                             "--logdir", logdir]) == 0
        assert os.path.exists(os.path.join(logdir, "dns.log"))
