"""Protocol analyzers: standard vs BinPAC++-backed event streams."""

import io

import pytest

from repro.apps.bro.analyzers.dns_std import DnsStdAnalyzer
from repro.apps.bro.analyzers.http_std import HttpStdAnalyzer
from repro.apps.bro.analyzers.pac import (
    DnsPacAnalyzer,
    HttpPacAnalyzer,
    PacParsers,
)
from repro.apps.bro.core import BroCore
from repro.apps.bro.files import FileInfo, sniff_mime
from repro.core.values import Addr


@pytest.fixture(scope="module")
def pac_parsers():
    return PacParsers()


def _conn(core):
    return core.make_connection_val(
        "C1", Addr("10.0.0.1"), None, Addr("10.0.0.2"), None,
        core.network_time(), "tcp",
    )


def _events(core):
    out = []
    while core._event_queue:
        out.append(core._event_queue.popleft())
    return out


_REQUEST = (b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n"
            b"Content-Length: 0\r\n\r\n")
_REPLY = (b"HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
          b"Content-Length: 5\r\n\r\nhello")


class TestHttpStd:
    def test_request_events(self):
        core = BroCore()
        analyzer = HttpStdAnalyzer(_conn(core), core)
        analyzer.data(True, _REQUEST)
        names = [n for n, __ in _events(core)]
        assert names[0] == "http_request"
        assert "http_header" in names
        assert names[-1] == "http_message_done"

    def test_reply_with_body(self):
        core = BroCore()
        analyzer = HttpStdAnalyzer(_conn(core), core)
        analyzer.data(False, _REPLY)
        events = dict()
        for name, args in _events(core):
            events.setdefault(name, args)
        assert events["http_reply"][2] == 200
        done = events["http_message_done"]
        assert done[2] == 5            # body length
        assert done[3] == "text/plain"  # mime

    def test_split_across_chunks(self):
        core = BroCore()
        analyzer = HttpStdAnalyzer(_conn(core), core)
        for i in range(0, len(_REQUEST), 7):
            analyzer.data(True, _REQUEST[i:i + 7])
        names = [n for n, __ in _events(core)]
        assert names.count("http_request") == 1
        assert names.count("http_message_done") == 1

    def test_206_skips_file_analysis(self):
        core = BroCore()
        analyzer = HttpStdAnalyzer(_conn(core), core)
        partial = (b"HTTP/1.1 206 Partial Content\r\n"
                   b"Content-Length: 3\r\n\r\nabc")
        analyzer.data(False, partial)
        done = [a for n, a in _events(core) if n == "http_message_done"][0]
        assert done[3] == ""  # no mime: file analysis skipped
        assert done[4] == ""  # no hash


class TestHttpPacMatchesStd:
    def _run(self, analyzer_cls, core, *chunks, pac=None):
        conn = _conn(core)
        if pac is not None:
            analyzer = analyzer_cls(conn, core, pac)
        else:
            analyzer = analyzer_cls(conn, core)
        for is_orig, data in chunks:
            analyzer.data(is_orig, data)
        analyzer.end()
        return [
            (n, a[1:]) for n, a in _events(core)
        ]  # drop the conn arg for comparison

    def test_same_events_for_clean_session(self, pac_parsers):
        chunks = [(True, _REQUEST), (False, _REPLY)]
        std = self._run(HttpStdAnalyzer, BroCore(), *chunks)
        pac = self._run(HttpPacAnalyzer, BroCore(), *chunks,
                        pac=pac_parsers)
        assert std == pac

    def test_divergence_on_partial_content(self, pac_parsers):
        partial = [(False, b"HTTP/1.1 206 Partial Content\r\n"
                           b"Content-Length: 3\r\n\r\nabc")]
        std = self._run(HttpStdAnalyzer, BroCore(), *partial)
        pac = self._run(HttpPacAnalyzer, BroCore(), *partial,
                        pac=pac_parsers)
        std_done = [a for n, a in std if n == "http_message_done"][0]
        pac_done = [a for n, a in pac if n == "http_message_done"][0]
        assert std_done[2] == ""      # std: no mime
        assert pac_done[2] != ""      # pac extracts more information


def _dns_query():
    import struct

    q = b"\x03www\x07example\x03com\x00" + struct.pack(">HH", 1, 1)
    return struct.pack(">HHHHHH", 7, 0x0100, 1, 0, 0, 0) + q


def _dns_response():
    import struct

    q = b"\x03www\x07example\x03com\x00" + struct.pack(">HH", 1, 1)
    rr = b"\xc0\x0c" + struct.pack(">HHIH", 1, 1, 60, 4) + bytes([9, 8, 7, 6])
    return struct.pack(">HHHHHH", 7, 0x8180, 1, 1, 0, 0) + q + rr


class TestDns:
    def test_std_request(self):
        core = BroCore()
        analyzer = DnsStdAnalyzer(_conn(core), core)
        analyzer.data(True, _dns_query())
        name, args = _events(core)[0]
        assert name == "dns_request"
        assert args[2] == "www.example.com"

    def test_std_response_answers(self):
        core = BroCore()
        analyzer = DnsStdAnalyzer(_conn(core), core)
        analyzer.data(False, _dns_response())
        name, args = _events(core)[0]
        assert name == "dns_response"
        assert list(args[6]) == ["9.8.7.6"]

    def test_std_malformed_aborts(self):
        core = BroCore()
        analyzer = DnsStdAnalyzer(_conn(core), core)
        analyzer.data(True, b"\x01\x02\x03")
        assert analyzer.malformed == 1
        assert _events(core) == []

    def test_pac_matches_std(self, pac_parsers):
        core_std, core_pac = BroCore(), BroCore()
        std = DnsStdAnalyzer(_conn(core_std), core_std)
        pac = DnsPacAnalyzer(_conn(core_pac), core_pac, pac_parsers)
        for data in (_dns_query(), _dns_response()):
            std.data(True, data)
            pac.data(True, data)
        std_events = [(n, a[1:]) for n, a in _events(core_std)]
        pac_events = [(n, a[1:]) for n, a in _events(core_pac)]
        # VectorVal instances compare by identity; render for comparison.
        def norm(events):
            return [
                (n, [list(x) if hasattr(x, "__iter__")
                     and not isinstance(x, str) else x for x in a])
                for n, a in events
            ]
        assert norm(std_events) == norm(pac_events)


class TestFilesFramework:
    def test_magic_signatures(self):
        assert sniff_mime(b"\x89PNG\r\n\x1a\nxxxx") == "image/png"
        assert sniff_mime(b"\xff\xd8\xffrest") == "image/jpeg"
        assert sniff_mime(b"%PDF-1.4") == "application/pdf"

    def test_html_heuristic(self):
        assert sniff_mime(b"<!DOCTYPE html><html>") == "text/html"
        assert sniff_mime(b"  <html><body>") == "text/html"

    def test_declared_fallback(self):
        assert sniff_mime(b"\x00\x01\x02" * 30, "application/x-foo") == \
            "application/x-foo"

    def test_binary_heuristic(self):
        assert sniff_mime(bytes(range(64))) == "application/octet-stream"

    def test_empty_body(self):
        assert sniff_mime(b"") is None
        info = FileInfo(b"")
        assert info.sha1 is None and info.size == 0

    def test_hash_stability(self):
        import hashlib

        body = b"hello world"
        assert FileInfo(body).sha1 == hashlib.sha1(body).hexdigest()
