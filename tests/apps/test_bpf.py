"""The BPF exemplar: language, classic VM, HILTI compiler, equivalence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.bpf import compile_to_hilti, compile_to_vm, parse_filter
from repro.apps.bpf.lang import (
    And,
    FilterError,
    HostTest,
    NetTest,
    Not,
    Or,
    PortTest,
    ProtoTest,
)
from repro.apps.bpf.vm import BpfVmError
from repro.core.values import Addr
from repro.net.packet import build_tcp_packet, build_udp_packet
from repro.net.tracegen import HttpTraceConfig, generate_http_trace


class TestFilterLanguage:
    def test_paper_example(self):
        node = parse_filter("host 192.168.1.1 or src net 10.0.5.0/24")
        assert isinstance(node, Or)
        assert isinstance(node.left, HostTest)
        assert node.left.direction is None
        assert isinstance(node.right, NetTest)
        assert node.right.direction == "src"

    def test_precedence_not_and_or(self):
        node = parse_filter("not tcp and port 80 or udp")
        assert isinstance(node, Or)
        assert isinstance(node.left, And)
        assert isinstance(node.left.left, Not)

    def test_parentheses(self):
        node = parse_filter("tcp and (port 80 or port 443)")
        assert isinstance(node, And)
        assert isinstance(node.right, Or)

    def test_errors(self):
        for bad in ("", "bogus 1", "host", "port abc", "tcp and"):
            with pytest.raises(FilterError):
                parse_filter(bad)


def _tcp(src, dst, sport, dport, payload=b""):
    return build_tcp_packet(Addr(src), Addr(dst), sport, dport,
                            payload=payload)


def _udp(src, dst, sport, dport):
    return build_udp_packet(Addr(src), Addr(dst), sport, dport)


_SAMPLE = [
    _tcp("192.168.1.1", "10.0.0.1", 1234, 80),
    _tcp("10.0.0.1", "192.168.1.1", 80, 1234),
    _tcp("10.0.5.7", "10.0.0.1", 5555, 443),
    _udp("10.0.5.200", "8.8.8.8", 53535, 53),
    _udp("172.16.0.1", "8.8.4.4", 1111, 53),
    _tcp("10.99.0.1", "10.98.0.1", 2000, 8080),
]

_FILTERS = [
    "host 192.168.1.1",
    "src host 10.0.0.1",
    "dst host 8.8.8.8",
    "net 10.0.0.0/8",
    "src net 10.0.5.0/24",
    "tcp",
    "udp",
    "ip",
    "port 80",
    "src port 53535",
    "dst port 53",
    "tcp and port 80",
    "host 192.168.1.1 or src net 10.0.5.0/24",
    "not tcp",
    "udp and dst port 53 and src net 10.0.5.0/24",
    "not (port 80 or port 443)",
]


class TestVmAgainstHilti:
    @pytest.mark.parametrize("expression", _FILTERS)
    def test_same_verdicts(self, expression):
        node = parse_filter(expression)
        vm = compile_to_vm(node)
        hilti = compile_to_hilti(node)
        for frame in _SAMPLE:
            assert bool(vm.run(frame)) == hilti(frame), (
                f"{expression!r} disagrees"
            )

    def test_non_ip_always_rejected(self):
        from repro.net.packet import EthernetFrame

        arp = EthernetFrame(b"\x00" * 28, ethertype=0x0806).build()
        node = parse_filter("host 1.2.3.4")
        assert compile_to_vm(node).run(arp) == 0
        assert compile_to_hilti(node)(arp) is False

    def test_truncated_packet_rejected(self):
        node = parse_filter("port 80")
        assert compile_to_vm(node).run(b"\x00" * 20) == 0


class TestOnTrace:
    def test_match_counts_agree(self):
        frames = generate_http_trace(HttpTraceConfig(sessions=25))
        from repro.net.packet import parse_ethernet

        ip, __ = parse_ethernet(frames[7][1])
        expression = f"host {ip.src} or src net 172.16.0.0/16 and port 80"
        node = parse_filter(expression)
        vm = compile_to_vm(node)
        hilti = compile_to_hilti(node)
        vm_hits = sum(1 for __t, f in frames if vm.run(f))
        hilti_hits = sum(1 for __t, f in frames if hilti(f))
        assert vm_hits == hilti_hits > 0

    def test_interpreted_tier_agrees_too(self):
        frames = generate_http_trace(HttpTraceConfig(sessions=10))
        node = parse_filter("src net 10.10.0.0/16 and port 80")
        compiled = compile_to_hilti(node, tier="compiled")
        interp = compile_to_hilti(node, tier="interpreted")
        for __, frame in frames[:60]:
            assert compiled(frame) == interp(frame)


class TestVmVerifier:
    def test_rejects_empty(self):
        from repro.apps.bpf.vm import BpfProgram

        with pytest.raises(BpfVmError):
            BpfProgram([])

    def test_rejects_missing_ret(self):
        from repro.apps.bpf.vm import BpfInstruction, BpfProgram

        with pytest.raises(BpfVmError):
            BpfProgram([BpfInstruction("ldh_abs", 12)])


_addr_pool = ["192.168.1.1", "10.0.5.9", "10.0.6.9", "172.16.2.3"]


@st.composite
def _filter_nodes(draw, depth=0):
    if depth >= 2:
        choice = draw(st.integers(0, 3))
    else:
        choice = draw(st.integers(0, 6))
    if choice == 0:
        return HostTest(Addr(draw(st.sampled_from(_addr_pool))),
                        draw(st.sampled_from([None, "src", "dst"])))
    if choice == 1:
        from repro.core.values import Network

        net = draw(st.sampled_from(
            ["10.0.0.0/8", "10.0.5.0/24", "172.16.0.0/12"]))
        return NetTest(Network(net),
                       draw(st.sampled_from([None, "src", "dst"])))
    if choice == 2:
        return PortTest(draw(st.sampled_from([53, 80, 443, 1234])),
                        draw(st.sampled_from([None, "src", "dst"])))
    if choice == 3:
        return ProtoTest(draw(st.sampled_from(["ip", "tcp", "udp"])))
    if choice == 4:
        return Not(draw(_filter_nodes(depth + 1)))
    if choice == 5:
        return And(draw(_filter_nodes(depth + 1)),
                   draw(_filter_nodes(depth + 1)))
    return Or(draw(_filter_nodes(depth + 1)),
              draw(_filter_nodes(depth + 1)))


class TestRandomFilters:
    @given(_filter_nodes())
    @settings(max_examples=30, deadline=None)
    def test_vm_and_hilti_agree_on_random_filters(self, node):
        vm = compile_to_vm(node)
        hilti = compile_to_hilti(node, optimize=False)
        for frame in _SAMPLE:
            assert bool(vm.run(frame)) == hilti(frame)
