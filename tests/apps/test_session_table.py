"""The SessionTable library component (the §1/§7 reuse vision)."""

import pytest

from repro.core import hiltic
from repro.core.values import Time
from repro.lib import SESSION_TABLE, SessionTable


class TestPythonHostWrapper:
    def test_lookup_or_create(self):
        created = []

        def factory():
            state = {"count": 0}
            created.append(state)
            return state

        table = SessionTable(timeout_seconds=60.0, factory=factory)
        a = table.get_or_create("flow-1")
        a["count"] += 1
        b = table.get_or_create("flow-1")
        assert b["count"] == 1  # same state object
        assert len(created) == 1
        table.get_or_create("flow-2")
        assert len(created) == 2
        assert len(table) == 2

    def test_inactivity_expiration_with_eviction_hook(self):
        evicted = []
        table = SessionTable(timeout_seconds=10.0, factory=dict,
                             on_evict=evicted.append)
        table.advance(0.0)
        table.get_or_create("a")
        table.advance(5.0)
        table.get_or_create("a")        # refreshes the clock
        table.get_or_create("b")
        table.advance(14.0)             # a alive (refreshed at 5), b alive
        assert "a" in table and "b" in table
        table.advance(30.0)
        assert len(table) == 0
        assert sorted(evicted) == ["a", "b"]

    def test_fixed_lifetime_ignores_access(self):
        table = SessionTable(timeout_seconds=10.0, factory=dict,
                             access_refreshes=False)
        table.advance(0.0)
        table.get_or_create("a")
        table.advance(8.0)
        table.get_or_create("a")        # access does not refresh
        table.advance(10.0)
        assert "a" not in table

    def test_put_drop(self):
        table = SessionTable(timeout_seconds=60.0)
        table.put("k", 42)
        assert "k" in table
        table.drop("k")
        assert "k" not in table


class TestHiltiConsumer:
    """A pure-HILTI host module using the component cross-module."""

    _CONSUMER = """module Scan

import Hilti

global ref<map<any, any>> attempts
global int<64> alerts

void init() {
    attempts = call SessionTable::create(interval(300))
}

# A simple scan detector (the paper's §7 example): count connection
# attempts per source; alert at the threshold.
void attempt(time t, addr source) {
    call SessionTable::advance(t)
    local bool known
    known = call SessionTable::contains(attempts, source)
    if.else known bump fresh
fresh:
    call SessionTable::insert(attempts, source, 1)
    return
bump:
    local int<64> n
    n = call SessionTable::lookup(attempts, source)
    n = int.incr n
    call SessionTable::insert(attempts, source, n)
    local bool hit
    hit = int.eq n 3
    if.else hit alert done
alert:
    alerts = int.incr alerts
done:
    return
}

int<64> get_alerts() {
    return alerts
}
"""

    @pytest.mark.parametrize("tier", ["compiled", "interpreted"])
    def test_scan_detector_over_session_table(self, tier):
        from repro.core.values import Addr

        program = hiltic([SESSION_TABLE, self._CONSUMER], tier=tier)
        ctx = program.make_context()
        program.call(ctx, "Scan::init")
        scanner = Addr("192.0.2.66")
        benign = Addr("10.0.0.1")
        clock = 0.0
        for __ in range(5):
            clock += 1.0
            program.call(ctx, "Scan::attempt", [Time(clock), scanner])
        program.call(ctx, "Scan::attempt", [Time(clock), benign])
        assert program.call(ctx, "Scan::get_alerts") == 1

    def test_state_expires_between_bursts(self):
        from repro.core.values import Addr

        program = hiltic([SESSION_TABLE, self._CONSUMER])
        ctx = program.make_context()
        program.call(ctx, "Scan::init")
        scanner = Addr("192.0.2.66")
        # Two attempts, a long quiet period, two more: never reaches 3
        # within one window, so no alert.
        for t in (0.0, 1.0, 1000.0, 1001.0):
            program.call(ctx, "Scan::attempt", [Time(t), scanner])
        assert program.call(ctx, "Scan::get_alerts") == 0
