"""Compiled-vs-interpreted differential oracles for the small exemplars.

The paper's tiering claim (§3): the same HILTI program produces the
same analysis whether interpreted or compiled, at any optimization
level.  The Bro pipeline already has this oracle; these tests extend it
to the other host applications, each of which additionally has an
engine-independent reference implementation to triangulate against —
the classic BPF virtual machine and the pure-Python firewall.
"""

import pytest

from repro.apps.bpf.app import BpfApp
from repro.apps.firewall.app import FirewallApp
from repro.apps.firewall.rules import RuleSet
from repro.host import Pipeline
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    SshTraceConfig,
    TftpTraceConfig,
    generate_mixed_trace,
    write_pcap,
)

FILTERS = [
    "tcp and port 80",
    "udp and port 53",
    "host 10.0.0.1 or src net 10.2.0.0/16",
    "not (tcp or udp)",
]

RULES = """
10.0.0.0/8   172.16.0.0/12  deny
10.2.0.0/16  *              deny
10.0.0.0/8   *              allow
*            *              deny
"""


@pytest.fixture(scope="module")
def mixed_pcap(tmp_path_factory):
    packets = generate_mixed_trace(
        http=HttpTraceConfig(sessions=20, seed=11),
        dns=DnsTraceConfig(queries=30, seed=11),
        ssh=SshTraceConfig(sessions=8, seed=11),
        tftp=TftpTraceConfig(transfers=10, seed=11),
    )
    path = tmp_path_factory.mktemp("differential") / "mixed.pcap"
    write_pcap(str(path), packets)
    return str(path)


def _bpf_lines(pcap, **kwargs):
    app = BpfApp(**kwargs)
    Pipeline(app).run_pcap(pcap)
    return app.result_lines(), app


def _firewall_lines(pcap, **kwargs):
    app = FirewallApp(RuleSet.parse(RULES, timeout_seconds=5.0), **kwargs)
    Pipeline(app).run_pcap(pcap)
    return app.result_lines(), app


class TestBpfDifferential:
    """HILTI compiled (-O0 and -O1), HILTI interpreted, and the classic
    BPF virtual machine accept the identical packet set."""

    @pytest.mark.parametrize("filter_text", FILTERS)
    def test_engines_agree(self, mixed_pcap, filter_text):
        vm_lines, __ = _bpf_lines(mixed_pcap, filter_text=filter_text,
                                  engine="vm")
        for engine, opt_level in [("compiled", 0), ("compiled", 1),
                                  ("compiled", None), ("interpreted", None)]:
            lines, app = _bpf_lines(mixed_pcap, filter_text=filter_text,
                                    engine=engine, opt_level=opt_level)
            assert lines == vm_lines, (engine, opt_level)
            assert app.errors == 0

    def test_filters_discriminate(self, mixed_pcap):
        """Sanity: the fixture trace exercises both filter branches."""
        tcp_lines, __ = _bpf_lines(mixed_pcap,
                                   filter_text="tcp and port 80",
                                   engine="vm")
        udp_lines, __ = _bpf_lines(mixed_pcap,
                                   filter_text="udp and port 53",
                                   engine="vm")
        assert tcp_lines and udp_lines
        assert not set(tcp_lines) & set(udp_lines)


class TestFirewallDifferential:
    """HILTI compiled (-O0 and -O1), HILTI interpreted, and the
    pure-Python reference make identical stateful decisions."""

    def test_engines_agree(self, mixed_pcap):
        ref_lines, ref = _firewall_lines(mixed_pcap, engine="reference")
        assert ref.allowed > 0 and ref.denied > 0
        for engine, opt_level in [("compiled", 0), ("compiled", 1),
                                  ("compiled", None), ("interpreted", None)]:
            lines, app = _firewall_lines(mixed_pcap, engine=engine,
                                         opt_level=opt_level)
            assert lines == ref_lines, (engine, opt_level)
            assert app.errors == 0

    def test_state_is_exercised(self, mixed_pcap):
        """The dynamic reverse-rule path must actually fire — otherwise
        the differential only covers the static rule table."""
        __, app = _firewall_lines(mixed_pcap, engine="reference")
        assert app.firewall.lookups > 0
        # Replies from non-10/8 servers are only allowed dynamically.
        dynamic_allows = [
            line for line in app.result_lines()
            if line.endswith("allow") and not line.split()[1].startswith("10.")
        ]
        assert dynamic_allows
