"""The flow-parallel pipeline's differential oracle (§3.2).

The paper's concurrency claim is that hashing each flow to a virtual
thread yields the same analysis as a sequential run, with no
program-level locking.  We check the strongest observable form of that:
the merged logs of the parallel pipeline are **byte-identical** to the
sequential pipeline's on a fixed-seed HTTP+DNS trace, for every backend
(deterministic vthread scheduler, real threads, one process per worker,
the persistent shared-memory worker pool) at 1, 2, and 4 workers — and
the event totals, per-event-name counts, and counter-style metric
series agree exactly.
"""

import pytest

from repro.apps.bro import Bro, ParallelBro
from repro.apps.bro.parallel import dispatch_plan, flow_key
from repro.apps.bro.core import format_uid
from repro.core.values import Addr
from repro.net.flows import FiveTuple, flow_of_frame, placement, vthread_of
from repro.net.packet import PROTO_TCP
from repro.host.pool import shutdown_shared_pools
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    generate_mixed_trace,
)
from repro.runtime.telemetry import Telemetry


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    """Close the cached shared pools after this module so their idle
    workers cannot add CPU noise to timing-sensitive suites that run
    later in the same pytest process."""
    yield
    shutdown_shared_pools()

LOG_STREAMS = ("conn", "http", "dns", "files", "weird")

#: Metric prefixes whose values depend on wall clock, per-lane compile
#: work, or scheduling rather than on trace content.
_TIMING_PREFIXES = ("engine.", "glue.", "trace.")

#: Gauges that do not compose across lanes: a global concurrent
#: high-water mark cannot be reconstructed from per-lane peaks
#: (docs/PARALLELISM.md), and open-flow occupancy is sampled at
#: different instants.
_NON_COMPOSABLE = {"bro.flows_peak", "bro.flows_open", "bro.cpu_ns"}


@pytest.fixture(scope="module")
def mixed_trace():
    return generate_mixed_trace(
        HttpTraceConfig(sessions=40, seed=23),
        DnsTraceConfig(queries=120, seed=23),
    )


@pytest.fixture(scope="module")
def sequential(mixed_trace):
    bro = Bro(telemetry=Telemetry(metrics=True))
    bro.run(mixed_trace)
    return bro


def _sorted_logs(pipeline):
    return {name: sorted(pipeline.log_lines(name)) for name in LOG_STREAMS}


def _comparable_series(registry):
    """Content-determined metric series only: counters, histograms, and
    composable gauges; timing and occupancy series excluded, along with
    the per-worker attribution copies (``worker`` label) the parallel
    merge adds — those are lane-local raw counts, not aggregates."""
    out = {}
    for series in registry.collect():
        name = series["name"]
        if name.startswith(_TIMING_PREFIXES) or name in _NON_COMPOSABLE:
            continue
        if "worker" in series.get("labels", {}):
            continue
        key = (name, tuple(sorted(series.get("labels", {}).items())))
        if series["kind"] == "histogram":
            out[key] = (series["count"], series["sum"])
        else:
            out[key] = series["value"]
    return out


class TestDifferentialOracle:
    @pytest.mark.parametrize("backend",
                             ["vthread", "threaded", "process", "pool"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_logs_byte_identical(self, mixed_trace, sequential,
                                 backend, workers):
        parallel = ParallelBro(workers=workers, backend=backend,
                               telemetry=Telemetry(metrics=True))
        stats = parallel.run(mixed_trace)
        assert _sorted_logs(parallel) == _sorted_logs(sequential)
        assert stats["packets"] == sequential.stats["packets"]
        assert stats["events"] == sequential.stats["events"]
        assert stats["event_counts"] == sequential.core.event_counts
        assert stats["scheduler_errors"] == 0
        assert _comparable_series(parallel.telemetry.metrics) == \
            _comparable_series(sequential.telemetry.metrics)

    def test_health_report_merges(self, mixed_trace, sequential):
        parallel = ParallelBro(workers=2, backend="vthread")
        stats = parallel.run(mixed_trace)
        reference = sequential.stats["health"]
        merged = stats["health"]
        for key in ("flows_quarantined", "watchdog_trips",
                    "records_skipped", "tier_fallback"):
            assert merged[key] == reference[key]
        assert merged["breaker"]["flows"] == reference["breaker"]["flows"]
        assert merged["site_errors"] == reference["site_errors"]

    def test_empty_trace_still_runs_lifecycle(self):
        parallel = ParallelBro(workers=2, backend="vthread")
        stats = parallel.run([])
        # Lane 0 exists unconditionally, so bro_init/bro_done dispatch
        # exactly once after de-duplication.
        assert stats["lanes"] >= 1
        assert stats["packets"] == 0


class TestPlacement:
    """Flow → vthread → worker placement must be a pure function of the
    5-tuple, symmetric, and stable release-to-release (pinned values)."""

    FLOW = FiveTuple(Addr("10.0.0.1"), Addr("10.0.0.2"), 40000, 80,
                     PROTO_TCP)

    def test_symmetric(self):
        reverse = FiveTuple(Addr("10.0.0.2"), Addr("10.0.0.1"), 80, 40000,
                            PROTO_TCP)
        assert vthread_of(self.FLOW, 16) == vthread_of(reverse, 16)
        assert placement(self.FLOW, 16, 4) == placement(reverse, 16, 4)

    def test_pinned_values(self):
        # Anchors the FNV-1a-based placement: a change here silently
        # re-shards every deployment's flows.
        assert vthread_of(self.FLOW, 16) == 14
        assert placement(self.FLOW, 16, 4) == (14, 2)
        assert placement(self.FLOW, 8, 2) == (6, 0)

    def test_worker_matches_scheduler_rule(self):
        for vthreads, workers in ((16, 4), (8, 3), (64, 5)):
            vid, worker = placement(self.FLOW, vthreads, workers)
            assert worker == vid % workers


class TestDispatchPlan:
    def test_uids_assigned_in_arrival_order(self, mixed_trace):
        __, uid_map = dispatch_plan(mixed_trace, vthreads=16, workers=4)
        firsts = []
        seen = set()
        for __, frame in mixed_trace:
            flow = flow_of_frame(frame)
            if flow is None:
                continue
            key = flow_key(flow)
            if key not in seen:
                seen.add(key)
                firsts.append(key)
        assert [uid_map[key] for key in firsts] == \
            [format_uid(i + 1) for i in range(len(firsts))]

    def test_stray_frames_ride_vthread_zero(self):
        from repro.core.values import Time

        jobs, uid_map = dispatch_plan(
            [(Time.from_nanos(1), b"\x00" * 20)], vthreads=16, workers=4)
        assert jobs == [(0, 1, b"\x00" * 20)]
        assert uid_map == {}

    def test_one_flow_one_vthread(self, mixed_trace):
        jobs, __ = dispatch_plan(mixed_trace, vthreads=16, workers=4)
        by_flow = {}
        for (vid, __, frame) in jobs:
            flow = flow_of_frame(frame)
            if flow is None:
                continue
            key = flow_key(flow)
            by_flow.setdefault(key, set()).add(vid)
        assert by_flow and all(len(vids) == 1 for vids in by_flow.values())


class TestTimeWait:
    """The teardown's trailing ACK belongs to the closed connection —
    it must not open a phantom 1-packet conn entry (the uid-divergence
    bug the parallel oracle exposed)."""

    def _one_session(self):
        from repro.net.tracegen import generate_http_trace

        return generate_http_trace(HttpTraceConfig(sessions=1, seed=7))

    def test_no_phantom_connection(self):
        bro = Bro()
        bro.run(self._one_session())
        lines = bro.log_lines("conn")
        assert len(lines) == 1
        assert "\tOTH" not in lines[0]

    def test_genuine_reuse_gets_new_connection(self):
        trace = self._one_session()
        # Replay the same session: its SYN reuses the 5-tuple after the
        # first instance closed, which must open a second connection.
        offset = trace[-1][0].nanos + 1_000_000
        from repro.core.values import Time

        replay = [(Time.from_nanos(ts.nanos + offset), frame)
                  for ts, frame in trace]
        bro = Bro()
        bro.run(trace + replay)
        lines = bro.log_lines("conn")
        assert len(lines) == 2
        uids = {line.split("\t")[1] for line in lines}
        assert len(uids) == 2


class TestArtifacts:
    def test_save_logs_matches_sequential_format(self, mixed_trace,
                                                 sequential, tmp_path):
        parallel = ParallelBro(workers=2, backend="vthread")
        parallel.run(mixed_trace)
        parallel.save_logs(str(tmp_path / "par"))
        sequential.core.logs.save(str(tmp_path / "seq"))
        for name in ("conn", "http", "dns"):
            par = (tmp_path / "par" / f"{name}.log").read_text().splitlines()
            seq = (tmp_path / "seq" / f"{name}.log").read_text().splitlines()
            assert par[0] == seq[0]  # identical #fields header
            assert sorted(par[1:]) == sorted(seq[1:])

    def test_write_telemetry_emits_merged_registry(self, mixed_trace,
                                                   tmp_path):
        parallel = ParallelBro(workers=2, backend="vthread",
                               telemetry=Telemetry(metrics=True))
        parallel.run(mixed_trace)
        written = parallel.write_telemetry(str(tmp_path))
        names = {p.rsplit("/", 1)[-1] for p in written}
        assert {"metrics.jsonl", "stats.log"} <= names
        lines = (tmp_path / "metrics.jsonl").read_text().splitlines()
        assert len(lines) > 10  # header + series

    def test_pcap_round_trip(self, mixed_trace, tmp_path):
        from repro.net.pcap import write_pcap

        path = str(tmp_path / "trace.pcap")
        write_pcap(path, mixed_trace)
        sequential = Bro()
        sequential.run_pcap(path)
        parallel = ParallelBro(workers=2, backend="vthread")
        parallel.run_pcap(path)
        assert _sorted_logs(parallel) == _sorted_logs(sequential)

    def test_pcap_shard_fanout(self, mixed_trace, tmp_path):
        from repro.net.pcap import write_pcap

        path = str(tmp_path / "trace.pcap")
        write_pcap(path, mixed_trace)
        sequential = Bro()
        sequential.run_pcap(path)
        parallel = ParallelBro(workers=2, backend="process")
        parallel.run_pcap(path, shard_dir=str(tmp_path / "shards"))
        assert _sorted_logs(parallel) == _sorted_logs(sequential)
