"""§7 "Safe Execution Environment": fail-safe processing of untrusted input.

"Networking applications process untrusted input: attackers might attempt
to mislead a system, and real-world traffic contains plenty 'crud'."
HILTI's model promises contained execution: malformed and adversarial
bytes may fail a parse, but only through typed HILTI exceptions — never
a Python-level crash, never corrupted engine state.  These tests feed
random garbage and mutated-valid inputs into every consumer of untrusted
bytes and assert exactly that.
"""

import io
import struct

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.binpac import Parser
from repro.apps.binpac.grammars import dns_grammar, http_grammar, tftp_grammar
from repro.apps.bpf import compile_to_hilti, compile_to_vm, parse_filter
from repro.apps.bro import Bro
from repro.apps.bro.analyzers.dns_std import DnsStdAnalyzer
from repro.apps.bro.core import BroCore
from repro.core.values import Addr, Time
from repro.net.packet import PacketError, parse_ethernet
from repro.runtime.exceptions import HiltiError

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def parsers():
    return {
        "dns": Parser(dns_grammar()),
        "http": Parser(http_grammar()),
        "tftp": Parser(tftp_grammar()),
    }


class TestGeneratedParsersContainFailures:
    @given(st.binary(max_size=200))
    @_SETTINGS
    def test_dns_random_bytes(self, parsers, data):
        try:
            parsers["dns"].parse("Message", data)
        except HiltiError:
            pass  # contained: a typed HILTI exception

    @given(st.binary(max_size=200))
    @_SETTINGS
    def test_http_random_bytes(self, parsers, data):
        try:
            parsers["http"].parse("Request", data)
        except HiltiError:
            pass

    @given(st.binary(max_size=80))
    @_SETTINGS
    def test_tftp_random_bytes(self, parsers, data):
        try:
            parsers["tftp"].parse("Packet", data)
        except HiltiError:
            pass

    @given(st.binary(min_size=12, max_size=120), st.integers(0, 119),
           st.integers(0, 255))
    @_SETTINGS
    def test_dns_bitflips_of_valid_message(self, parsers, extra, position,
                                           value):
        # Start from a valid message, then corrupt one byte.
        q = b"\x03www\x07example\x03com\x00" + struct.pack(">HH", 1, 1)
        rr = b"\xc0\x0c" + struct.pack(">HHIH", 1, 1, 60, 4) + b"\x01\x02\x03\x04"
        message = bytearray(
            struct.pack(">HHHHHH", 7, 0x8180, 1, 1, 0, 0) + q + rr + extra
        )
        message[position % len(message)] = value
        try:
            parsers["dns"].parse("Message", bytes(message))
        except HiltiError:
            pass

    def test_parser_reusable_after_failure(self, parsers):
        with pytest.raises(HiltiError):
            parsers["dns"].parse("Message", b"\xff")
        good = struct.pack(">HHHHHH", 7, 0x0100, 1, 0, 0, 0) + \
            b"\x03abc\x00" + struct.pack(">HH", 1, 1)
        obj = parsers["dns"].parse("Message", good)
        assert obj.get("txid") == 7


class TestAnalyzersSwallowCrud:
    @given(st.binary(max_size=100))
    @_SETTINGS
    def test_dns_std_analyzer(self, data):
        core = BroCore()
        conn = core.make_connection_val(
            "C1", Addr("1.1.1.1"), None, Addr("2.2.2.2"), None,
            core.network_time(), "udp",
        )
        analyzer = DnsStdAnalyzer(conn, core)
        analyzer.data(True, data)  # must never raise


class TestPacketLayerContainsFailures:
    @given(st.binary(max_size=120))
    @_SETTINGS
    def test_parse_ethernet_never_crashes(self, data):
        try:
            parse_ethernet(data)
        except PacketError:
            pass

    @given(st.binary(max_size=120))
    @_SETTINGS
    def test_bpf_engines_reject_garbage_identically(self, data):
        node = parse_filter("tcp and port 80")
        vm = compile_to_vm(node)
        hilti = compile_to_hilti(node)
        assert bool(vm.run(data)) == hilti(data)


class TestFullPipelineOnGarbageTrace:
    @given(st.lists(st.binary(min_size=1, max_size=120), min_size=1,
                    max_size=15))
    @_SETTINGS
    def test_bro_survives_arbitrary_frames(self, frames):
        bro = Bro(print_stream=io.StringIO())
        trace = [(Time(float(i)), f) for i, f in enumerate(frames)]
        stats = bro.run(trace)  # must complete without raising
        assert stats["packets"] == len(frames)

    def test_bro_survives_mutated_http_trace(self):
        import random

        from repro.net.tracegen import HttpTraceConfig, generate_http_trace

        rng = random.Random(1234)
        frames = []
        for i, (t, frame) in enumerate(
            generate_http_trace(HttpTraceConfig(sessions=10))
        ):
            mutated = bytearray(frame)
            if i % 3 == 0 and mutated:
                mutated[rng.randrange(len(mutated))] ^= 0xFF
            if i % 7 == 0:
                mutated = mutated[: max(14, len(mutated) // 2)]
            frames.append((t, bytes(mutated)))
        for parsers_tier in ("std", "pac"):
            bro = Bro(parsers=parsers_tier, print_stream=io.StringIO())
            bro.run(frames)  # contained end to end
