"""End-to-end telemetry: the unified exporter over the Bro pipeline.

Exercises the Figures 9/10 CPU-breakdown report, the metrics registry
fed by every pipeline component, per-flow span trees, and the report
files the ``--metrics`` / ``--cpu-breakdown`` / ``--trace-flows`` CLI
flags produce.
"""

import io
import json

import pytest

from repro.apps.bro import Bro
from repro.net.tracegen import HttpTraceConfig, generate_http_trace
from repro.runtime.telemetry import (
    Telemetry,
    validate_cpu_breakdown,
    validate_metrics_lines,
)


@pytest.fixture(scope="module")
def http_trace():
    return generate_http_trace(HttpTraceConfig(sessions=20, seed=42))


def _run(trace, metrics=True, trace_flows=False, **kwargs):
    bro = Bro(
        parsers="pac",
        scripts_engine="hilti",
        print_stream=io.StringIO(),
        telemetry=Telemetry(metrics=metrics, trace=trace_flows),
        **kwargs,
    )
    bro.run(trace)
    return bro


def _series(bro, name, **labels):
    key = (name, tuple(sorted(labels.items())))
    return bro.telemetry.metrics._series[key]


class TestCpuBreakdownReport:
    def test_schema_valid_all_components_nonzero(self, http_trace):
        report = _run(http_trace).cpu_breakdown()
        assert validate_cpu_breakdown(report) == []
        for name in ("parsing", "script", "glue", "other"):
            assert report["components"][name]["ns"] > 0
            assert report["components"][name]["share"] > 0

    def test_shares_sum_to_100(self, http_trace):
        report = _run(http_trace).cpu_breakdown()
        total = sum(c["share"] for c in report["components"].values())
        assert round(total, 2) == 100.0

    def test_reproducible_dominant_component(self, http_trace):
        """Two runs over the same trace must agree on what dominates
        (the paper's Figures 9/10 claim is about relative breakdowns)."""
        first = _run(http_trace).cpu_breakdown()
        second = _run(http_trace).cpu_breakdown()
        assert first["ranking"][0] == second["ranking"][0]
        assert first["config"] == second["config"]
        assert first["packets"] == second["packets"]

    def test_requires_a_completed_run(self):
        bro = Bro(print_stream=io.StringIO(), telemetry=Telemetry(True))
        with pytest.raises(RuntimeError):
            bro.cpu_breakdown()


class TestUnifiedMetrics:
    def test_pipeline_counters_match_stats(self, http_trace):
        bro = _run(http_trace)
        assert _series(bro, "bro.packets_total").value == \
            bro.stats["packets"]
        assert _series(bro, "bro.events_dispatched").value == \
            bro.stats["events"]
        assert _series(
            bro, "bro.cpu_ns", component="parsing",
        ).value == bro.stats["parsing_ns"]

    def test_per_event_counts_sum_to_dispatched(self, http_trace):
        bro = _run(http_trace)
        by_name = [
            s for s in bro.telemetry.metrics.all_series()
            if s.name == "bro.events_by_name"
        ]
        assert by_name  # http_request, connection_state_remove, ...
        assert sum(s.value for s in by_name) == bro.stats["events"]

    def test_both_execution_tiers_reported(self, http_trace):
        bro = _run(http_trace)
        # Compiled scripts dispatch segments; pac parsers run HILTI too.
        assert _series(
            bro, "engine.instructions", context="scripts").value > 0
        assert _series(
            bro, "engine.segments_dispatched", context="scripts").value > 0
        assert _series(
            bro, "engine.instructions", context="pac/http").value > 0

    def test_glue_health_and_occupancy_present(self, http_trace):
        bro = _run(http_trace)
        assert _series(bro, "glue.to_hilti_calls").value > 0
        assert _series(bro, "health.flows_quarantined").value == 0
        assert _series(bro, "bro.flows_peak").value > 0
        assert _series(bro, "bro.flows_open").value == 0  # all closed
        assert _series(bro, "reassembly.delivered_bytes").value > 0

    def test_emitted_jsonl_validates(self, http_trace):
        bro = _run(http_trace)
        out = io.StringIO()
        bro.telemetry.metrics.emit_jsonl(out)
        assert validate_metrics_lines(out.getvalue().splitlines()) == []

    def test_disabled_telemetry_gathers_nothing(self, http_trace):
        bro = _run(http_trace, metrics=False)
        assert bro.telemetry.metrics.collect() == []
        assert bro.core.event_counts == {}
        assert bro.telemetry.tracer.roots == []
        # ...but the run itself is unaffected.
        assert bro.stats["packets"] == len(http_trace)


class TestFlowTracing:
    def test_span_trees_cover_flows_and_packets(self, http_trace):
        bro = _run(http_trace, trace_flows=True)
        roots = bro.telemetry.tracer.roots
        assert len(roots) == bro.tracker.flows_opened["tcp"]
        flow = roots[0]
        assert flow.name == "flow"
        assert flow.attrs["proto"] == "tcp"
        packets = [c for c in flow.children if c.name == "packet"]
        assert packets
        parses = [c for p in packets for c in p.children
                  if c.name == "parse"]
        assert parses
        assert all(p.end_ns is not None for p in packets)
        assert any(e[1] == "close" for e in flow.events)

    def test_trace_without_metrics(self, http_trace):
        bro = _run(http_trace, metrics=False, trace_flows=True)
        assert bro.telemetry.tracer.roots
        assert bro.telemetry.metrics.collect() == []


class TestReportFiles:
    def test_write_telemetry_and_breakdown(self, tmp_path, http_trace):
        from repro.net.pcap import write_pcap

        pcap = str(tmp_path / "http.pcap")
        write_pcap(pcap, http_trace)
        bro = Bro(
            parsers="pac",
            scripts_engine="hilti",
            print_stream=io.StringIO(),
            telemetry=Telemetry(metrics=True, trace=True),
        )
        bro.run_pcap(pcap)

        logdir = str(tmp_path / "logs")
        written = {p.rsplit("/", 1)[-1] for p in bro.write_telemetry(logdir)}
        assert written == {
            "metrics.jsonl", "stats.log", "prof.log", "flows.jsonl",
            "flow_records.jsonl",
        }

        with open(f"{logdir}/metrics.jsonl") as stream:
            lines = stream.read().splitlines()
        assert validate_metrics_lines(lines) == []
        names = {json.loads(line).get("name") for line in lines[1:]}
        assert "pcap.records_read" in names  # run_pcap fed the reader stats

        report = bro.write_cpu_breakdown(str(tmp_path / "cpu.json"))
        with open(tmp_path / "cpu.json") as stream:
            on_disk = json.load(stream)
        assert on_disk == report
        assert validate_cpu_breakdown(on_disk) == []

        stats_log = (tmp_path / "logs" / "stats.log").read_text()
        assert "[health]" in stats_log and "[engine]" in stats_log
        prof_log = (tmp_path / "logs" / "prof.log").read_text()
        assert "# context scripts" in prof_log
        assert "#profile func/" in prof_log  # compiled scripts instrumented

        flows = [
            json.loads(line)
            for line in (tmp_path / "logs" / "flows.jsonl").read_text()
            .splitlines()
        ]
        assert all(doc["name"] == "flow" for doc in flows)
        assert any("children" in doc for doc in flows)

    def test_cli_flags_end_to_end(self, tmp_path, http_trace, capsys):
        from repro.net.pcap import write_pcap
        from repro.tools.bro import main as bro_main

        pcap = str(tmp_path / "http.pcap")
        write_pcap(pcap, http_trace)
        logdir = str(tmp_path / "logs")
        rc = bro_main([
            "-r", pcap, "--compile-scripts", "--parsers", "pac",
            "--metrics", "--cpu-breakdown", "--trace-flows",
            "--logdir", logdir,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "cpu breakdown:" in out
        with open(f"{logdir}/cpu_breakdown.json") as stream:
            assert validate_cpu_breakdown(json.load(stream)) == []
        with open(f"{logdir}/metrics.jsonl") as stream:
            assert validate_metrics_lines(stream) == []
