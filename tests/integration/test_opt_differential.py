"""Differential tier testing for the optimizer.

The optimizer rewrites the IR the compiled tier executes; the
interpreter deliberately runs the unoptimized module.  For every example
program and benchmark kernel, the observable behaviour at every
optimization level (``-O0``/``-O1``/``-O2``) must be byte-identical to
the interpreted tier — the oracle that lets the benchmark harness
attribute speedups to the pass pipeline rather than to changed
semantics.  ``repro.tools.fuzz`` extends the same oracle to randomly
generated programs; these tests pin the real host applications.
"""

import io
import re
from pathlib import Path

import pytest

from repro.core import hilti_build, hiltic
from repro.core.optimize import OPT_LEVELS
from repro.core.stubs import Stub
from repro.core.values import Addr, Time

REPO = Path(__file__).resolve().parents[2]


def _example_module(stem, index=0):
    text = (REPO / "examples" / f"{stem}.py").read_text()
    return re.findall(r'"""(module .*?)"""', text, re.S)[index]


class TestQuickstartExamples:
    def test_hello_output_identical(self, capsys):
        hello = _example_module("quickstart", 0)
        outputs = []
        for level in OPT_LEVELS:
            hilti_build([hello], opt_level=level).run()
            outputs.append(capsys.readouterr().out)
        assert len(set(outputs)) == 1
        assert outputs[0]  # it does print something

    def test_counter_results_identical(self):
        counter = _example_module("quickstart", 1)

        def drive(program):
            ctx = program.make_context()
            out = []
            program.call(ctx, "Main::bump", [5])
            program.call(ctx, "Main::bump", [37])
            out.append(program.call(ctx, "Main::get"))
            out.append(program.call(ctx, "Main::fib", [18]))
            fresh = program.make_context()
            out.append(program.call(fresh, "Main::get"))
            return out

        compiled = [
            drive(hiltic([counter], tier="compiled", opt_level=level))
            for level in OPT_LEVELS
        ]
        interp = drive(hiltic([counter], tier="interpreted"))
        for result in compiled:
            assert result == interp == [42, 2584, 0]

    def test_suspending_stub_identical(self):
        suspending = _example_module("quickstart", 2)

        def drive(program):
            ctx = program.make_context()
            result = Stub(program, "Main::three_steps").start(ctx)
            steps = 0
            while result.suspended:
                steps += 1
                result = Stub.resume(result)
            return steps, result.value

        results = [
            drive(hiltic([suspending], tier="compiled", opt_level=level))
            for level in OPT_LEVELS
        ]
        assert len(set(results)) == 1


class TestScanDetectorExample:
    def _drive(self, tier, opt_level):
        from repro.lib import SESSION_TABLE

        detector = _example_module("scan_detector", 0)
        program = hiltic([SESSION_TABLE, detector], tier=tier,
                         opt_level=opt_level)
        ctx = program.make_context()
        program.call(ctx, "Scan::init")
        clock = 0.0
        scanner = Addr("198.51.100.99")
        for host in range(1, 60):
            clock += 0.001
            program.call(ctx, "Scan::attempt",
                         [Time(clock), scanner])
            program.call(ctx, "Scan::attempt",
                         [Time(clock), Addr(f"10.10.0.{host % 7}")])
        alerts = ctx.globals[program.linked.global_slot("Scan::alerts")]
        return [str(a) for a in alerts]

    def test_alerts_identical(self):
        interp = self._drive("interpreted", None)
        for level in OPT_LEVELS:
            assert self._drive("compiled", level) == interp
        assert "198.51.100.99" in interp


class TestBpfKernel:
    @pytest.fixture(scope="class")
    def trace(self):
        from repro.net.tracegen import HttpTraceConfig, generate_http_trace

        return generate_http_trace(HttpTraceConfig(sessions=25, seed=7))

    def test_decisions_identical(self, trace):
        from repro.apps.bpf import compile_to_hilti, parse_filter
        from repro.net.packet import parse_ethernet

        ip, __ = parse_ethernet(trace[3][1])
        node = parse_filter(
            f"host {ip.src} or src net 172.16.0.0/16 and port 80"
        )
        frames = [f for __, f in trace]
        variants = [("interp", {"tier": "interpreted"})]
        variants += [
            (f"O{level}", {"tier": "compiled", "opt_level": level})
            for level in OPT_LEVELS
        ]
        decisions = {}
        for key, kwargs in variants:
            hilti_filter = compile_to_hilti(node, **kwargs)
            decisions[key] = bytes(
                1 if hilti_filter(f) else 0 for f in frames
            )
        assert len(set(decisions.values())) == 1
        assert 0 < sum(decisions["interp"]) < len(frames)


class TestScriptKernels:
    def test_fib_identical(self):
        from repro.apps.bro import Bro
        from repro.apps.bro.scripts import FIB_SCRIPT

        variants = [{"scripts_engine": "interp"}]
        variants += [
            {"scripts_engine": "hilti", "opt_level": level}
            for level in OPT_LEVELS
        ]
        results = []
        for kwargs in variants:
            bro = Bro(scripts=[FIB_SCRIPT], print_stream=io.StringIO(),
                      **kwargs)
            results.append(bro.call_function("fib", [18]))
        assert set(results) == {2584}


class TestParserKernel:
    def test_http_logs_identical(self):
        from repro.apps.bro import Bro
        from repro.apps.bro.analyzers.pac import PacParsers
        from repro.net.tracegen import HttpTraceConfig, generate_http_trace

        trace = generate_http_trace(HttpTraceConfig(sessions=8, seed=3))
        logs = {}
        for level in OPT_LEVELS:
            bro = Bro(parsers="pac", pac_parsers=PacParsers(opt_level=level),
                      scripts_engine="hilti", opt_level=level,
                      print_stream=io.StringIO())
            bro.run(trace)
            logs[level] = (
                "\n".join(bro.core.logs.lines("http")),
                "\n".join(bro.core.logs.lines("conn")),
                bro.core.events_dispatched,
            )
        assert len(set(logs.values())) == 1
        assert logs[0][2] > 0
