"""The persistent shared-memory worker pool and its ring transport.

Covers the tentpole of the pool backend (byte-identity with the
sequential oracle, worker reuse across runs, spawn-mode safety) and
the failure semantics of both multiprocessing backends: a worker
killed mid-run is detected by a deadline poll, reaped, its unretired
packets accounted as lost, and the run fails loudly instead of
hanging; the pool additionally survives — the dead worker is
respawned and the next run proceeds normally.

Ring coverage (the satellite checklist): wraparound, full-ring
backpressure, oversized-record rejection, concurrent
producer/consumer stress, and pool reuse across two consecutive runs
with differing traces.
"""

import multiprocessing
import os
import threading

import pytest

from repro.apps.bpf.app import BpfLaneSpec
from repro.host.parallel import ParallelPipeline, default_backend
from repro.host.pool import PoolError, WorkerPool, shutdown_shared_pools
from repro.host.ring import MessageChannel, ShmRing
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    generate_mixed_trace,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    """Close the cached shared pools after this module so their idle
    workers cannot add CPU noise to timing-sensitive suites that run
    later in the same pytest process."""
    yield
    shutdown_shared_pools()

BPF_CONFIG = {"filter": "tcp", "engine": "vm", "opt_level": 2,
              "watchdog_budget": None, "metrics": False, "trace": False}


def _trace(sessions=12, queries=30, seed=5):
    return generate_mixed_trace(HttpTraceConfig(sessions=sessions, seed=seed),
                                DnsTraceConfig(queries=queries, seed=seed))


def _record(i: int) -> bytes:
    # Deterministic pseudo-content with varying record sizes so pushes
    # land on every possible wraparound phase.
    return bytes((i * 7 + j) & 0xFF for j in range(1 + (i * 13) % 97))


class KillerSpec(BpfLaneSpec):
    """A lane spec whose worker dies the moment it builds a lane —
    the OOM-kill stand-in for the death-detection tests."""

    def make_lane(self, uid_map):
        os.kill(os.getpid(), 9)


class BrokenSpec(BpfLaneSpec):
    """A lane spec that raises during lane construction (a survivable
    in-run error: the worker reports it and stays alive)."""

    def make_lane(self, uid_map):
        raise RuntimeError("lane construction exploded")


# --------------------------------------------------------------------------
# The SPSC ring
# --------------------------------------------------------------------------


class TestShmRing:
    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            ShmRing(1000)

    def test_roundtrip(self):
        ring = ShmRing(1 << 12)
        try:
            assert ring.push(b"hello")
            assert ring.push(b"")
            assert ring.pop() == b"hello"
            assert ring.pop() == b""
            assert ring.pop() is None
        finally:
            ring.close()

    def test_wraparound(self):
        """Thousands of variable-size records through a tiny ring hit
        every wraparound phase; every payload must survive intact."""
        ring = ShmRing(1 << 10)
        try:
            expect = []
            sent = 0
            for i in range(4000):
                record = _record(i)
                while not ring.push(record):
                    got = ring.pop()
                    assert got == expect.pop(0)
                expect.append(record)
                sent += 1
            while expect:
                assert ring.pop() == expect.pop(0)
            assert ring.pop() is None
            assert sent == 4000
        finally:
            ring.close()

    def test_full_ring_backpressure(self):
        ring = ShmRing(1 << 10)
        try:
            payload = b"x" * 200
            pushed = 0
            while ring.push(payload):
                pushed += 1
            assert pushed > 0
            assert not ring.push(payload)          # full: refused
            assert not ring.push_wait(payload, timeout=0.05)
            assert ring.pop() == payload           # free one slot
            assert ring.push(payload)              # accepted again
        finally:
            ring.close()

    def test_oversized_record_rejected(self):
        ring = ShmRing(1 << 10)
        try:
            with pytest.raises(ValueError):
                ring.push(b"y" * (1 << 10))  # can never fit (len prefix)
        finally:
            ring.close()

    def test_attach_sees_owner_capacity(self):
        ring = ShmRing(1 << 12)
        try:
            other = ShmRing.attach(ring.name)
            try:
                # shm segments round up to page size; the header keeps
                # the logical capacity authoritative.
                assert other.capacity == 1 << 12
                assert ring.push(b"cross-process")
                assert other.pop() == b"cross-process"
            finally:
                other.close()
        finally:
            ring.close()

    def test_concurrent_producer_consumer_stress(self):
        """One producer thread races one consumer over a small ring;
        FIFO order and payload integrity must hold throughout."""
        ring = ShmRing(1 << 12)
        count = 20000
        errors = []

        def produce():
            for i in range(count):
                if not ring.push_wait(_record(i), timeout=10.0):
                    errors.append(f"push {i} timed out")
                    return

        try:
            producer = threading.Thread(target=produce)
            producer.start()
            for i in range(count):
                got = ring.pop(timeout=10.0)
                if got != _record(i):
                    errors.append(f"record {i} corrupted")
                    break
            producer.join(timeout=30.0)
            assert not errors
            assert ring.pop() is None
        finally:
            ring.close()


class TestMessageChannel:
    def test_message_larger_than_ring_streams_through(self):
        ring = ShmRing(1 << 12)
        channel = MessageChannel(ring)
        payload = bytes((i * 31) & 0xFF for i in range(3 * ring.capacity))
        received = []

        def consume():
            received.append(MessageChannel(ring).recv(timeout=10.0))

        try:
            consumer = threading.Thread(target=consume)
            consumer.start()
            assert channel.send(7, payload, timeout=10.0)
            consumer.join(timeout=30.0)
            assert received == [(7, payload)]
        finally:
            ring.close()

    def test_tagged_messages_in_order(self):
        ring = ShmRing(1 << 12)
        channel = MessageChannel(ring)
        try:
            assert channel.send(1, b"alpha")
            assert channel.send(2, b"beta")
            assert channel.recv() == (1, b"alpha")
            assert channel.recv() == (2, b"beta")
            assert channel.recv() is None
        finally:
            ring.close()


# --------------------------------------------------------------------------
# The worker pool
# --------------------------------------------------------------------------


def _reference_lines(spec, trace, workers):
    pipe = ParallelPipeline(spec, workers=workers, backend="vthread")
    pipe.run(trace)
    return pipe.result_lines()


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestWorkerPool:
    def test_identity_and_reuse_across_differing_traces(self):
        """Two consecutive runs with different traces through the SAME
        pool (no respawn) must each match the vthread oracle — run
        state fully resets between runs."""
        spec = BpfLaneSpec(dict(BPF_CONFIG))
        pool = WorkerPool(2, start_method="fork")
        try:
            first_pids = pool.pids()
            for seed in (5, 11):
                trace = _trace(seed=seed)
                jobs = [(timestamp.nanos, frame)
                        for timestamp, frame in trace]
                shards = [jobs[0::2], jobs[1::2]]
                results = pool.run(spec, {}, shards)
                lines = sorted(
                    line for result in results for line in result["lines"])
                # Oracle: one sequential lane per shard.
                expect = []
                for shard in shards:
                    expect.extend(self._drive_lines(spec, shard))
                assert lines == sorted(expect)
            assert pool.pids() == first_pids  # nobody was respawned
            assert pool.runs_served == 2
        finally:
            pool.close()

    @staticmethod
    def _drive(spec, shard):
        from repro.core.values import Time

        lane = spec.make_lane({})
        lane.on_begin()
        for nanos, frame in shard:
            lane.on_packet(Time.from_nanos(nanos), frame)
        lane.on_end()
        return lane

    @classmethod
    def _drive_lines(cls, spec, shard):
        return spec.lane_result(cls._drive(spec, shard))["lines"]

    def test_pool_backend_matches_vthread_oracle(self):
        spec = BpfLaneSpec(dict(BPF_CONFIG))
        trace = _trace()
        pipe = ParallelPipeline(spec, workers=2, backend="pool")
        pipe.run(trace)
        assert pipe.result_lines() == _reference_lines(spec, trace, 2)

    def test_worker_error_poisons_only_that_run(self):
        """An in-run failure is reported, the run raises, and the SAME
        workers serve the next run — errors don't leak across epochs."""
        trace = _trace(sessions=4, queries=8)
        jobs = [(t.nanos, f) for t, f in trace]
        pool = WorkerPool(1, start_method="fork")
        try:
            with pytest.raises(PoolError, match="exploded"):
                pool.run(BrokenSpec(dict(BPF_CONFIG)), {}, [jobs])
            pids = pool.pids()
            spec = BpfLaneSpec(dict(BPF_CONFIG))
            results = pool.run(spec, {}, [jobs])
            assert pool.pids() == pids  # alive worker was NOT respawned
            assert sorted(results[0]["lines"]) == \
                sorted(self._drive_lines(spec, jobs))
        finally:
            pool.close()

    def test_worker_death_detected_and_respawned(self):
        """A SIGKILLed worker is detected by liveness (not a hang), the
        lost packets are accounted, and the pool replaces the corpse so
        the next run succeeds."""
        trace = _trace(sessions=4, queries=8)
        jobs = [(t.nanos, f) for t, f in trace]
        pool = WorkerPool(1, start_method="fork")
        try:
            with pytest.raises(PoolError) as excinfo:
                pool.run(KillerSpec(dict(BPF_CONFIG)), {}, [jobs],
                         timeout=20.0)
            assert "died" in str(excinfo.value)
            spec = BpfLaneSpec(dict(BPF_CONFIG))
            results = pool.run(spec, {}, [jobs])
            assert sorted(results[0]["lines"]) == \
                sorted(self._drive_lines(spec, jobs))
        finally:
            pool.close()


# --------------------------------------------------------------------------
# Spawn-mode regression (worker entry must be side-effect-free)
# --------------------------------------------------------------------------


@pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method unavailable")
class TestSpawnStartMethod:
    """The worker entries live in :mod:`repro.host.worker`, which a
    ``spawn`` child imports cold — these would hang or crash if the
    entry module dragged in import-time side effects (the original
    bug: worker bodies lived in ``repro.host.parallel``)."""

    def test_pool_backend_under_spawn(self):
        spec = BpfLaneSpec(dict(BPF_CONFIG))
        trace = _trace(sessions=6, queries=12)
        pipe = ParallelPipeline(spec, workers=2, backend="pool",
                                start_method="spawn")
        pipe.run(trace)
        assert pipe.result_lines() == _reference_lines(spec, trace, 2)

    def test_process_backend_under_spawn(self):
        spec = BpfLaneSpec(dict(BPF_CONFIG))
        trace = _trace(sessions=6, queries=12)
        pipe = ParallelPipeline(spec, workers=2, backend="process",
                                start_method="spawn")
        pipe.run(trace)
        assert pipe.result_lines() == _reference_lines(spec, trace, 2)

    def test_worker_module_own_imports_are_clean(self):
        """The entry module's own top-level imports must stay stdlib +
        the ring — the runtime substrate (``Time``, ``PcapReader``) is
        imported lazily inside the worker bodies.  This is the property
        that keeps a spawned child from re-importing application code
        before a run's pickled spec names what to build."""
        import ast
        import inspect

        import repro.host.worker as worker

        tree = ast.parse(inspect.getsource(worker))
        bad = []
        for node in tree.body:
            if isinstance(node, ast.Import):
                bad.extend(a.name for a in node.names
                           if a.name.startswith("repro"))
            elif isinstance(node, ast.ImportFrom):
                # Relative imports of anything but the ring transport
                # (level 2 reaches out of repro.host entirely).
                if node.level >= 2 or (node.level == 1
                                       and node.module != "ring"):
                    bad.append("." * node.level + (node.module or ""))
                elif (node.level == 0 and node.module
                        and node.module.startswith("repro")):
                    bad.append(node.module)
        assert not bad, f"worker entry imports the substrate: {bad}"


# --------------------------------------------------------------------------
# Process-backend death handling (the recv() hang bugfix)
# --------------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestProcessBackendDeath:
    def test_dead_worker_fails_run_instead_of_hanging(self):
        trace = _trace(sessions=4, queries=8)
        pipe = ParallelPipeline(KillerSpec(dict(BPF_CONFIG)), workers=2,
                                backend="process", join_timeout=15.0)
        with pytest.raises(RuntimeError, match="jobs lost"):
            pipe.run(trace)
        assert pipe.jobs_lost > 0

    def test_lost_jobs_cover_the_whole_trace(self):
        trace = _trace(sessions=4, queries=8)
        pipe = ParallelPipeline(KillerSpec(dict(BPF_CONFIG)), workers=2,
                                backend="process", join_timeout=15.0)
        with pytest.raises(RuntimeError):
            pipe.run(trace)
        assert pipe.jobs_lost == len(trace)


# --------------------------------------------------------------------------
# Backend selection
# --------------------------------------------------------------------------


class TestDefaultBackend:
    def test_default_matches_core_count(self, monkeypatch):
        import repro.host.parallel as parallel

        monkeypatch.setattr(parallel, "usable_cpus", lambda: 1)
        assert parallel.default_backend() == "process"
        monkeypatch.setattr(parallel, "usable_cpus", lambda: 8)
        assert parallel.default_backend() == "pool"
        assert default_backend() in ("pool", "process")

    def test_pipeline_resolves_none_backend(self):
        spec = BpfLaneSpec(dict(BPF_CONFIG))
        pipe = ParallelPipeline(spec, workers=1, backend=None)
        assert pipe.backend in ("pool", "process")


# --------------------------------------------------------------------------
# Service pool transport
# --------------------------------------------------------------------------


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestServicePoolTransport:
    def test_pool_lanes_match_thread_lanes(self, tmp_path):
        from repro.apps.bro import Bro
        from repro.apps.bro.parallel import BroLaneSpec
        from repro.host.service import HostService, ServiceConfig

        trace = list(_trace(sessions=8, queries=20, seed=3))
        spec = BroLaneSpec({"scripts": None, "parsers": "std",
                            "scripts_engine": "interp", "log_enabled": True,
                            "watchdog_budget": None, "opt_level": None,
                            "metrics": False, "trace": False})

        def make_app(services):
            return Bro(telemetry=services.telemetry)

        outputs = {}
        for transport in ("thread", "pool"):
            logdir = tmp_path / transport
            config = ServiceConfig(
                lanes=2, lane_transport=transport, http_host=None,
                http_port=None, logdir=str(logdir))
            service = HostService(make_app, list(trace), config, spec=spec)
            assert service.serve() == 0
            totals = service.totals()
            assert totals["packets_ingested"] == len(trace)
            assert totals["packets_processed"] == len(trace)
            assert totals["packets_lost"] == 0
            assert totals["packets_dropped"] == 0
            outputs[transport] = (logdir / "results.log").read_text()
        assert outputs["pool"] == outputs["thread"]

    def test_conservation_in_pool_service_json(self, tmp_path):
        import json

        from repro.apps.bro import Bro
        from repro.apps.bro.parallel import BroLaneSpec
        from repro.host.service import HostService, ServiceConfig

        trace = list(_trace(sessions=4, queries=10, seed=9))
        spec = BroLaneSpec({"scripts": None, "parsers": "std",
                            "scripts_engine": "interp", "log_enabled": True,
                            "watchdog_budget": None, "opt_level": None,
                            "metrics": False, "trace": False})
        config = ServiceConfig(lanes=2, lane_transport="pool",
                               http_host=None, http_port=None,
                               logdir=str(tmp_path))
        service = HostService(lambda services: Bro(), list(trace),
                              config, spec=spec)
        assert service.serve() == 0
        # The discovery file dies with the service; the terminal record
        # lands in service-final.json.
        assert not (tmp_path / "service.json").exists()
        doc = json.loads((tmp_path / "service-final.json").read_text())
        totals = doc["totals"]
        assert totals["packets_ingested"] == (
            totals["packets_processed"] + totals["packets_shed"]
            + totals["packets_lost"] + totals["packets_dropped"])
        assert doc["config"]["lane_transport"] == "pool"

    def test_injection_refused_on_pool_transport(self):
        from repro.host.service import ServiceConfig

        with pytest.raises(ValueError, match="thread lanes"):
            ServiceConfig(lanes=1, lane_transport="pool",
                          inject_rates={"service.lane": 0.5})
