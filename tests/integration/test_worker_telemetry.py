"""The cross-process worker telemetry plane.

The parallel-equivalence oracle for metrics: a ``--backend pool`` (or
any other backend) run must merge its per-worker registries so that

* the unlabeled aggregate series are identical to the sequential
  pipeline's content-determined counters, and
* the ``worker=N``-labeled attribution copies, summed after stripping
  the label, reproduce exactly the same totals

— plus the transport itself: pool workers ship periodic ``TELEM``
snapshots over their rings (surfacing as ``worker.*`` gauges in a
pool-transport service) and per-worker profiler dumps land in a
sectioned ``prof.log``.
"""

import multiprocessing
import os
import time

import pytest

from repro.apps.bpf.app import BpfApp, BpfLaneSpec
from repro.host.app import PipelineServices
from repro.host.parallel import ParallelPipeline
from repro.host.pool import shutdown_shared_pools
from repro.host.service import HostService, ServiceConfig
from repro.host.worker import MSG_TELEM, TELEM_INTERVAL, telemetry_snapshot
from repro.net.replay import TraceReplayer
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    generate_mixed_trace,
    write_pcap,
)
from repro.runtime.telemetry import Telemetry, validate_metrics_lines

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

BACKENDS = ["vthread", "threaded", "process", "pool"]

CONFIG = {"filter": "tcp", "engine": "interpreted", "opt_level": 2,
          "watchdog_budget": None, "metrics": True, "trace": False}

#: Timing/occupancy series that are not content-determined.
_NON_COMPARABLE_PREFIXES = ("bpf.cpu_ns",)


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    shutdown_shared_pools()


@pytest.fixture(scope="module")
def trace():
    return generate_mixed_trace(
        HttpTraceConfig(sessions=20, seed=11),
        DnsTraceConfig(queries=40, seed=11),
    )


@pytest.fixture(scope="module")
def sequential_counters(trace):
    app = BpfApp(CONFIG["filter"], engine=CONFIG["engine"],
                 opt_level=CONFIG["opt_level"],
                 services=PipelineServices(
                     telemetry=Telemetry(metrics=True)))
    app.run(trace)
    return _counters(app.telemetry.metrics.collect())


def _counters(series_dicts, only_worker_labeled=False):
    """Counter series as ``(name, labels-sans-worker) -> value`` sums.

    With *only_worker_labeled* the unlabeled aggregates are excluded,
    so what remains is purely the per-worker attribution copies — the
    label-stripped sum the oracle compares against sequential."""
    out = {}
    for entry in series_dicts:
        if entry["kind"] != "counter":
            continue
        name = entry["name"]
        if name.startswith(_NON_COMPARABLE_PREFIXES):
            continue
        labels = dict(entry.get("labels", {}))
        had_worker = "worker" in labels
        labels.pop("worker", None)
        if only_worker_labeled and not had_worker:
            continue
        if not only_worker_labeled and had_worker:
            continue
        key = (name, tuple(sorted(labels.items())))
        out[key] = out.get(key, 0) + entry["value"]
    return {key: value for key, value in out.items() if value != 0}


class TestCounterSumIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 3])
    def test_all_backends_match_sequential(self, trace,
                                           sequential_counters,
                                           backend, workers):
        pipe = ParallelPipeline(BpfLaneSpec(CONFIG), workers=workers,
                                backend=backend,
                                telemetry=Telemetry(metrics=True))
        pipe.run(trace)
        merged = pipe.telemetry.metrics.collect()
        # The unlabeled aggregate is the sequential run's counters...
        assert _counters(merged) == sequential_counters
        # ...and so is the label-stripped sum of the per-worker copies.
        assert _counters(merged, only_worker_labeled=True) == \
            sequential_counters

    def test_worker_labels_partition_the_total(self, trace):
        pipe = ParallelPipeline(BpfLaneSpec(CONFIG), workers=3,
                                backend="vthread",
                                telemetry=Telemetry(metrics=True))
        pipe.run(trace)
        lanes = int(pipe.stats["lanes"])
        assert lanes > 1
        workers = set()
        for entry in pipe.telemetry.metrics.collect():
            workers.add(entry.get("labels", {}).get("worker"))
        assert {str(i) for i in range(lanes)} <= workers


class TestMergedArtifacts:
    @pytest.mark.parametrize(
        "backend",
        ["vthread", pytest.param(
            "pool", marks=pytest.mark.skipif(
                not HAVE_FORK, reason="pool wants fork"))])
    def test_pool_emits_same_file_family_as_sequential(
            self, trace, backend, tmp_path):
        sequential = BpfApp(CONFIG["filter"], engine=CONFIG["engine"],
                            opt_level=CONFIG["opt_level"],
                            services=PipelineServices(
                                telemetry=Telemetry(metrics=True)))
        from repro.host.pipeline import Pipeline

        Pipeline(sequential).run(trace)
        seq_dir = tmp_path / "seq"
        Pipeline(sequential).write_telemetry(str(seq_dir))

        pipe = ParallelPipeline(BpfLaneSpec(CONFIG), workers=2,
                                backend=backend,
                                telemetry=Telemetry(metrics=True))
        pipe.run(trace)
        par_dir = tmp_path / "par"
        pipe.write_telemetry(str(par_dir))

        seq_files = {p.name for p in seq_dir.iterdir()}
        par_files = {p.name for p in par_dir.iterdir()}
        assert {"metrics.jsonl", "stats.log", "prof.log"} <= seq_files
        assert seq_files == par_files
        errors = validate_metrics_lines(
            (par_dir / "metrics.jsonl").read_text().splitlines())
        assert errors == []

    def test_prof_log_sections_per_worker(self, trace, tmp_path):
        pipe = ParallelPipeline(BpfLaneSpec(CONFIG), workers=2,
                                backend="vthread",
                                telemetry=Telemetry(metrics=True))
        pipe.run(trace)
        pipe.write_telemetry(str(tmp_path))
        text = (tmp_path / "prof.log").read_text()
        lanes = int(pipe.stats["lanes"])
        for index in range(lanes):
            assert f"# worker {index} context filter" in text

    def test_metrics_jsonl_byte_deterministic(self, trace, tmp_path):
        """Two identical runs emit byte-identical metrics.jsonl bodies
        (the header carries a wall-clock ts; every series line after it
        must match)."""
        bodies = []
        for name in ("a", "b"):
            pipe = ParallelPipeline(BpfLaneSpec(CONFIG), workers=2,
                                    backend="vthread",
                                    telemetry=Telemetry(metrics=True))
            pipe.run(trace)
            out = tmp_path / name
            pipe.write_telemetry(str(out))
            lines = (out / "metrics.jsonl").read_text().splitlines()
            bodies.append([line for line in lines
                           if "bpf.cpu_ns" not in line][1:])
        assert bodies[0] == bodies[1]


class TestTelemSnapshot:
    def test_snapshot_shape(self, trace):
        app = BpfApp("tcp", engine="vm",
                     services=PipelineServices(
                         telemetry=Telemetry(metrics=True)))
        app.on_begin()
        for timestamp, frame in trace[:50]:
            app.on_packet(timestamp, frame)
        snapshot = telemetry_snapshot(app, processed=50)
        assert snapshot["processed"] == 50
        assert snapshot["live"]["packets"] == 50.0
        assert isinstance(snapshot["ts"], float)
        # Mid-run the registry is sparse (export happens at on_end) —
        # the series list still rides along, possibly empty.
        assert isinstance(snapshot["series"], list)

    def test_disabled_telemetry_omits_series(self, trace):
        app = BpfApp("tcp", engine="vm",
                     services=PipelineServices(telemetry=Telemetry()))
        app.on_begin()
        snapshot = telemetry_snapshot(app, processed=0)
        assert "series" not in snapshot
        assert "spans_started" not in snapshot

    def test_message_tag_is_distinct(self):
        from repro.host import worker

        tags = [worker.MSG_BEGIN, worker.MSG_DATA, worker.MSG_END,
                worker.MSG_RESULT, worker.MSG_ERROR, worker.MSG_PROGRESS,
                worker.MSG_SHUTDOWN, MSG_TELEM]
        assert len(set(tags)) == len(tags)
        assert 0 < TELEM_INTERVAL < 5


@pytest.mark.skipif(not HAVE_FORK, reason="pool transport wants fork")
class TestServiceWorkerTelemetry:
    def test_pool_service_publishes_worker_gauges(self, tmp_path):
        """A paced pool-transport service run outlives TELEM_INTERVAL,
        so the aggregator must surface ``worker.*`` gauges shipped by
        the workers over their rings — and the drained registry must
        carry the worker-labeled final merge."""
        records = generate_mixed_trace(
            HttpTraceConfig(sessions=10, seed=7),
            DnsTraceConfig(queries=20, seed=7))
        pcap = tmp_path / "svc.pcap"
        write_pcap(str(pcap), records)

        config = ServiceConfig(
            lanes=2, lane_transport="pool", http_host=None,
            http_port=None, tick_seconds=0.05,
            logdir=str(tmp_path / "logs"), app_name="bpf")
        service = None
        replayer = TraceReplayer(
            str(pcap), loops=50, rate=1500.0,
            should_stop=lambda: service.should_stop())
        service = HostService(lambda services: None, replayer, config,
                              spec=BpfLaneSpec(CONFIG))

        def stop_late():
            deadline = time.monotonic() + (TELEM_INTERVAL * 6)
            while time.monotonic() < deadline:
                time.sleep(0.05)
            service.request_stop("test window elapsed")

        import threading

        stopper = threading.Thread(target=stop_late, daemon=True)
        stopper.start()
        code = service.serve()
        stopper.join()
        assert code == 0

        series = {(entry["name"],
                   tuple(sorted(entry.get("labels", {}).items()))): entry
                  for entry in service.metrics.collect()}
        live = [key for key in series
                if key[0] == "worker.packets"]
        assert live, "no TELEM-shipped worker.packets gauges"
        final = [key for key in series
                 if key[0] == "bpf.packets_total"
                 and any(k == "worker" for k, __ in key[1])]
        assert final, "no worker-labeled final merge"
        # The unlabeled aggregate matches the processed total exactly.
        totals = service.totals()
        aggregate = series[("bpf.packets_total", ())]["value"]
        assert aggregate == totals["packets_processed"]
        history = service.history_report(window=600)
        assert history["count"] >= 2
        assert not (tmp_path / "logs" / "service.json").exists()
        assert (tmp_path / "logs" / "timeseries.jsonl").exists()
