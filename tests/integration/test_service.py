"""Streaming service mode: overload resilience end to end.

The paper's target deployments run *continuously* — traffic never
stops, parsers crash on crud, state grows without bound unless someone
bounds it.  These tests cover the service substrate piece by piece
(bounded queues, rolling windows, looped replay, LRU eviction, the
slow-flow watchdog) and then the assembled daemon: supervised lane
restarts with exponential backoff, circuit-breaker escalation, exact
shed accounting, the HTTP control surface, and graceful drain on
SIGTERM for both the batch driver and the service.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

import repro
from repro.apps.binpac.app import PacApp, _DatagramFlow
from repro.apps.bro.main import Bro
from repro.core.values import Addr, Time
from repro.host import (
    BoundedQueue,
    FlowDemux,
    HostApp,
    HostService,
    PipelineServices,
    RollingWindows,
    ServiceConfig,
    SessionLRU,
)
from repro.host.service import _EMPTY, _SENTINEL
from repro.lib.session_table import SessionTable
from repro.net.packet import build_udp_packet
from repro.net.replay import RateLimiter, TraceReplayer
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    generate_mixed_trace,
    write_pcap,
)
from repro.runtime.telemetry import validate_metrics_lines

_SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


@pytest.fixture(scope="module")
def mixed_pcap(tmp_path_factory):
    records = generate_mixed_trace(
        http=HttpTraceConfig(sessions=10, seed=7),
        dns=DnsTraceConfig(queries=20, seed=7),
    )
    path = tmp_path_factory.mktemp("svc") / "mixed.pcap"
    write_pcap(str(path), records)
    return str(path), len(records)


class CountApp(HostApp):
    """The lightest possible HostApp — counts packets, emits lines."""

    name = "count"

    def __init__(self, services=None):
        super().__init__(services)
        self.lines = []

    def packet(self, timestamp, frame):
        self.lines.append(f"pkt {self.packets}")

    def result_lines(self):
        return list(self.lines)


def _invariant(totals):
    return (totals["packets_ingested"]
            == totals["packets_processed"] + totals["packets_shed"]
            + totals["packets_lost"] + totals["packets_dropped"])


def _run_service(pcap, config, make_app=None, loops=2):
    service = None
    replayer = TraceReplayer(
        pcap, loops=loops,
        should_stop=lambda: service.should_stop())
    factory = make_app if make_app is not None else (lambda s: CountApp(s))
    service = HostService(factory, replayer, config)
    code = service.serve()
    return service, code


# --------------------------------------------------------------------------
# BoundedQueue
# --------------------------------------------------------------------------


class TestBoundedQueue:
    def test_fifo_and_high_water(self):
        q = BoundedQueue(4)
        for i in range(3):
            assert q.offer(i)
        assert [q.get(0.1) for _ in range(3)] == [0, 1, 2]
        assert q.high_water == 3
        assert q.puts == 3 and q.gets == 3

    def test_offer_sheds_at_capacity_exactly(self):
        q = BoundedQueue(2)
        assert q.offer("a") and q.offer("b")
        for _ in range(5):
            assert not q.offer("x")
        assert q.shed == 5
        assert len(q) == 2

    def test_put_blocks_until_space(self):
        q = BoundedQueue(1)
        q.offer("a")
        done = []

        def consumer():
            time.sleep(0.05)
            done.append(q.get(1.0))

        t = threading.Thread(target=consumer)
        t.start()
        assert q.put("b", timeout=2.0)
        t.join()
        assert done == ["a"]
        assert q.get(0.1) == "b"

    def test_put_releases_on_should_stop(self):
        q = BoundedQueue(1)
        q.offer("a")
        stop = threading.Event()
        threading.Timer(0.05, stop.set).start()
        t0 = time.monotonic()
        assert not q.put("b", should_stop=stop.is_set)
        assert time.monotonic() - t0 < 2.0
        assert len(q) == 1  # nothing enqueued on a refused put

    def test_put_times_out(self):
        q = BoundedQueue(1)
        q.offer("a")
        assert not q.put("b", timeout=0.05)

    def test_get_timeout_returns_empty_marker(self):
        q = BoundedQueue(1)
        assert q.get(0.01) is _EMPTY

    def test_force_exceeds_capacity(self):
        q = BoundedQueue(1)
        q.offer("a")
        q.force(_SENTINEL)
        assert len(q) == 2

    def test_drain_counts_data_items_only(self):
        q = BoundedQueue(8)
        q.offer("a")
        q.offer("b")
        q.force(_SENTINEL)
        assert q.drain() == 2
        assert len(q) == 0


# --------------------------------------------------------------------------
# RollingWindows
# --------------------------------------------------------------------------


class TestRollingWindows:
    def test_rates_per_window(self):
        w = RollingWindows(windows=(1.0, 10.0))
        for i in range(11):
            w.sample(100.0 + i, {"pkts": i * 50})
        rates = w.rates()
        assert set(rates) == {"1s", "10s"}
        assert rates["1s"]["pkts"]["delta"] == 50
        assert rates["1s"]["pkts"]["per_second"] == pytest.approx(50.0)
        assert rates["10s"]["pkts"]["delta"] == 500
        assert rates["10s"]["pkts"]["per_second"] == pytest.approx(50.0)

    def test_needs_two_samples(self):
        w = RollingWindows()
        assert w.rates() == {}
        w.sample(1.0, {"pkts": 1})
        assert w.rates() == {}

    def test_old_samples_pruned(self):
        w = RollingWindows(windows=(1.0,))
        for i in range(2000):
            w.sample(float(i), {"pkts": i})
        assert len(w._samples) < 50


# --------------------------------------------------------------------------
# TraceReplayer
# --------------------------------------------------------------------------


class TestTraceReplayer:
    def test_loops_multiply_records(self, mixed_pcap):
        path, n = mixed_pcap
        replayer = TraceReplayer(path, loops=3)
        records = list(replayer)
        assert len(records) == 3 * n
        assert replayer.loops_completed == 3

    def test_timestamps_monotone_across_loops(self, mixed_pcap):
        path, n = mixed_pcap
        records = list(TraceReplayer(path, loops=3))
        nanos = [ts.nanos for ts, _ in records]
        assert nanos == sorted(nanos)
        # the loop boundary advances strictly
        assert nanos[n] > nanos[n - 1]

    def test_should_stop_cuts_replay(self, mixed_pcap):
        path, n = mixed_pcap
        seen = []
        replayer = TraceReplayer(path, loops=None,
                                 should_stop=lambda: len(seen) >= 2 * n)
        for record in replayer:
            seen.append(record)
        assert len(seen) <= 2 * n + 1

    def test_rate_limiter_paces(self):
        sleeps = []
        clock = [0.0]

        def fake_clock():
            return clock[0]

        def fake_sleep(dt):
            sleeps.append(dt)
            clock[0] += dt

        limiter = RateLimiter(100.0, clock=fake_clock, sleep=fake_sleep)
        for _ in range(10):
            limiter.wait()
        # 10 packets at 100 pps ≈ 90ms of pacing sleeps
        assert sum(sleeps) == pytest.approx(0.09, abs=0.02)


# --------------------------------------------------------------------------
# SessionLRU
# --------------------------------------------------------------------------


class TestSessionLRU:
    def test_expired_harvests_idle_oldest_first(self):
        lru = SessionLRU()
        lru.touch("a", 1.0)
        lru.touch("b", 2.0)
        lru.touch("c", 9.0)
        assert list(lru.expired(5.0)) == ["a", "b"]
        assert "c" in lru and len(lru) == 1

    def test_overflow_pops_least_recent(self):
        lru = SessionLRU()
        for i, key in enumerate("abcd"):
            lru.touch(key, float(i))
        lru.touch("a", 10.0)  # refresh: now most recent
        assert list(lru.overflow(2)) == ["b", "c"]
        assert set(["d", "a"]) <= set(["d", "a"])
        assert len(lru) == 2


# --------------------------------------------------------------------------
# FlowDemux eviction + slow-flow quarantine
# --------------------------------------------------------------------------


def _udp_frame(host_octet, port=4000, payload=b"x"):
    return build_udp_packet(Addr(f"10.0.0.{host_octet}"),
                            Addr("10.0.1.1"), port, 5555,
                            payload=payload)


class _Sink:
    def __init__(self):
        self.datagrams = 0
        self.ended = False
        self.killed = False

    def datagram(self, is_orig, payload):
        self.datagrams += 1

    def end(self):
        self.ended = True

    def kill(self):
        self.killed = True


class TestFlowDemuxEviction:
    def test_capacity_evicts_least_recent_with_final_flush(self):
        handlers = []

        def factory(flow):
            handlers.append(_Sink())
            return handlers[-1]

        demux = FlowDemux(factory, max_sessions=2)
        for i in range(1, 5):
            demux.feed(_udp_frame(i), now=float(i))
        stats = demux.stats()
        assert stats["sessions_evicted"] == 2
        assert demux.open_flows() == 2
        assert handlers[0].ended and handlers[1].ended
        assert not handlers[2].ended and not handlers[3].ended

    def test_ttl_expires_idle_flows(self):
        handlers = []

        def factory(flow):
            handlers.append(_Sink())
            return handlers[-1]

        demux = FlowDemux(factory, session_ttl=5.0)
        demux.feed(_udp_frame(1), now=0.0)
        demux.feed(_udp_frame(2), now=1.0)
        demux.feed(_udp_frame(2), now=10.0)  # refresh #2, expire #1
        stats = demux.stats()
        assert stats["sessions_expired"] == 1
        assert handlers[0].ended and not handlers[1].ended

    def test_current_flow_never_evicted(self):
        demux = FlowDemux(lambda flow: _Sink(), max_sessions=1)
        for i in range(1, 6):
            demux.feed(_udp_frame(i), now=float(i))
        # the most recent flow always survives its own feed
        assert demux.open_flows() == 1
        snapshot = demux.flow_snapshot()
        assert len(snapshot) == 1
        assert snapshot[0]["last_active"] == 5.0

    def test_unarmed_behavior_unchanged(self):
        demux = FlowDemux(lambda flow: _Sink())
        for i in range(1, 6):
            demux.feed(_udp_frame(i))
        stats = demux.stats()
        assert stats["sessions_evicted"] == 0
        assert stats["sessions_expired"] == 0
        assert demux.open_flows() == 5

    def test_slow_flow_quarantined_not_stalling(self):
        slow_handlers = []

        class SlowSink(_Sink):
            def datagram(self, is_orig, payload):
                super().datagram(is_orig, payload)
                time.sleep(0.03)

        def factory(flow):
            handler = SlowSink() if not slow_handlers else _Sink()
            slow_handlers.append(handler)
            return handler

        quarantined = []
        demux = FlowDemux(factory, flow_budget_ns=int(5e6),
                          on_slow_flow=quarantined.append)
        demux.feed(_udp_frame(1))  # slow: one dispatch, then quarantine
        demux.feed(_udp_frame(2))  # fast flow unaffected
        demux.feed(_udp_frame(1))  # no further payload to the slow flow
        demux.feed(_udp_frame(2))
        assert demux.stats()["flows_quarantined_slow"] == 1
        assert quarantined == [slow_handlers[0]]
        assert slow_handlers[0].killed
        assert slow_handlers[0].datagrams == 1
        assert slow_handlers[1].datagrams == 2


class TestPacAppSlowFlow:
    def test_injected_slow_parser_is_quarantined(self, monkeypatch):
        """Regression: a pathological flow whose parser overruns the
        per-flow budget is quarantined instead of stalling the app."""
        records = generate_mixed_trace(
            dns=DnsTraceConfig(queries=6, seed=7))
        app = PacApp(protocols=("dns",),
                     services=PipelineServices(),
                     flow_budget_ns=int(10e6))
        slowed = []
        original = _DatagramFlow.datagram

        def slow_datagram(self, is_orig, payload):
            if not slowed or self.uid in slowed:
                slowed.append(self.uid)
                time.sleep(0.05)
            original(self, is_orig, payload)

        monkeypatch.setattr(_DatagramFlow, "datagram", slow_datagram)
        app.on_begin()
        for timestamp, frame in records:
            app.on_packet(timestamp, frame)
        stats = app.on_end()
        demux_stats = app.demux.stats()
        assert demux_stats["flows_quarantined_slow"] == 1
        assert app.services.health.watchdog_trips >= 1
        assert app.services.health.flows_quarantined >= 1
        # the other flows kept parsing normally
        assert stats["events"] > 0


# --------------------------------------------------------------------------
# Bro connection eviction
# --------------------------------------------------------------------------


class TestBroEviction:
    def test_capacity_cap_evicts_with_state_remove(self):
        records = generate_mixed_trace(
            http=HttpTraceConfig(sessions=10, seed=7))
        bro = Bro(max_sessions=3)
        bro.run(records)
        sessions = bro.session_stats()
        assert sessions["evicted"] > 0
        assert sessions["open"] <= 3
        baseline = Bro()
        baseline.run(records)
        # eviction delivers connection_state_remove, so the evicting
        # run still observes every connection's finalization
        assert bro.tracker.flows_closed == baseline.tracker.flows_closed

    def test_ttl_expires_idle_connections(self):
        # UDP conversations have no natural teardown, so they linger in
        # the LRU until network time moves past the TTL.  Replay the
        # trace twice with the second pass shifted well beyond the TTL:
        # every first-pass connection is provably idle by the time the
        # second pass arrives, so the first shifted packet harvests all
        # of them.
        records = generate_mixed_trace(
            dns=DnsTraceConfig(queries=20, seed=7))
        span = records[-1][0].seconds - records[0][0].seconds
        ttl = span + 60.0
        shift = 10.0 * ttl
        shifted = [(Time(ts.seconds + shift), frame)
                   for ts, frame in records]
        bro = Bro(session_ttl=ttl)
        bro.run(records + shifted)
        assert bro.session_stats()["expired"] > 0

    def test_unbounded_run_unchanged(self):
        records = generate_mixed_trace(
            http=HttpTraceConfig(sessions=5, seed=7))
        plain = Bro()
        plain.run(records)
        assert plain.session_stats() == {
            "open": plain.session_stats()["open"],
            "evicted": 0, "expired": 0,
        }


# --------------------------------------------------------------------------
# SessionTable entry cap
# --------------------------------------------------------------------------


class TestSessionTableCapacity:
    def test_max_entries_evicts_lru_through_callback(self):
        evicted = []
        table = SessionTable(timeout_seconds=1000.0,
                             factory=lambda: "state",
                             on_evict=evicted.append,
                             max_entries=3)
        for key in ("a", "b", "c"):
            table.get_or_create(key)
        table.get_or_create("a")      # refresh: 'b' is now oldest
        table.get_or_create("d")      # overflow
        table.get_or_create("e")      # overflow
        assert evicted == ["b", "c"]
        assert table.capacity_evictions == 2
        assert len(table) == 3
        assert table.stats()["capacity_evictions"] == 2


# --------------------------------------------------------------------------
# The assembled service
# --------------------------------------------------------------------------


class TestHostService:
    def test_clean_drain_processes_everything(self, mixed_pcap, tmp_path):
        path, n = mixed_pcap
        config = ServiceConfig(lanes=2, queue_capacity=256,
                               tick_seconds=0.05, http_port=None,
                               http_host=None, logdir=str(tmp_path),
                               app_name="count")
        service, code = _run_service(path, config, loops=3)
        totals = service.totals()
        assert code == 0
        assert service.stop_reason == "source exhausted"
        assert totals["packets_ingested"] == 3 * n
        assert totals["packets_processed"] == 3 * n
        assert _invariant(totals)
        # The live discovery file is gone after a graceful drain; the
        # terminal document lands in service-final.json.
        assert not (tmp_path / "service.json").exists()
        doc = json.loads((tmp_path / "service-final.json").read_text())
        assert doc["state"] == "drained" and doc["exit_code"] == 0
        assert doc["schema"] == "repro-service/1"
        assert doc["pid"] == os.getpid()
        assert isinstance(doc["started_ts"], float)
        assert (tmp_path / "results.log").exists()
        assert (tmp_path / "metrics.jsonl").exists()
        assert (tmp_path / "stats.log").exists()
        validate_metrics_lines(
            (tmp_path / "metrics.jsonl").read_text().splitlines())

    def test_block_policy_backpressure_no_loss(self, mixed_pcap, tmp_path):
        path, n = mixed_pcap

        class SlowApp(CountApp):
            def packet(self, timestamp, frame):
                time.sleep(0.0002)
                super().packet(timestamp, frame)

        config = ServiceConfig(lanes=1, queue_capacity=8,
                               overload="block", tick_seconds=0.05,
                               http_port=None, http_host=None,
                               logdir=str(tmp_path), app_name="count")
        service, code = _run_service(path, config,
                                     make_app=lambda s: SlowApp(s),
                                     loops=1)
        totals = service.totals()
        assert code == 0
        assert totals["packets_shed"] == 0
        assert totals["packets_processed"] == n
        assert service.lanes[0].queue.high_water <= 8

    def test_shed_policy_counts_drops_exactly(self, mixed_pcap, tmp_path):
        path, n = mixed_pcap

        class SlowApp(CountApp):
            def packet(self, timestamp, frame):
                time.sleep(0.0005)
                super().packet(timestamp, frame)

        config = ServiceConfig(lanes=1, queue_capacity=8,
                               overload="shed", tick_seconds=0.05,
                               http_port=None, http_host=None,
                               logdir=str(tmp_path), app_name="count")
        service, code = _run_service(path, config,
                                     make_app=lambda s: SlowApp(s),
                                     loops=3)
        totals = service.totals()
        assert code == 0
        assert totals["packets_shed"] > 0
        assert _invariant(totals)
        # shed counter is the per-queue sum, exactly
        assert totals["packets_shed"] == sum(
            lane.queue.shed for lane in service.lanes)

    def test_injected_crashes_restart_with_backoff(self, mixed_pcap,
                                                   tmp_path):
        path, n = mixed_pcap
        config = ServiceConfig(lanes=2, queue_capacity=256,
                               tick_seconds=0.05,
                               backoff_base=0.01, backoff_cap=0.05,
                               healthy_packets=32,
                               inject_rates={"service.lane": 0.005},
                               fault_seed=3, http_port=None,
                               http_host=None, logdir=str(tmp_path),
                               app_name="count")
        service, code = _run_service(path, config, loops=10)
        totals = service.totals()
        assert code == 0
        assert totals["lane_crashes"] > 0
        assert totals["lane_restarts"] > 0
        # every crash not raced by shutdown was restarted
        assert totals["lane_restarts"] >= totals["lane_crashes"] - 2
        assert not any(lane.failed for lane in service.lanes)
        assert sum(lane.backoff_seconds for lane in service.lanes) > 0
        assert _invariant(totals)

    def test_crash_loop_escalates_to_breaker(self, mixed_pcap, tmp_path):
        path, n = mixed_pcap
        config = ServiceConfig(lanes=1, queue_capacity=32,
                               tick_seconds=0.05,
                               backoff_base=0.005, backoff_cap=0.02,
                               breaker_min_starts=4,
                               inject_rates={"service.lane": 0.5},
                               fault_seed=1, http_port=None,
                               http_host=None, logdir=str(tmp_path),
                               app_name="count")
        service, code = _run_service(path, config, loops=2)
        lane = service.lanes[0]
        assert code == 0  # escalation degrades, it does not hang/crash
        assert lane.failed
        assert lane.breaker.tripped
        status, body = service.healthz()
        assert status == 503 and body["status"] == "degraded"
        totals = service.totals()
        assert totals["packets_dropped_failed"] > 0
        assert _invariant(totals)

    def test_http_surface(self, mixed_pcap, tmp_path):
        path, n = mixed_pcap
        config = ServiceConfig(lanes=2, queue_capacity=256,
                               tick_seconds=0.05, http_port=0,
                               logdir=str(tmp_path), app_name="count")
        service = None
        replayer = TraceReplayer(path, loops=None,
                                 should_stop=lambda: service.should_stop())
        service = HostService(lambda s: CountApp(s), replayer, config)
        thread = threading.Thread(target=service.serve, daemon=True)
        thread.start()
        try:
            deadline = time.monotonic() + 10
            while service.http_address is None:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            host, port = service.http_address
            base = f"http://{host}:{port}"

            def fetch(path):
                with urllib.request.urlopen(base + path, timeout=5) as r:
                    return r.status, r.read().decode()

            status, body = fetch("/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

            # wait for windows to fill
            while True:
                assert time.monotonic() < deadline
                status, body = fetch("/stats")
                stats = json.loads(body)
                if stats["windows"]:
                    break
                time.sleep(0.05)
            assert status == 200
            assert stats["totals"]["packets_ingested"] > 0
            assert "1s" in stats["windows"]
            assert len(stats["lanes"]) == 2

            status, body = fetch("/metrics")
            assert status == 200
            validate_metrics_lines(body.splitlines())
            assert "service.packets_ingested" in body

            status, body = fetch("/flows")
            assert status == 200
            assert "flows" in json.loads(body)

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch("/nope")
            assert excinfo.value.code == 404
        finally:
            service.request_stop("test done")
            thread.join(timeout=30)
        assert not thread.is_alive()
        assert service.exit_code == 0


# --------------------------------------------------------------------------
# Graceful shutdown: batch driver (SIGTERM mid-run flushes partials)
# --------------------------------------------------------------------------


@pytest.mark.slow
class TestGracefulShutdown:
    def test_batch_interrupt_flushes_partial_telemetry(self, tmp_path):
        records = generate_mixed_trace(
            http=HttpTraceConfig(sessions=1500, seed=7))
        pcap = tmp_path / "big.pcap"
        write_pcap(str(pcap), records)
        logdir = tmp_path / "logs"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.tools.pac_driver",
             "-r", str(pcap), "--metrics", "--logdir", str(logdir)],
            env=_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        time.sleep(1.5)
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 130, out
        assert "interrupted" in out
        assert (logdir / "events.log").exists()
        assert (logdir / "metrics.jsonl").exists()
        assert (logdir / "stats.log").exists()
        assert (logdir / "events.log").stat().st_size > 0
        validate_metrics_lines(
            (logdir / "metrics.jsonl").read_text().splitlines())

    def test_service_sigterm_drains_exit_zero(self, mixed_pcap, tmp_path):
        path, n = mixed_pcap
        logdir = tmp_path / "logs"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.tools.pac_driver",
             "-r", path, "--serve", "--loops", "0",
             "--lanes", "2", "--tick", "0.2",
             "--max-sessions", "64", "--session-ttl", "30",
             "--logdir", str(logdir)],
            env=_env(), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        try:
            deadline = time.monotonic() + 60
            port = None
            while port is None:
                assert time.monotonic() < deadline, "service.json never came"
                time.sleep(0.2)
                try:
                    doc = json.loads((logdir / "service.json").read_text())
                    if doc.get("state") == "running" and doc.get("http"):
                        port = doc["http"]["port"]
                except (OSError, ValueError):
                    continue
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5) as r:
                assert json.loads(r.read())["status"] == "ok"
        finally:
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0, out
        assert not (logdir / "service.json").exists()
        doc = json.loads((logdir / "service-final.json").read_text())
        assert doc["state"] == "drained" and doc["exit_code"] == 0
        assert (logdir / "events.log").exists()
        assert (logdir / "metrics.jsonl").exists()
        validate_metrics_lines(
            (logdir / "metrics.jsonl").read_text().splitlines())
