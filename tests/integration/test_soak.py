"""Service-mode soak: ≥100k packets, bounded state, exact accounting.

The overload-resilience claims only mean something under sustained
load: the session table must stay flat while flows churn, queue depths
must respect their caps, every shed/dropped/lost packet must be
counted, and injected lane crashes must keep being absorbed by the
supervisor.  These runs push a fixed-seed mixed trace through the
assembled :class:`~repro.host.service.HostService` long enough to see
all of that at once.
"""

import threading
import time

import pytest

from repro.apps.binpac.app import PacApp
from repro.host import HostApp, HostService, ServiceConfig
from repro.net.replay import TraceReplayer
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    SshTraceConfig,
    TftpTraceConfig,
    generate_mixed_trace,
    write_pcap,
)


@pytest.fixture(scope="module")
def soak_pcap(tmp_path_factory):
    records = generate_mixed_trace(
        http=HttpTraceConfig(sessions=25, seed=7),
        dns=DnsTraceConfig(queries=40, seed=7),
        ssh=SshTraceConfig(sessions=10, seed=7),
        tftp=TftpTraceConfig(transfers=12, seed=7),
    )
    path = tmp_path_factory.mktemp("soak") / "mixed.pcap"
    write_pcap(str(path), records)
    return str(path), len(records)


class CountApp(HostApp):
    name = "count"

    def packet(self, timestamp, frame):
        pass


def _invariant(totals):
    return (totals["packets_ingested"]
            == totals["packets_processed"] + totals["packets_shed"]
            + totals["packets_lost"] + totals["packets_dropped"])


@pytest.mark.slow
class TestServiceSoak:
    def test_100k_packets_with_injected_crashes(self, soak_pcap, tmp_path):
        path, n = soak_pcap
        loops = 100_000 // n + 1
        queue_cap = 512
        config = ServiceConfig(
            lanes=2, queue_capacity=queue_cap, overload="block",
            tick_seconds=0.1,
            backoff_base=0.005, backoff_cap=0.02, healthy_packets=64,
            inject_rates={"service.lane": 0.0003}, fault_seed=11,
            http_port=None, http_host=None,
            logdir=str(tmp_path), app_name="count")
        service = None
        replayer = TraceReplayer(
            path, loops=loops,
            should_stop=lambda: service.should_stop())
        service = HostService(lambda s: CountApp(s), replayer, config)
        code = service.serve()
        totals = service.totals()

        assert code == 0
        assert totals["packets_ingested"] >= 100_000
        # packet conservation, exactly — nothing disappears silently
        assert _invariant(totals)
        # the injected crash schedule fired and every crash (bar a
        # shutdown race per lane) was restarted with backoff
        assert totals["lane_crashes"] > 0
        assert totals["lane_restarts"] >= totals["lane_crashes"] - 2
        assert not any(lane.failed for lane in service.lanes)
        assert sum(lane.backoff_seconds for lane in service.lanes) > 0
        # bounded queues held their caps (force() only ever adds the
        # drain sentinel, hence +1)
        for lane in service.lanes:
            assert lane.queue.high_water <= queue_cap + 1
        # block policy: nothing shed
        assert totals["packets_shed"] == 0

    def test_sessions_stay_bounded_under_churn(self, soak_pcap, tmp_path):
        # Block overload so every loop's packets actually reach the
        # lanes (shed on an unpaced replay starves the apps: each
        # queue fills once and everything else is dropped before any
        # flow state can build up).  The mixed trace staggers its
        # protocol phases ~1e5 s apart in network time, so with a TTL
        # of 120 s each phase boundary deterministically expires the
        # previous phase's idle UDP flows, and a cap of 8 forces
        # capacity eviction while a phase's live flows pile up.
        path, n = soak_pcap
        max_sessions = 8
        config = ServiceConfig(
            lanes=2, queue_capacity=128, overload="block",
            tick_seconds=0.05,
            max_sessions=max_sessions, session_ttl=120.0,
            http_port=None, http_host=None,
            logdir=str(tmp_path), app_name="pac")
        service = None
        replayer = TraceReplayer(
            path, loops=4,
            should_stop=lambda: service.should_stop())
        service = HostService(
            lambda s: PacApp(protocols=("http", "dns", "ssh", "tftp"),
                             services=s),
            replayer, config)

        peak_open = [0]
        stop_probe = threading.Event()

        def probe():
            while not stop_probe.is_set():
                open_now = service.session_totals()["open"]
                peak_open[0] = max(peak_open[0], open_now)
                time.sleep(0.02)

        prober = threading.Thread(target=probe, daemon=True)
        prober.start()
        try:
            code = service.serve()
        finally:
            stop_probe.set()
            prober.join(timeout=5)

        totals = service.totals()
        sessions = service.session_totals()
        assert code == 0
        assert _invariant(totals)
        # per-lane caps: occupancy never exceeded max_sessions per lane
        # (+1 for the in-hand flow mid-feed)
        assert peak_open[0] <= config.lanes * (max_sessions + 1)
        # churn actually hit the bound — both eviction flavors did
        # real work (capacity sacrifice and TTL expiry)
        assert sessions["evicted"] > 0
        assert sessions["expired"] > 0
        # block policy: every ingested packet was processed
        assert totals["packets_shed"] == 0
        assert totals["packets_processed"] == totals["packets_ingested"]
