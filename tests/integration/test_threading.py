"""§6.6: the same parser code runs threaded and non-threaded.

The paper verifies HILTI's thread-safety guarantees by load-balancing DNS
traffic across varying numbers of hardware threads, each running the
HILTI-based parser, and checking correct operation.  We reproduce that:
the same compiled parse function processes DNS messages distributed by
flow hash over 1..N virtual threads, and the aggregate results are
identical in every configuration.
"""

import pytest

from repro.core import hiltic
from repro.net.flows import flow_hash, flow_of_frame
from repro.net.packet import parse_ethernet
from repro.net.tracegen import DnsTraceConfig, generate_dns_trace
from repro.runtime.threads import Scheduler

# A HILTI program whose vthreads each count DNS messages and sum txids —
# results live in thread-locals, collected per context afterwards.
_SRC = """module Main
import Hilti

global int<64> messages
global int<64> txid_sum

void process(ref<bytes> payload) {
    local int<64> txid
    txid = unpack payload 0 UInt16Big
    messages = int.incr messages
    txid_sum = int.add txid_sum txid
}

int<64> get_messages() {
    return messages
}

int<64> get_txid_sum() {
    return txid_sum
}
"""


def _dns_payloads(count=120):
    from repro.runtime.bytes_buffer import Bytes

    frames = generate_dns_trace(
        DnsTraceConfig(queries=count, crud_fraction=0.0)
    )
    out = []
    for __, frame in frames:
        ft = flow_of_frame(frame)
        __, udp = parse_ethernet(frame)
        if len(udp.payload) >= 2:
            payload = Bytes(udp.payload)
            payload.freeze()
            out.append((flow_hash(ft), payload))
    return out


def _run(workers: int, vthreads: int, threaded: bool = False):
    program = hiltic([_SRC])
    scheduler = Scheduler(program, workers=workers)
    for fh, payload in _dns_payloads():
        scheduler.schedule(fh % vthreads, "Main::process", (payload,))
    if threaded:
        scheduler.run_threaded()
    else:
        scheduler.run_until_idle()
    total_messages = 0
    total_txids = 0
    for vid, ctx in scheduler.contexts().items():
        total_messages += program.call(ctx, "Main::get_messages")
        total_txids += program.call(ctx, "Main::get_txid_sum")
    return total_messages, total_txids, scheduler


class TestThreadedParsing:
    def test_non_threaded_baseline(self):
        messages, txids, __ = _run(workers=1, vthreads=1)
        assert messages == len(_dns_payloads())

    @pytest.mark.parametrize("workers,vthreads", [
        (1, 4), (2, 8), (4, 16),
    ])
    def test_same_totals_across_configurations(self, workers, vthreads):
        baseline = _run(workers=1, vthreads=1)[:2]
        result = _run(workers=workers, vthreads=vthreads)[:2]
        assert result == baseline

    def test_real_threads_match(self):
        baseline = _run(workers=1, vthreads=1)[:2]
        threaded = _run(workers=4, vthreads=16, threaded=True)[:2]
        assert threaded == baseline

    def test_flow_affinity(self):
        """All messages of one flow land on the same vthread."""
        payloads = _dns_payloads()
        vthreads = 8
        assignments = {}
        for fh, __ in payloads:
            vid = fh % vthreads
            assignments.setdefault(fh, set()).add(vid)
        assert all(len(v) == 1 for v in assignments.values())

    def test_no_errors_in_any_configuration(self):
        __, ___, scheduler = _run(workers=3, vthreads=12)
        assert scheduler.errors == []


class TestThreadedBinpacParser:
    """§6.6 verbatim: the *BinPAC++-generated DNS parser* itself runs
    load-balanced across virtual threads, with per-thread counters kept
    in thread-local globals via a hook module."""

    @staticmethod
    def _build():
        from repro.apps.binpac.codegen import Parser
        from repro.apps.binpac.grammars import dns_grammar
        from repro.core import types as ht
        from repro.core.builder import ModuleBuilder

        mb = ModuleBuilder("Count")
        mb.global_var("messages", ht.INT64)
        fb = mb.hook("DNS::Message::%done", [("obj", ht.ANY)])
        bumped = fb.temp(ht.INT64, "bumped")
        fb.emit("int.incr", fb.var("messages"), target=bumped)
        fb.emit("assign", bumped, target=fb.var("messages"))
        fb.ret()
        getter = mb.function("get", [], ht.INT64)
        getter.ret(getter.var("messages"))
        return Parser(dns_grammar(), extra_modules=[mb.finish()])

    def _payloads(self):
        from repro.runtime.bytes_buffer import Bytes

        frames = generate_dns_trace(
            DnsTraceConfig(queries=60, crud_fraction=0.0)
        )
        out = []
        for __, frame in frames:
            ft = flow_of_frame(frame)
            __ip, udp = parse_ethernet(frame)
            payload = Bytes(udp.payload)
            payload.freeze()
            out.append((flow_hash(ft), payload))
        return out

    @pytest.mark.parametrize("workers,vthreads", [(1, 1), (2, 8), (4, 16)])
    def test_parser_counts_identical_across_configs(self, workers,
                                                    vthreads):
        parser = self._build()
        scheduler = Scheduler(parser.program, workers=workers)
        payloads = self._payloads()
        for fh, payload in payloads:
            scheduler.schedule(
                fh % vthreads, "DNS::Message::parse",
                (payload, payload.begin()),
            )
        scheduler.run_until_idle()
        assert scheduler.errors == []
        total = sum(
            parser.program.call(ctx, "Count::get")
            for ctx in scheduler.contexts().values()
        )
        assert total == len(payloads)

    def test_copied_iterator_points_at_copied_buffer(self):
        """The scheduler's deep copy must keep (bytes, iterator) pairs
        internally consistent."""
        from repro.runtime.bytes_buffer import Bytes
        from repro.runtime.channels import deep_copy_value

        buffer = Bytes(b"abcdef")
        buffer.freeze()
        copied_buffer, copied_iter = deep_copy_value(
            (buffer, buffer.begin())
        )
        assert copied_iter.bytes_obj is copied_buffer
        assert copied_buffer is not buffer
