"""Fault injection end-to-end: the recovery policy under deliberate failure.

The acceptance oracle for the robustness layer (docs/ROBUSTNESS.md):
with deterministic faults armed at every registered injection point over
a crud-bearing HTTP+DNS trace, the pipeline must complete, quarantine
only the affected flows, and leave the analysis of unaffected flows
byte-identical to a fault-free run of the same seed.  A clean trace with
no injector must report an all-zero health report, and overloading the
pac tier must demonstrably trip the circuit breaker into std fallback.
"""

import io

import pytest

from repro.apps.bro import Bro
from repro.net.pcap import write_pcap
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    generate_dns_trace,
    generate_http_trace,
)
from repro.runtime.faults import (
    SITE_ANALYZER_DISPATCH,
    SITE_BINPAC_PARSE,
    SITE_SCRIPT_CALL,
    FaultInjector,
    registered_sites,
)

FAULT_SEED = 1337


@pytest.fixture(scope="module")
def mixed_trace():
    """HTTP + DNS with crud_fraction >= 0.05, merged by timestamp."""
    http = generate_http_trace(HttpTraceConfig(
        sessions=30, seed=21, crud_fraction=0.05))
    dns = generate_dns_trace(DnsTraceConfig(
        queries=80, seed=22, crud_fraction=0.05))
    return sorted(http + dns, key=lambda p: p[0].nanos)


@pytest.fixture(scope="module")
def clean_trace():
    http = generate_http_trace(HttpTraceConfig(
        sessions=20, seed=31, crud_fraction=0.0))
    dns = generate_dns_trace(DnsTraceConfig(
        queries=50, seed=32, crud_fraction=0.0))
    return sorted(http + dns, key=lambda p: p[0].nanos)


def _run(trace, injector=None, parsers="pac", watchdog=None, **kw):
    bro = Bro(parsers=parsers, scripts_engine="interp",
              print_stream=io.StringIO(), fault_injector=injector,
              watchdog_budget=watchdog, **kw)
    stats = bro.run(trace)
    stats["health"] = bro.core.health.as_dict(bro.core.faults)
    return bro, stats


def _uids(lines, column=1):
    return [line.split("\t")[column] for line in lines]


class TestAllSitesInjection:
    """Faults at every registered site: completion plus accounting."""

    def test_pipeline_survives_and_accounts(self, mixed_trace):
        injector = FaultInjector.everywhere(seed=FAULT_SEED, rate=0.02)
        bro, stats = _run(mixed_trace, injector)
        health = stats["health"]
        # Faults actually fired, at more than one site.
        assert health["injected_faults"] > 0
        assert len([s for s, n in injector.injected.items() if n]) > 1
        # The run still produced analysis output.
        assert len(bro.log_lines("conn")) > 0
        assert len(bro.log_lines("http")) > 0
        # Every contained fault left an audit record: quarantines write
        # one weird line each, and so do dropped events.
        weird = bro.log_lines("weird")
        assert len(weird) >= health["flows_quarantined"]
        # Quarantined flows are real flows from this run.  A weird uid
        # may legitimately miss from conn.log only when that flow's
        # connection_state_remove event was itself eaten by a fault.
        conn_uids = set(_uids(bro.log_lines("conn")))
        flow_uids = [uid for uid in _uids(weird) if uid != "(empty)"]
        dropped_removes = sum(
            1 for line in weird if "connection_state_remove" in line)
        missing = [uid for uid in flow_uids if uid not in conn_uids]
        assert len(missing) <= dropped_removes
        for uid in flow_uids:
            assert uid.startswith("C")

    def test_identical_seed_identical_outcome(self, mixed_trace):
        """The whole faulted run is reproducible from the seed."""
        a_bro, a = _run(mixed_trace,
                        FaultInjector.everywhere(seed=FAULT_SEED, rate=0.02))
        b_bro, b = _run(mixed_trace,
                        FaultInjector.everywhere(seed=FAULT_SEED, rate=0.02))
        assert a["health"] == b["health"]
        assert a_bro.log_lines("conn") == b_bro.log_lines("conn")
        assert a_bro.log_lines("weird") == b_bro.log_lines("weird")


class TestQuarantineIsolation:
    """Flow-level faults must not leak into unaffected flows."""

    def test_unaffected_flows_identical_to_clean_run(self, mixed_trace):
        # Sites below cannot destroy packets or flows, only analyses:
        # the conn.log of the faulted run must match the fault-free run
        # except for connection_state_remove events the injector ate.
        injector = FaultInjector(seed=FAULT_SEED, rates={
            SITE_BINPAC_PARSE: 0.05,
            SITE_ANALYZER_DISPATCH: 0.05,
            SITE_SCRIPT_CALL: 0.02,
        })
        # breaker_threshold > 1 keeps the circuit breaker out of the
        # picture: a tier fallback changes what *later, unaffected*
        # flows log (std extracts less), which is exactly the tier
        # degradation the breaker tests cover — here we isolate
        # per-flow quarantine.
        clean_bro, __ = _run(mixed_trace, None, breaker_threshold=2.0)
        fault_bro, stats = _run(mixed_trace, injector,
                                breaker_threshold=2.0)
        health = stats["health"]
        assert health["injected_faults"] > 0
        assert health["flows_quarantined"] > 0

        clean_conn = clean_bro.log_lines("conn")
        fault_conn = fault_bro.log_lines("conn")
        # A dropped connection_state_remove is the only way to lose a
        # conn.log line at these sites; each one is audited in weird.log.
        dropped_removes = sum(
            1 for line in fault_bro.log_lines("weird")
            if "connection_state_remove" in line
        )
        assert len(fault_conn) + dropped_removes == len(clean_conn)
        # Flows never named in weird.log got the identical conn.log line.
        weird_uids = set(_uids(fault_bro.log_lines("weird")))
        clean_by_uid = {line.split("\t")[1]: line for line in clean_conn}
        for line in fault_conn:
            uid = line.split("\t")[1]
            if uid not in weird_uids:
                assert clean_by_uid[uid] == line

    def test_quarantine_disables_only_that_flow(self, mixed_trace):
        injector = FaultInjector(seed=FAULT_SEED,
                                 rates={SITE_ANALYZER_DISPATCH: 0.05})
        clean_bro, __ = _run(mixed_trace, None, breaker_threshold=2.0)
        fault_bro, stats = _run(mixed_trace, injector,
                                breaker_threshold=2.0)
        assert stats["health"]["flows_quarantined"] > 0
        # Unquarantined HTTP flows still produced their http.log lines.
        weird_uids = set(_uids(fault_bro.log_lines("weird")))
        clean_http = [line for line in clean_bro.log_lines("http")
                      if line.split("\t")[1] not in weird_uids]
        fault_http = [line for line in fault_bro.log_lines("http")
                      if line.split("\t")[1] not in weird_uids]
        assert clean_http == fault_http


class TestCircuitBreaker:
    def test_pac_overload_degrades_to_std(self, mixed_trace):
        """Forcing pac analyzers to violate beyond the threshold must
        finish the run on std analyzers and report the fallback."""
        injector = FaultInjector(seed=FAULT_SEED,
                                 rates={SITE_BINPAC_PARSE: 1.0})
        bro, stats = _run(mixed_trace, injector,
                          breaker_threshold=0.25, breaker_min_flows=8)
        health = stats["health"]
        assert health["breaker"]["tripped"] is True
        assert health["tier_fallback"] is True
        assert bro.core.health.tier_fallbacks > 0
        # Flows created after the trip run std analyzers, which don't
        # pass through the binpac.parse site — so analysis kept going.
        assert len(bro.log_lines("http")) > 0
        assert len(bro.log_lines("dns")) > 0

    def test_no_trip_under_light_faults(self, mixed_trace):
        injector = FaultInjector(seed=FAULT_SEED,
                                 rates={SITE_BINPAC_PARSE: 0.02})
        __, stats = _run(mixed_trace, injector)
        assert stats["health"]["tier_fallback"] is False


class TestWatchdog:
    def test_budget_quarantines_and_counts(self, mixed_trace):
        bro, stats = _run(mixed_trace, None, watchdog=200)
        health = stats["health"]
        assert health["watchdog_trips"] > 0
        assert health["flows_quarantined"] >= health["watchdog_trips"] > 0
        # The pipeline completed: every flow still has its conn line.
        clean_bro, __ = _run(mixed_trace, None)
        assert len(bro.log_lines("conn")) == \
            len(clean_bro.log_lines("conn"))

    def test_generous_budget_never_trips(self, mixed_trace):
        __, stats = _run(mixed_trace, None, watchdog=100_000_000)
        assert stats["health"]["watchdog_trips"] == 0


class TestCleanTraceHealth:
    @pytest.mark.parametrize("parsers", ["std", "pac"])
    def test_all_zero_on_clean_trace(self, clean_trace, parsers):
        __, stats = _run(clean_trace, None, parsers=parsers)
        health = stats["health"]
        assert health["flows_quarantined"] == 0
        assert health["records_skipped"] == 0
        assert health["watchdog_trips"] == 0
        assert health["injected_faults"] == 0
        assert health["tier_fallback"] is False
        assert set(health["site_errors"]) == set(registered_sites())
        assert all(count == 0
                   for count in health["site_errors"].values())


class TestTolerantTraceReading:
    def test_corrupt_pcap_skipped_and_reported(self, tmp_path, clean_trace):
        path = str(tmp_path / "corrupt.pcap")
        write_pcap(path, clean_trace)
        with open(path, "r+b") as f:
            f.seek(0, 2)
            f.truncate(f.tell() - 7)  # chop mid-record
        bro = Bro(parsers="std", scripts_engine="interp",
                  print_stream=io.StringIO())
        stats = bro.run_pcap(path, tolerant=True)
        assert stats["health"]["records_skipped"] == 1
        assert len(bro.log_lines("conn")) > 0

    def test_strict_mode_raises_io_error(self, tmp_path, clean_trace):
        from repro.net.pcap import PcapError

        path = str(tmp_path / "corrupt2.pcap")
        write_pcap(path, clean_trace)
        with open(path, "r+b") as f:
            f.seek(0, 2)
            f.truncate(f.tell() - 7)
        bro = Bro(parsers="std", scripts_engine="interp",
                  print_stream=io.StringIO())
        with pytest.raises(PcapError):
            bro.run_pcap(path)
