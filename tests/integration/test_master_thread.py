"""§7 "Global State": the master-thread pattern over channels.

"Host applications can generally deploy message passing for
communication between threads, and potentially designate a single
'master' thread for managing state that requires global visibility."
Worker vthreads process their share and report results over a channel;
vthread 0 — the master — aggregates.  No shared mutable state anywhere,
and the channel deep-copies every message.
"""

from repro.core import hiltic
from repro.runtime.channels import Channel
from repro.runtime.threads import Scheduler

_SRC = """module Main
import Hilti

global int<64> local_count
global ref<channel<any>> report_channel
global int<64> master_total

void set_channel(ref<channel<any>> c) {
    report_channel = c
}

void work(int<64> amount) {
    local_count = int.add local_count amount
}

void report() {
    channel.write report_channel local_count
}

void collect() {
    local int<64> size
    size = channel.size report_channel
head:
    local bool empty
    empty = int.eq size 0
    if.else empty done take
take:
    local int<64> v
    v = channel.read report_channel
    master_total = int.add master_total v
    size = int.decr size
    jump head
done:
    return
}

int<64> get_master_total() {
    return master_total
}
"""


class TestMasterThreadPattern:
    def test_workers_report_to_master_over_channel(self):
        program = hiltic([_SRC])
        scheduler = Scheduler(program, workers=3)
        channel = Channel()
        workers = range(1, 9)
        # The channel object is shared by handing it to each vthread
        # explicitly (channels are the sanctioned cross-thread type).
        for vid in workers:
            ctx = scheduler.context_for(vid)
            program.call(ctx, "Main::set_channel", [channel])
        master = scheduler.context_for(0)
        program.call(master, "Main::set_channel", [channel])

        for vid in workers:
            for __ in range(vid):  # vthread v does v units of work
                scheduler.schedule(vid, "Main::work", (1,))
        scheduler.run_until_idle()
        for vid in workers:
            scheduler.schedule(vid, "Main::report", ())
        scheduler.run_until_idle()

        program.call(master, "Main::collect")
        assert program.call(master, "Main::get_master_total") == \
            sum(workers)

    def test_thread_locals_stay_private(self):
        program = hiltic([_SRC])
        scheduler = Scheduler(program, workers=2)
        scheduler.schedule(1, "Main::work", (5,))
        scheduler.schedule(2, "Main::work", (7,))
        scheduler.run_until_idle()
        slot = program.linked.global_slot("Main::local_count")
        assert scheduler.context_for(1).globals[slot] == 5
        assert scheduler.context_for(2).globals[slot] == 7
