"""The cross-backend flow-record identity oracle (docs/FLOWS.md).

Every host application seals its flows through the one shared
:class:`~repro.host.flowtable.FlowTable`, and the claim the ledger
makes is the strongest observable one: the sorted record stream — and
therefore the ``flow_records.jsonl`` file — is a pure function of
trace content, **byte-identical** between the sequential pipeline and
every parallel backend (deterministic vthread scheduler, real threads,
one process per worker, the persistent shared-memory pool) at any
worker count.  This holds even though bpf and firewall lanes inject
faults and assign record uids independently: the ledger feed bypasses
the fault-injected parse, and the dispatcher pre-assigns uids in
global arrival order.
"""

import json
import multiprocessing

import pytest

from repro.apps.binpac.app import PacApp, PacLaneSpec
from repro.apps.bpf.app import BpfApp, BpfLaneSpec
from repro.apps.bro import Bro, ParallelBro
from repro.apps.firewall.app import FirewallApp, FirewallLaneSpec
from repro.apps.firewall.rules import RuleSet
from repro.host import ParallelPipeline
from repro.host.pool import shutdown_shared_pools
from repro.net.flowrecord import (
    FLOWRECORDS_SCHEMA,
    validate_flowrecord_lines,
    write_flowrecords_jsonl,
)
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    SshTraceConfig,
    TftpTraceConfig,
    generate_mixed_trace,
)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

BACKENDS = ["vthread", "threaded", "process", "pool"]

FILTER = "tcp and port 80"

RULES = """
10.0.0.0/8   172.16.0.0/12  deny
10.0.0.0/8   *              allow
*            *              deny
"""


def _needs_fork(backend):
    if backend in ("process", "pool") and not HAVE_FORK:
        pytest.skip("fork start method unavailable")


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pools():
    yield
    shutdown_shared_pools()


@pytest.fixture(scope="module")
def mixed_trace():
    return generate_mixed_trace(
        http=HttpTraceConfig(sessions=25, seed=7),
        dns=DnsTraceConfig(queries=40, seed=7),
        ssh=SshTraceConfig(sessions=10, seed=7),
        tftp=TftpTraceConfig(transfers=12, seed=7),
    )


def _lane_config(**extra):
    config = {"watchdog_budget": None, "metrics": False, "trace": False}
    config.update(extra)
    return config


def _spec(name):
    if name == "bpf":
        return BpfLaneSpec(_lane_config(
            filter=FILTER, engine="compiled", opt_level=None))
    if name == "firewall":
        return FirewallLaneSpec(_lane_config(
            rules=RULES, timeout_seconds=5.0, engine="compiled",
            opt_level=None))
    return PacLaneSpec(_lane_config(
        protocols=("http", "dns", "ssh", "tftp"), opt_level=None))


@pytest.fixture(scope="module")
def baselines(mixed_trace):
    """Sequential record streams: the oracle every backend must hit."""
    out = {}
    app = BpfApp(FILTER)
    app.run(mixed_trace)
    out["bpf"] = app.flow_record_lines()
    app = FirewallApp(RuleSet.parse(RULES, timeout_seconds=5.0))
    app.run(mixed_trace)
    out["firewall"] = app.flow_record_lines()
    app = PacApp()
    app.run(mixed_trace)
    out["pac"] = app.flow_record_lines()
    return out


class TestBpfBackendMatrix:
    """The full 4-backend x {1,3}-worker oracle on one app."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [1, 3])
    def test_records_match_sequential(self, mixed_trace, baselines,
                                      backend, workers):
        _needs_fork(backend)
        pipe = ParallelPipeline(_spec("bpf"), workers=workers,
                                backend=backend)
        pipe.run(mixed_trace)
        assert pipe.flow_record_lines() == baselines["bpf"]


class TestEveryAppEveryBackend:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", ["firewall", "pac"])
    def test_records_match_sequential(self, mixed_trace, baselines,
                                      name, backend):
        _needs_fork(backend)
        pipe = ParallelPipeline(_spec(name), workers=3, backend=backend)
        pipe.run(mixed_trace)
        assert pipe.flow_record_lines() == baselines[name]


class TestBroRecords:
    @pytest.fixture(scope="class")
    def bro_trace(self):
        return generate_mixed_trace(
            HttpTraceConfig(sessions=20, seed=11),
            DnsTraceConfig(queries=40, seed=11),
        )

    @pytest.fixture(scope="class")
    def bro_baseline(self, bro_trace):
        bro = Bro()
        bro.run(bro_trace)
        return bro.flow_record_lines()

    @pytest.mark.parametrize(
        "backend",
        ["vthread",
         pytest.param("pool", marks=pytest.mark.skipif(
             not HAVE_FORK, reason="fork start method unavailable"))])
    def test_records_match_sequential(self, bro_trace, bro_baseline,
                                      backend):
        parallel = ParallelBro(workers=3, backend=backend)
        parallel.run(bro_trace)
        assert parallel.flow_record_lines() == bro_baseline
        assert bro_baseline  # the oracle is not vacuous

    def test_uids_are_bro_conn_uids(self, bro_baseline):
        uids = {json.loads(line)["uid"] for line in bro_baseline}
        assert all(uid and uid.startswith("C") for uid in uids)


class TestWrittenFiles:
    """flow_records.jsonl itself: schema-valid, and byte-identical
    between a sequential write and a parallel-merge write."""

    def test_file_identity_and_schema(self, mixed_trace, baselines,
                                      tmp_path):
        seq_path = write_flowrecords_jsonl(
            str(tmp_path / "seq.jsonl"), "bpf", baselines["bpf"])
        pipe = ParallelPipeline(_spec("bpf"), workers=3,
                                backend="vthread")
        pipe.run(mixed_trace)
        par_path = write_flowrecords_jsonl(
            str(tmp_path / "par.jsonl"), "bpf",
            pipe.flow_record_lines())
        with open(seq_path, "rb") as stream:
            seq_bytes = stream.read()
        with open(par_path, "rb") as stream:
            par_bytes = stream.read()
        assert seq_bytes == par_bytes

        lines = seq_bytes.decode().splitlines()
        assert validate_flowrecord_lines(lines) == []
        header = json.loads(lines[0])
        assert header["schema"] == FLOWRECORDS_SCHEMA
        assert header["app"] == "bpf"
        assert header["records"] == len(baselines["bpf"]) > 0

    def test_every_app_stream_schema_valid(self, baselines):
        from repro.net.flowrecord import flowrecords_header_line

        for name, lines in baselines.items():
            assert lines, name
            header = flowrecords_header_line(name, len(lines))
            assert validate_flowrecord_lines([header] + lines) == [], \
                name
