"""End-to-end: the paper's evaluation pipeline on small traces.

Covers the four configurations of §6.4/§6.5 — {std, pac} parsers ×
{interp, hilti} script engines — and the normalization-based log
agreement methodology of Tables 2 and 3.
"""

import io

import pytest

from repro.apps.bro import Bro, normalize_log
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    generate_dns_trace,
    generate_http_trace,
)


@pytest.fixture(scope="module")
def http_trace():
    return generate_http_trace(HttpTraceConfig(sessions=25, seed=11))


@pytest.fixture(scope="module")
def dns_trace():
    return generate_dns_trace(DnsTraceConfig(queries=150, seed=12))


def _run(trace, parsers="std", engine="interp", pac=None):
    bro = Bro(parsers=parsers, scripts_engine=engine,
              print_stream=io.StringIO(), pac_parsers=pac)
    bro.run(trace)
    return bro


class TestHttpLogs:
    def test_std_interp_produces_logs(self, http_trace):
        bro = _run(http_trace)
        assert len(bro.log_lines("http")) > 0
        assert len(bro.log_lines("files")) > 0
        line = bro.log_lines("http")[0]
        fields = line.split("\t")
        assert len(fields) == 15  # all http.log columns

    def test_table2_http_agreement_high(self, http_trace):
        std = _run(http_trace, parsers="std")
        pac = _run(http_trace, parsers="pac")
        a = normalize_log(std.log_lines("http"), drop_columns=(0,))
        b = normalize_log(pac.log_lines("http"), drop_columns=(0,))
        same = len(set(a) & set(b))
        # Paper: 98.91% identical; tolerate a small band on tiny traces.
        assert same / len(a) > 0.9

    def test_table3_script_tiers_identical(self, http_trace):
        interp = _run(http_trace, engine="interp")
        hilti = _run(http_trace, engine="hilti")
        assert normalize_log(interp.log_lines("http")) == \
            normalize_log(hilti.log_lines("http"))
        assert normalize_log(interp.log_lines("files")) == \
            normalize_log(hilti.log_lines("files"))

    def test_stats_report_components(self, http_trace):
        bro = _run(http_trace, engine="hilti")
        stats = bro.stats
        assert stats["parsing_ns"] > 0
        assert stats["script_ns"] >= 0
        assert stats["glue_ns"] > 0
        assert stats["total_ns"] >= (
            stats["parsing_ns"] + stats["script_ns"] + stats["glue_ns"]
        ) * 0.5


class TestDnsLogs:
    def test_dns_log_written(self, dns_trace):
        bro = _run(dns_trace)
        assert len(bro.log_lines("dns")) > 0

    def test_table2_dns_agreement_very_high(self, dns_trace):
        std = _run(dns_trace, parsers="std")
        pac = _run(dns_trace, parsers="pac")
        a = normalize_log(std.log_lines("dns"), drop_columns=(0,))
        b = normalize_log(pac.log_lines("dns"), drop_columns=(0,))
        same = len(set(a) & set(b))
        assert same / len(a) > 0.99

    def test_table3_dns_identical(self, dns_trace):
        interp = _run(dns_trace, engine="interp")
        hilti = _run(dns_trace, engine="hilti")
        assert normalize_log(interp.log_lines("dns")) == \
            normalize_log(hilti.log_lines("dns"))

    def test_nxdomain_logged(self, dns_trace):
        bro = _run(dns_trace)
        rcodes = {line.split("\t")[11] for line in bro.log_lines("dns")}
        assert "NOERROR" in rcodes
        assert "NXDOMAIN" in rcodes


class TestAllFourConfigurations:
    def test_same_http_log_all_tiers(self, http_trace):
        """pac parsers with both engines; std with both engines — the
        script tier must never change the log, the parser tier only in
        the known semantic corners."""
        results = {}
        from repro.apps.bro.analyzers.pac import PacParsers

        pac = PacParsers()
        for parsers in ("std", "pac"):
            for engine in ("interp", "hilti"):
                bro = _run(http_trace, parsers=parsers, engine=engine,
                           pac=pac if parsers == "pac" else None)
                results[(parsers, engine)] = normalize_log(
                    bro.log_lines("http")
                )
        assert results[("std", "interp")] == results[("std", "hilti")]
        assert results[("pac", "interp")] == results[("pac", "hilti")]


class TestPcapDriver:
    def test_run_pcap(self, tmp_path, http_trace):
        from repro.net.pcap import write_pcap

        path = str(tmp_path / "trace.pcap")
        write_pcap(path, http_trace)
        bro = Bro(print_stream=io.StringIO())
        stats = bro.run_pcap(path)
        assert stats["packets"] == len(http_trace)
        assert len(bro.log_lines("http")) > 0
