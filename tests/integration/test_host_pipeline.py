"""The shared host-application substrate, end to end (§4-§6).

The paper's central architectural claim is that one execution
environment serves many host applications.  These tests drive all four
exemplars — the BPF filter, the stateful firewall, the standalone
BinPAC++ driver, and Bro — through the same ``repro.host.Pipeline``
over one fixed-seed mixed trace, and check the three properties the
substrate promises every app:

* the run completes with sensible per-app results,
* the telemetry it exports passes the shared schema validators, and
* the flow-parallel drive fingerprints byte-identically to the
  sequential run, for every backend.
"""

import json

import pytest

from repro.apps.binpac.app import PacApp, PacLaneSpec
from repro.apps.bpf.app import BpfApp, BpfLaneSpec
from repro.apps.bro import Bro
from repro.apps.firewall.app import (
    FirewallApp,
    FirewallLaneSpec,
    host_pair_key,
    host_pair_place,
)
from repro.apps.firewall.rules import RuleSet
from repro.host import ParallelPipeline, Pipeline
from repro.host.cli import fingerprint
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    SshTraceConfig,
    TftpTraceConfig,
    generate_mixed_trace,
    write_pcap,
)
from repro.runtime.telemetry import (
    Telemetry,
    validate_cpu_breakdown,
    validate_metrics_lines,
)

BACKENDS = ("vthread", "threaded", "process")

FILTER = "tcp and port 80"

RULES = """
10.0.0.0/8   172.16.0.0/12  deny
10.0.0.0/8   *              allow
*            *              deny
"""


def _mixed_packets():
    return generate_mixed_trace(
        http=HttpTraceConfig(sessions=25, seed=7),
        dns=DnsTraceConfig(queries=40, seed=7),
        ssh=SshTraceConfig(sessions=10, seed=7),
        tftp=TftpTraceConfig(transfers=12, seed=7),
    )


@pytest.fixture(scope="module")
def mixed_pcap(tmp_path_factory):
    path = tmp_path_factory.mktemp("host") / "mixed.pcap"
    write_pcap(str(path), _mixed_packets())
    return str(path)


def _lane_config(**extra):
    config = {"watchdog_budget": None, "metrics": False, "trace": False}
    config.update(extra)
    return config


def _seq(app, pcap):
    stats = Pipeline(app).run_pcap(pcap)
    return stats, app.result_lines()


class TestSequentialApps:
    def test_bpf(self, mixed_pcap):
        app = BpfApp(FILTER)
        stats, lines = _seq(app, mixed_pcap)
        assert stats["app"] == "bpf"
        assert app.accepted > 0 and app.rejected > 0
        assert app.accepted + app.rejected == stats["packets"]
        assert len(lines) == app.accepted

    def test_firewall(self, mixed_pcap):
        app = FirewallApp(RuleSet.parse(RULES, timeout_seconds=5.0))
        stats, lines = _seq(app, mixed_pcap)
        assert app.allowed > 0 and app.denied > 0
        # Every TCP/UDP packet gets exactly one decision line.
        assert len(lines) == app.allowed + app.denied
        assert app.allowed + app.denied + app.ignored == stats["packets"]

    def test_pac(self, mixed_pcap):
        app = PacApp()
        stats, lines = _seq(app, mixed_pcap)
        assert app.events == len(lines) > 0
        # Crud traffic in the fixture parses with contained errors, not
        # quarantines.
        assert app.parse_errors <= 3
        assert stats["health"]["flows_quarantined"] == 0
        assert app.demux.flows_ignored == 0
        events = {line.split()[2] for line in lines}
        assert {"HTTP::Request", "HTTP::Reply", "DNS::Message",
                "SSH::Banner", "TFTP::Packet"} <= events

    def test_pac_protocol_subset(self, mixed_pcap):
        app = PacApp(protocols=("ssh",))
        __, lines = _seq(app, mixed_pcap)
        assert lines
        assert {line.split()[2] for line in lines} == {"SSH::Banner"}
        # Non-SSH flows are counted but not parsed.
        assert app.demux.flows_ignored > 0

    def test_bro(self, mixed_pcap):
        bro = Bro()
        stats = bro.run_pcap(mixed_pcap)
        assert stats["packets"] > 0
        assert stats["events"] > 0
        assert bro.result_lines()


class TestTelemetrySchema:
    """Every app's exported telemetry passes the shared validators."""

    def _apps(self):
        def fresh_services():
            return None  # each app builds its own enabled Telemetry

        yield "bpf", BpfApp(FILTER, services=self._services())
        yield "firewall", FirewallApp(
            RuleSet.parse(RULES, timeout_seconds=5.0),
            services=self._services())
        yield "pac", PacApp(services=self._services())

    @staticmethod
    def _services():
        from repro.host.app import PipelineServices
        return PipelineServices(
            telemetry=Telemetry(metrics=True, trace=True))

    @pytest.mark.parametrize("name", ["bpf", "firewall", "pac"])
    def test_schema(self, mixed_pcap, tmp_path, name):
        app = dict(self._apps())[name]
        pipe = Pipeline(app)
        pipe.run_pcap(mixed_pcap)
        logdir = tmp_path / name
        paths = pipe.write_telemetry(str(logdir))
        by_name = {p.rsplit("/", 1)[-1]: p for p in paths}
        assert "metrics.jsonl" in by_name
        with open(by_name["metrics.jsonl"]) as stream:
            assert validate_metrics_lines(stream) == []
        assert "stats.log" in by_name
        report = pipe.cpu_breakdown()
        assert validate_cpu_breakdown(report) == []
        # flows.jsonl lines are JSON span trees.
        if "flows.jsonl" in by_name:
            with open(by_name["flows.jsonl"]) as stream:
                for line in stream:
                    json.loads(line)

    def test_cpu_breakdown_file(self, mixed_pcap, tmp_path):
        app = BpfApp(FILTER, services=self._services())
        pipe = Pipeline(app)
        pipe.run_pcap(mixed_pcap)
        path = str(tmp_path / "cpu.json")
        report = pipe.write_cpu_breakdown(path)
        with open(path) as stream:
            assert json.load(stream) == report
        assert validate_cpu_breakdown(report) == []


class TestParallelFingerprints:
    """The merged parallel result stream is byte-identical to the
    sequential one, for every app and every backend."""

    @pytest.fixture(scope="class")
    def baselines(self, mixed_pcap):
        out = {}
        app = BpfApp(FILTER)
        Pipeline(app).run_pcap(mixed_pcap)
        out["bpf"] = fingerprint(app.result_lines())
        app = FirewallApp(RuleSet.parse(RULES, timeout_seconds=5.0))
        Pipeline(app).run_pcap(mixed_pcap)
        out["firewall"] = fingerprint(app.result_lines())
        app = PacApp()
        Pipeline(app).run_pcap(mixed_pcap)
        out["pac"] = fingerprint(app.result_lines())
        return out

    def _spec(self, name):
        if name == "bpf":
            return BpfLaneSpec(_lane_config(
                filter=FILTER, engine="compiled", opt_level=None))
        if name == "firewall":
            return FirewallLaneSpec(_lane_config(
                rules=RULES, timeout_seconds=5.0, engine="compiled",
                opt_level=None))
        return PacLaneSpec(_lane_config(
            protocols=("http", "dns", "ssh", "tftp"), opt_level=None))

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", ["bpf", "firewall", "pac"])
    def test_identical(self, mixed_pcap, baselines, name, backend):
        pipe = ParallelPipeline(self._spec(name), workers=3,
                                backend=backend)
        stats = pipe.run_pcap(mixed_pcap)
        assert fingerprint(pipe.result_lines()) == baselines[name]
        assert stats["backend"] == backend
        assert stats["lanes"] >= 1

    def test_worker_counts(self, mixed_pcap, baselines):
        for workers in (1, 2, 4):
            pipe = ParallelPipeline(self._spec("pac"), workers=workers,
                                    backend="vthread")
            pipe.run_pcap(mixed_pcap)
            assert fingerprint(pipe.result_lines()) == baselines["pac"]

    def test_parallel_metrics_schema(self, mixed_pcap, tmp_path):
        import io

        pipe = ParallelPipeline(
            BpfLaneSpec(_lane_config(filter=FILTER, engine="compiled",
                                     opt_level=None, metrics=True)),
            workers=2, backend="vthread",
            telemetry=Telemetry(metrics=True))
        pipe.run_pcap(mixed_pcap)
        paths = pipe.write_telemetry(str(tmp_path))
        by_name = {p.rsplit("/", 1)[-1]: p for p in paths}
        with open(by_name["metrics.jsonl"]) as stream:
            assert validate_metrics_lines(stream) == []


class TestFirewallSharding:
    """Host-pair placement is direction-symmetric — the invariant that
    makes the stateful firewall safe to parallelize."""

    def test_symmetry(self, mixed_pcap):
        from repro.net.flows import flow_of_frame
        from repro.net.pcap import read_pcap

        seen = 0
        for __, frame in read_pcap(mixed_pcap):
            flow = flow_of_frame(frame)
            if flow is None:
                continue
            rev = flow.reversed()
            assert host_pair_key(flow) == host_pair_key(rev)
            for vthreads in (1, 3, 8):
                assert (host_pair_place(flow, vthreads)
                        == host_pair_place(rev, vthreads))
            seen += 1
        assert seen > 0


class TestFaultContainment:
    """Injected faults and watchdog trips are contained per app with
    the shared health accounting."""

    def _injector(self, site, rate):
        from repro.runtime.faults import FaultInjector
        return FaultInjector(seed=1, rates={site: rate})

    def test_bpf_fail_safe_reject(self, mixed_pcap):
        from repro.host.app import PipelineServices
        from repro.runtime.faults import SITE_ANALYZER_DISPATCH

        services = PipelineServices(
            faults=self._injector("analyzer.dispatch", 0.2))
        app = BpfApp(FILTER, services=services)
        stats = Pipeline(app).run_pcap(mixed_pcap)
        assert app.errors > 0
        assert stats["health"]["site_errors"]["analyzer.dispatch"] > 0
        # Erroring packets were rejected, never accepted.
        assert app.accepted + app.rejected == stats["packets"]

    def test_pac_quarantine(self, mixed_pcap):
        from repro.host.app import PipelineServices

        services = PipelineServices(
            faults=self._injector("binpac.parse", 0.05))
        app = PacApp(services=services)
        stats = Pipeline(app).run_pcap(mixed_pcap)
        health = stats["health"]
        assert health["flows_quarantined"] > 0
        assert health["site_errors"]["binpac.parse"] > 0

    def test_pac_watchdog(self, mixed_pcap):
        from repro.host.app import PipelineServices

        services = PipelineServices(watchdog_budget=50)
        app = PacApp(services=services)
        stats = Pipeline(app).run_pcap(mixed_pcap)
        assert stats["health"]["watchdog_trips"] > 0
