"""Regression tests for the concurrency bugfix sweep.

Three bugs, each with a test that fails on the pre-fix code:

* ``Scheduler._run_job`` mutated ``jobs_run``/``errors`` unlocked — two
  ``run_threaded`` workers interleaving the read-modify-write lost
  updates.
* A non-HILTI exception escaping a job killed its ``run_threaded``
  worker thread; the drained-detection then never fired and ``join()``
  hung the caller forever.
* ``Channel.write``/``read`` passed the caller's full timeout to every
  ``Condition.wait`` in the retry loop, so each wakeup restarted the
  clock and a contended channel could block far past the timeout.
"""

import sys
import threading
import time
import types

import pytest

from repro.runtime.channels import Channel
from repro.runtime.exceptions import HiltiError, INTERNAL_ERROR
from repro.runtime.threads import Scheduler


class _CountingProgram:
    """Minimal scheduler program: contexts count their calls."""

    def make_context(self, vthread_id):
        return types.SimpleNamespace(vthread_id=vthread_id, count=0)

    def init_context(self, ctx):
        pass

    def call(self, ctx, function, args):
        if function == "boom":
            raise ValueError("kaboom")
        ctx.count += 1


class TestSchedulerCounterRaces:
    def test_jobs_run_survives_thread_stress(self):
        """Lost-update check: with a tiny switch interval the GIL hands
        off mid-increment constantly; the counter must still be exact."""
        jobs = 3000
        scheduler = Scheduler(_CountingProgram(), workers=4)
        for i in range(jobs):
            scheduler.schedule(i % 32, "tick", ())
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            executed = scheduler.run_threaded()
        finally:
            sys.setswitchinterval(old_interval)
        assert executed == jobs
        assert scheduler.jobs_run == jobs
        assert scheduler.errors == []
        assert sum(ctx.count for ctx in
                   scheduler.contexts().values()) == jobs

    def test_concurrent_context_creation_is_single(self):
        """Every vthread ends up with exactly one context even when all
        workers create contexts simultaneously."""
        scheduler = Scheduler(_CountingProgram(), workers=4)
        for vid in range(64):
            scheduler.schedule(vid, "tick", ())
        scheduler.run_threaded()
        contexts = scheduler.contexts()
        assert len(contexts) == 64
        assert all(ctx.count == 1 for ctx in contexts.values())
        assert all(contexts[vid].vthread_id == vid for vid in contexts)


class TestThreadedWorkerSurvival:
    def test_escaping_exception_does_not_hang_join(self):
        """Pre-fix: the ValueError killed worker 0, its queued jobs never
        drained, and the sibling workers waited forever."""
        jobs = 200
        scheduler = Scheduler(_CountingProgram(), workers=2)
        for i in range(jobs):
            scheduler.schedule(i % 8, "boom" if i % 10 == 0 else "tick", ())
        done = []

        def drive():
            done.append(scheduler.run_threaded())

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        driver.join(timeout=30)
        assert not driver.is_alive(), "run_threaded hung after worker death"
        assert done and done[0] == jobs
        assert scheduler.jobs_run == jobs

    def test_escapes_recorded_as_internal_errors(self):
        scheduler = Scheduler(_CountingProgram(), workers=2)
        for i in range(40):
            scheduler.schedule(i % 4, "boom" if i % 4 == 0 else "tick", ())
        scheduler.run_threaded()
        assert len(scheduler.errors) == 10
        assert all(e.matches(INTERNAL_ERROR) for e in scheduler.errors)
        assert all("kaboom" in str(e) for e in scheduler.errors)

    def test_deterministic_mode_still_propagates(self):
        """run_until_idle keeps its debugging contract: a non-HILTI
        escape is a host bug and surfaces to the caller."""
        scheduler = Scheduler(_CountingProgram(), workers=1)
        scheduler.schedule(0, "boom", ())
        with pytest.raises(ValueError):
            scheduler.run_until_idle()


class TestChannelDeadlines:
    def test_write_timeout_is_a_deadline(self):
        """Repeated wakeups on a still-full channel must not restart the
        timeout clock (the notifier pokes the condition directly to
        simulate full→full transitions / spurious wakeups)."""
        channel = Channel(capacity=1)
        channel.write_try("occupant")
        stop = threading.Event()

        def pinger():
            while not stop.is_set():
                with channel._not_full:
                    channel._not_full.notify()
                time.sleep(0.01)

        poker = threading.Thread(target=pinger, daemon=True)
        poker.start()
        begin = time.monotonic()
        try:
            with pytest.raises(HiltiError):
                channel.write("blocked", timeout=0.3)
        finally:
            stop.set()
            poker.join()
        elapsed = time.monotonic() - begin
        assert 0.25 <= elapsed < 2.0

    def test_read_timeout_is_a_deadline(self):
        channel = Channel()
        stop = threading.Event()

        def pinger():
            while not stop.is_set():
                with channel._not_empty:
                    channel._not_empty.notify()
                time.sleep(0.01)

        poker = threading.Thread(target=pinger, daemon=True)
        poker.start()
        begin = time.monotonic()
        try:
            with pytest.raises(HiltiError):
                channel.read(timeout=0.3)
        finally:
            stop.set()
            poker.join()
        elapsed = time.monotonic() - begin
        assert 0.25 <= elapsed < 2.0

    def test_write_succeeds_when_space_appears_before_deadline(self):
        channel = Channel(capacity=1)
        channel.write_try("occupant")

        def consume_later():
            time.sleep(0.1)
            channel.read_try()

        helper = threading.Thread(target=consume_later)
        helper.start()
        channel.write("second", timeout=5.0)  # must not raise
        helper.join()
        assert channel.read_try() == "second"
