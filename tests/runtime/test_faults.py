"""The fault-injection framework: determinism, budgets, recovery policy."""

import pytest

from repro.runtime.exceptions import (
    EXCEPTION_BASE,
    HiltiError,
    INJECTED_FAULT,
    PROCESSING_TIMEOUT,
)
from repro.runtime.faults import (
    NULL_INJECTOR,
    SITE_ANALYZER_DISPATCH,
    SITE_BINPAC_PARSE,
    SITE_PACKET_PARSE,
    SITE_PCAP_RECORD,
    SITE_SCRIPT_CALL,
    SITE_TCP_REASSEMBLY,
    CircuitBreaker,
    FaultError,
    FaultInjector,
    HealthReport,
    classify,
    register_site,
    registered_sites,
)

ALL_SITES = [
    SITE_PCAP_RECORD, SITE_PACKET_PARSE, SITE_TCP_REASSEMBLY,
    SITE_BINPAC_PARSE, SITE_ANALYZER_DISPATCH, SITE_SCRIPT_CALL,
]


def _schedule(injector, site, passes=200):
    """Indices at which the injector fires over *passes* checks."""
    fired = []
    for i in range(passes):
        try:
            injector.check(site)
        except FaultError:
            fired.append(i)
    return fired


class TestRegistry:
    def test_pipeline_sites_registered(self):
        sites = registered_sites()
        for site in ALL_SITES:
            assert site in sites
            assert sites[site]  # has a description

    def test_register_idempotent(self):
        before = registered_sites()
        assert register_site(SITE_PCAP_RECORD, "other text") \
            == SITE_PCAP_RECORD
        assert registered_sites() == before


class TestFaultError:
    def test_is_typed_hilti_exception(self):
        error = FaultError(SITE_BINPAC_PARSE)
        assert isinstance(error, HiltiError)
        assert error.matches(INJECTED_FAULT)
        assert error.matches(EXCEPTION_BASE)
        assert not error.matches(PROCESSING_TIMEOUT)
        assert error.site == SITE_BINPAC_PARSE


class TestFaultInjector:
    def test_deterministic_per_seed(self):
        a = FaultInjector(seed=7, rates={SITE_SCRIPT_CALL: 0.1})
        b = FaultInjector(seed=7, rates={SITE_SCRIPT_CALL: 0.1})
        assert _schedule(a, SITE_SCRIPT_CALL) == \
            _schedule(b, SITE_SCRIPT_CALL)

    def test_different_seeds_differ(self):
        a = FaultInjector(seed=1, rates={SITE_SCRIPT_CALL: 0.2})
        b = FaultInjector(seed=2, rates={SITE_SCRIPT_CALL: 0.2})
        assert _schedule(a, SITE_SCRIPT_CALL) != \
            _schedule(b, SITE_SCRIPT_CALL)

    def test_sites_have_independent_streams(self):
        """Changing one site's rate must not shift another's schedule."""
        a = FaultInjector(seed=3, rates={
            SITE_SCRIPT_CALL: 0.1, SITE_BINPAC_PARSE: 0.0,
        })
        b = FaultInjector(seed=3, rates={
            SITE_SCRIPT_CALL: 0.1, SITE_BINPAC_PARSE: 0.9,
        })
        # Interleave checks at both sites, as the pipeline would.
        fired_a, fired_b = [], []
        for i in range(200):
            for injector, fired in ((a, fired_a), (b, fired_b)):
                try:
                    injector.check(SITE_BINPAC_PARSE)
                except FaultError:
                    pass
                try:
                    injector.check(SITE_SCRIPT_CALL)
                except FaultError:
                    fired.append(i)
        assert fired_a == fired_b

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(seed=0)
        assert _schedule(injector, SITE_PACKET_PARSE) == []
        assert injector.total_injected == 0

    def test_rate_one_always_fires(self):
        injector = FaultInjector(seed=0, rates={SITE_PACKET_PARSE: 1.0})
        assert _schedule(injector, SITE_PACKET_PARSE, passes=10) == \
            list(range(10))
        assert injector.injected[SITE_PACKET_PARSE] == 10

    def test_max_faults_budget(self):
        injector = FaultInjector(seed=0, rates={SITE_PACKET_PARSE: 1.0},
                                 max_faults=3)
        fired = _schedule(injector, SITE_PACKET_PARSE, passes=10)
        assert fired == [0, 1, 2]
        assert injector.total_injected == 3

    def test_everywhere_covers_all_sites(self):
        injector = FaultInjector.everywhere(seed=0, rate=1.0)
        for site in registered_sites():
            with pytest.raises(FaultError):
                injector.check(site)

    def test_null_injector_is_inert(self):
        for site in ALL_SITES:
            NULL_INJECTOR.check(site)
        assert NULL_INJECTOR.total_injected == 0
        assert NULL_INJECTOR.rate_for(SITE_SCRIPT_CALL) == 0.0


class TestCircuitBreaker:
    def test_no_trip_below_min_flows(self):
        breaker = CircuitBreaker(threshold=0.25, min_flows=8)
        for _ in range(5):
            breaker.record_flow()
            breaker.record_violation()
        assert not breaker.tripped  # 100% violating but only 5 flows

    def test_trips_above_threshold(self):
        breaker = CircuitBreaker(threshold=0.25, min_flows=8)
        for _ in range(10):
            breaker.record_flow()
        for _ in range(2):
            breaker.record_violation()
        assert not breaker.tripped  # 2/10 <= 0.25
        breaker.record_violation()
        assert breaker.tripped  # 3/10 > 0.25

    def test_stays_tripped(self):
        breaker = CircuitBreaker(threshold=0.0, min_flows=1)
        breaker.record_flow()
        breaker.record_violation()
        assert breaker.tripped
        for _ in range(100):
            breaker.record_flow()
        assert breaker.tripped

    def test_as_dict(self):
        breaker = CircuitBreaker(threshold=0.5, min_flows=2)
        breaker.record_flow()
        assert breaker.as_dict() == {
            "flows": 1, "violations": 0, "threshold": 0.5,
            "tripped": False,
        }


class TestHealthReport:
    def test_zero_filled_site_errors(self):
        report = HealthReport()
        health = report.as_dict()
        for site in ALL_SITES:
            assert health["site_errors"][site] == 0
        assert health["flows_quarantined"] == 0
        assert health["records_skipped"] == 0
        assert health["watchdog_trips"] == 0
        assert health["injected_faults"] == 0
        assert health["tier_fallback"] is False

    def test_error_budget_counters(self):
        report = HealthReport()
        report.record_error(SITE_BINPAC_PARSE)
        report.record_error(SITE_BINPAC_PARSE)
        report.record_error(SITE_SCRIPT_CALL)
        assert report.errors_at(SITE_BINPAC_PARSE) == 2
        assert report.errors_at(SITE_PACKET_PARSE) == 0
        assert report.total_errors == 3
        assert report.as_dict()["site_errors"][SITE_BINPAC_PARSE] == 2

    def test_reports_injector_activity(self):
        injector = FaultInjector(seed=0, rates={SITE_SCRIPT_CALL: 1.0})
        with pytest.raises(FaultError):
            injector.check(SITE_SCRIPT_CALL)
        report = HealthReport()
        assert report.as_dict(injector)["injected_faults"] == 1


class TestClassify:
    def test_injected(self):
        assert classify(FaultError(SITE_SCRIPT_CALL)) == "injected_fault"

    def test_watchdog(self):
        error = HiltiError(PROCESSING_TIMEOUT, "budget exhausted")
        assert classify(error) == "watchdog_timeout"

    def test_other(self):
        assert classify(HiltiError(EXCEPTION_BASE, "boom")) \
            == "analyzer_violation"
