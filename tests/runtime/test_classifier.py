"""Packet classification: linear (the paper's) and trie implementations."""

import pytest
from hypothesis import given, strategies as st

from repro.core.values import Addr, Network, Port
from repro.runtime.classifier import (
    LinearClassifier,
    TrieClassifier,
    make_classifier,
)
from repro.runtime.exceptions import HiltiError


def _build(cls):
    c = cls(2)
    c.add((Network("10.3.2.1/32"), Network("10.1.0.0/16")), True)
    c.add((Network("10.12.0.0/16"), Network("10.1.0.0/16")), False)
    c.add((Network("10.1.6.0/24"), None), True)
    c.add((Network("10.1.7.0/24"), None), True)
    c.compile()
    return c


@pytest.mark.parametrize("cls", [LinearClassifier, TrieClassifier])
class TestFirstMatch:
    def test_exact_rule(self, cls):
        c = _build(cls)
        assert c.get((Addr("10.3.2.1"), Addr("10.1.99.1"))) is True

    def test_deny_rule(self, cls):
        c = _build(cls)
        assert c.get((Addr("10.12.5.5"), Addr("10.1.0.9"))) is False

    def test_wildcard_rule(self, cls):
        c = _build(cls)
        assert c.get((Addr("10.1.6.200"), Addr("8.8.8.8"))) is True

    def test_no_match_raises(self, cls):
        c = _build(cls)
        with pytest.raises(HiltiError):
            c.get((Addr("1.2.3.4"), Addr("5.6.7.8")))
        assert not c.matches((Addr("1.2.3.4"), Addr("5.6.7.8")))

    def test_order_decides(self, cls):
        c = cls(1)
        c.add((Network("10.0.0.0/8"),), "first")
        c.add((Network("10.1.0.0/16"),), "second")
        c.compile()
        # 10.1.x matches both; the earlier (less specific!) rule wins —
        # first-match, not best-match semantics.
        assert c.get((Addr("10.1.2.3"),)) == "first"


class TestDiscipline:
    def test_add_after_compile_rejected(self):
        c = LinearClassifier(1)
        c.compile()
        with pytest.raises(HiltiError):
            c.add((None,), True)

    def test_get_before_compile_rejected(self):
        c = LinearClassifier(1)
        c.add((None,), True)
        with pytest.raises(HiltiError):
            c.get((Addr("1.1.1.1"),))

    def test_field_count_checked(self):
        c = LinearClassifier(2)
        with pytest.raises(HiltiError):
            c.add((None,), True)

    def test_factory(self):
        assert isinstance(make_classifier(1, "linear"), LinearClassifier)
        assert isinstance(make_classifier(1, "trie"), TrieClassifier)
        with pytest.raises(HiltiError):
            make_classifier(1, "hash")

    def test_exact_value_fields(self):
        c = LinearClassifier(2)
        c.add((Network("10.0.0.0/8"), Port(80, "tcp")), "web")
        c.compile()
        assert c.get((Addr("10.9.9.9"), Port(80, "tcp"))) == "web"
        assert not c.matches((Addr("10.9.9.9"), Port(443, "tcp")))


_nets = st.builds(
    lambda value, length: Network(Addr.from_v4_int(value), length),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)
_rules = st.lists(
    st.tuples(st.one_of(st.none(), _nets), st.one_of(st.none(), _nets),
              st.integers()),
    min_size=0, max_size=15,
)
_addrs = st.builds(Addr.from_v4_int,
                   st.integers(min_value=0, max_value=(1 << 32) - 1))


class TestLinearTrieEquivalence:
    @given(_rules, st.lists(st.tuples(_addrs, _addrs), max_size=10))
    def test_same_results(self, rules, keys):
        linear = LinearClassifier(2)
        trie = TrieClassifier(2)
        for src, dst, value in rules:
            linear.add((src, dst), value)
            trie.add((src, dst), value)
        linear.compile()
        trie.compile()
        for key in keys:
            a = linear.lookup(key)
            b = trie.lookup(key)
            assert a == b
