"""Fibers (suspend/resume) and the virtual-thread scheduler."""

import pytest

from repro.core import hiltic
from repro.core.values import Addr
from repro.runtime.exceptions import HiltiError
from repro.runtime.fibers import Fiber, FiberStats, YIELDED
from repro.runtime.threads import Scheduler

_COUNTER_SRC = """module Main
import Hilti

global int<64> counter

void bump(int<64> amount) {
    counter = int.add counter amount
}

int<64> get_counter() {
    return counter
}

void fan_out() {
    thread.schedule bump (1) 7
    thread.schedule bump (2) 7
    thread.schedule bump (5) 12
}
"""

_YIELDING_SRC = """module Main
import Hilti

int<64> stepper() {
    local int<64> x
    x = 1
    yield
    x = int.add x 10
    yield
    x = int.add x 100
    return x
}
"""


class TestFibers:
    def test_generator_fiber(self):
        def gen():
            yield
            yield
            return 42

        fiber = Fiber(gen())
        assert fiber.resume() is YIELDED
        assert not fiber.done
        assert fiber.resume() is YIELDED
        assert fiber.resume() == 42
        assert fiber.done
        assert fiber.result == 42

    def test_resume_after_done_raises(self):
        def gen():
            return 1
            yield

        fiber = Fiber(gen())
        fiber.resume()
        with pytest.raises(HiltiError):
            fiber.resume()

    def test_stats(self):
        stats = FiberStats()

        def gen():
            yield
            return None

        fiber = Fiber(gen(), stats=stats)
        fiber.resume()
        fiber.resume()
        assert stats.created == 1
        assert stats.switches == 2
        assert stats.completed == 1

    def test_abort(self):
        def gen():
            yield
            return 1

        fiber = Fiber(gen())
        fiber.resume()
        fiber.abort()
        assert fiber.done

    def test_hilti_yield_suspends(self):
        program = hiltic([_YIELDING_SRC])
        ctx = program.make_context()
        fiber = program.call_fiber(ctx, "Main::stepper")
        assert fiber.resume() is YIELDED
        assert fiber.resume() is YIELDED
        assert fiber.resume() == 111


class TestScheduler:
    def test_jobs_update_vthread_locals(self):
        program = hiltic([_COUNTER_SRC])
        scheduler = Scheduler(program, workers=2)
        scheduler.schedule(7, "Main::bump", (1,))
        scheduler.schedule(7, "Main::bump", (2,))
        scheduler.schedule(12, "Main::bump", (5,))
        assert scheduler.run_until_idle() == 3
        ctx7 = scheduler.context_for(7)
        ctx12 = scheduler.context_for(12)
        assert program.call(ctx7, "Main::get_counter") == 3
        assert program.call(ctx12, "Main::get_counter") == 5

    def test_thread_schedule_instruction(self):
        program = hiltic([_COUNTER_SRC])
        scheduler = Scheduler(program, workers=3)
        ctx = scheduler.context_for(0)
        program.call(ctx, "Main::fan_out")
        scheduler.run_until_idle()
        assert program.call(
            scheduler.context_for(7), "Main::get_counter") == 3
        assert program.call(
            scheduler.context_for(12), "Main::get_counter") == 5

    def test_same_vthread_serializes(self):
        program = hiltic([_COUNTER_SRC])
        scheduler = Scheduler(program, workers=4)
        for __ in range(50):
            scheduler.schedule(3, "Main::bump", (1,))
        scheduler.run_until_idle()
        assert program.call(
            scheduler.context_for(3), "Main::get_counter") == 50

    def test_threaded_mode_matches_deterministic(self):
        program = hiltic([_COUNTER_SRC])
        scheduler = Scheduler(program, workers=3)
        for vid in range(9):
            for __ in range(10):
                scheduler.schedule(vid, "Main::bump", (1,))
        executed = scheduler.run_threaded()
        assert executed == 90
        for vid in range(9):
            assert program.call(
                scheduler.context_for(vid), "Main::get_counter") == 10

    def test_worker_of_is_stable(self):
        program = hiltic([_COUNTER_SRC])
        scheduler = Scheduler(program, workers=4)
        assert scheduler.worker_of(7) == scheduler.worker_of(7)
        assert scheduler.worker_of(4) == scheduler.worker_of(8)

    def test_errors_collected_not_fatal(self):
        bad = """module Main
import Hilti
void boom() {
    local int<64> x
    x = int.div 1 0
}
"""
        program = hiltic([bad])
        scheduler = Scheduler(program, workers=1)
        scheduler.schedule(0, "Main::boom", ())
        scheduler.run_until_idle()
        assert len(scheduler.errors) == 1
