"""Overlays/unpacking, file output, profilers, allocation stats."""

import os

import pytest

from repro.core import types as ht
from repro.runtime.bytes_buffer import Bytes
from repro.runtime.exceptions import HiltiError
from repro.runtime.files import FileManager, HiltiFile
from repro.runtime.memory import AllocationStats
from repro.runtime.overlay import OverlayInstance, unpack_value
from repro.runtime.profiler import Profiler, ProfilerRegistry


def _ip_header_overlay() -> ht.OverlayT:
    """The paper's Figure 4 IP::Header overlay."""
    return ht.OverlayT("IP::Header", [
        ht.OverlayField("version", ht.INT8, 0,
                        ht.UnpackFormat("UInt8InBigEndian", (4, 7))),
        ht.OverlayField("hdr_len", ht.INT8, 0,
                        ht.UnpackFormat("UInt8InBigEndian", (0, 3))),
        ht.OverlayField("src", ht.ADDR, 12,
                        ht.UnpackFormat("IPv4InNetworkOrder")),
        ht.OverlayField("dst", ht.ADDR, 16,
                        ht.UnpackFormat("IPv4InNetworkOrder")),
    ])


def _sample_ip_packet() -> Bytes:
    header = bytearray(20)
    header[0] = 0x45  # version 4, IHL 5
    header[12:16] = bytes([192, 168, 1, 1])
    header[16:20] = bytes([10, 0, 0, 7])
    b = Bytes(bytes(header))
    b.freeze()
    return b


class TestOverlay:
    def test_figure4_fields(self):
        overlay = OverlayInstance(_ip_header_overlay())
        overlay.attach(_sample_ip_packet())
        assert overlay.get("version") == 4
        assert overlay.get("hdr_len") == 5
        assert str(overlay.get("src")) == "192.168.1.1"
        assert str(overlay.get("dst")) == "10.0.0.7"

    def test_detached_get_raises(self):
        overlay = OverlayInstance(_ip_header_overlay())
        with pytest.raises(HiltiError):
            overlay.get("src")

    def test_unknown_field(self):
        overlay = OverlayInstance(_ip_header_overlay())
        overlay.attach(_sample_ip_packet())
        with pytest.raises(ValueError):
            overlay.get("nope")

    def test_truncated_data_raises(self):
        overlay = OverlayInstance(_ip_header_overlay())
        short = Bytes(b"\x45\x00")
        short.freeze()
        overlay.attach(short)
        with pytest.raises(HiltiError):
            overlay.get("src")


class TestUnpack:
    def test_widths_and_endianness(self):
        data = Bytes(b"\x01\x02\x03\x04\x05\x06\x07\x08")
        data.freeze()
        assert unpack_value(data, 0, ht.UnpackFormat("UInt16Big")) == 0x0102
        assert unpack_value(data, 0, ht.UnpackFormat("UInt16Little")) == 0x0201
        assert unpack_value(data, 0, ht.UnpackFormat("UInt32Big")) == 0x01020304
        assert unpack_value(
            data, 0, ht.UnpackFormat("UInt64Big")
        ) == 0x0102030405060708

    def test_signed(self):
        data = Bytes(b"\xff\xff")
        data.freeze()
        assert unpack_value(data, 0, ht.UnpackFormat("Int16Big")) == -1

    def test_port_formats(self):
        data = Bytes(b"\x00\x50")
        data.freeze()
        port = unpack_value(data, 0, ht.UnpackFormat("PortTCP"))
        assert port.number == 80 and port.protocol == "tcp"

    def test_bits_extraction(self):
        data = Bytes(b"\xAB")
        data.freeze()
        assert unpack_value(data, 0, ht.UnpackFormat("UInt8Big", (4, 7))) == 0xA
        assert unpack_value(data, 0, ht.UnpackFormat("UInt8Big", (0, 3))) == 0xB

    def test_bytes_fixed(self):
        data = Bytes(b"abcdef")
        data.freeze()
        out = unpack_value(data, 1, ht.UnpackFormat("BytesFixed3"))
        assert out == b"bcd"

    def test_unknown_format(self):
        data = Bytes(b"ab")
        data.freeze()
        with pytest.raises(HiltiError):
            unpack_value(data, 0, ht.UnpackFormat("Complex128"))


class TestFiles:
    def test_serialized_writes(self, tmp_path):
        manager = FileManager()
        f = HiltiFile(manager)
        path = str(tmp_path / "out" / "test.log")
        f.open(path)
        f.write("hello ")
        f.write(b"world")
        f.write_line("")
        manager.flush()
        manager.close_all()
        assert open(path).read() == "hello world\n"

    def test_write_closed_raises(self):
        f = HiltiFile(FileManager())
        with pytest.raises(HiltiError):
            f.write("x")

    def test_manager_thread(self, tmp_path):
        manager = FileManager()
        manager.start()
        f = HiltiFile(manager)
        path = str(tmp_path / "bg.log")
        f.open(path)
        for i in range(50):
            f.write_line(str(i))
        manager.stop()
        manager.close_all()
        lines = open(path).read().splitlines()
        assert lines == [str(i) for i in range(50)]


class TestProfiler:
    def test_accumulates(self):
        p = Profiler("test")
        p.start(instructions=0, allocations=0)
        p.stop(instructions=100, allocations=5)
        assert p.instructions == 100
        assert p.allocations == 5
        assert p.wall_ns >= 0
        assert p.updates == 1

    def test_registry(self):
        r = ProfilerRegistry()
        assert r.get("a") is r.get("a")
        assert r.exists("a") and not r.exists("b")
        r.get("b").update(wall_ns=10)
        report = r.report()
        assert report["b"]["wall_ns"] == 10

    def test_nested_start_stop_attributes_outermost_pair(self):
        # A profiled function calling itself recursively: inner
        # start/stop pairs must only track depth — the measurement
        # spans the outermost pair, counted once.
        p = Profiler("nested")
        p.start(instructions=100)
        p.start(instructions=150)   # recursion: nested region
        p.stop(instructions=180)    # leaves inner level only
        assert p.updates == 0       # still running
        assert p.instructions == 0
        p.stop(instructions=250)
        assert p.updates == 1
        assert p.instructions == 150  # 250 - 100, outermost baseline

    def test_stop_without_start_is_noop(self):
        p = Profiler("idle")
        p.stop(instructions=50)
        assert p.updates == 0 and p.instructions == 0
        # Depth cannot go negative: a later balanced pair still works.
        p.start(instructions=10)
        p.stop(instructions=30)
        assert p.updates == 1 and p.instructions == 20

    def test_deep_nesting_balances(self):
        p = Profiler("deep")
        for depth in range(5):
            p.start(instructions=depth)
        for depth in range(4):
            p.stop(instructions=999)
        assert p.updates == 0
        p.stop(instructions=42)
        assert p.updates == 1
        assert p.instructions == 42  # 42 - 0 from the outermost start

    def test_dump_format(self, tmp_path):
        import io

        r = ProfilerRegistry()
        r.get("x").update(wall_ns=5, instructions=2)
        out = io.StringIO()
        r.dump(out)
        assert out.getvalue().startswith("#profile x ")


class TestAllocationStats:
    def test_counters(self):
        stats = AllocationStats()
        stats.on_new()
        stats.on_new()
        stats.on_free()
        assert stats.allocations == 2
        assert stats.live == 1
        snapshot = stats.snapshot()
        assert snapshot["frees"] == 1
        stats.reset()
        assert stats.allocations == 0
