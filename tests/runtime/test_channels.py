"""Channels: isolation through deep copies, capacity, thread safety."""

import threading

import pytest

from repro.runtime.channels import Channel, deep_copy_value
from repro.runtime.containers import HiltiMap
from repro.runtime.exceptions import HiltiError


class TestChannel:
    def test_fifo(self):
        c = Channel()
        c.write(1)
        c.write(2)
        assert c.read() == 1
        assert c.read() == 2

    def test_capacity(self):
        c = Channel(capacity=1)
        c.write_try("a")
        with pytest.raises(HiltiError):
            c.write_try("b")
        assert c.read_try() == "a"
        c.write_try("b")

    def test_read_empty_raises(self):
        with pytest.raises(HiltiError):
            Channel().read_try()

    def test_receiver_modifications_invisible_to_sender(self):
        c = Channel()
        original = HiltiMap()
        original.insert("k", 1)
        c.write(original)
        received = c.read()
        received.insert("k", 999)
        assert original.get("k") == 1

    def test_sender_modifications_invisible_to_receiver(self):
        c = Channel()
        original = HiltiMap()
        original.insert("k", 1)
        c.write(original)
        original.insert("k", 999)
        assert c.read().get("k") == 1

    def test_cross_thread(self):
        c = Channel(capacity=4)
        out = []

        def consumer():
            for __ in range(100):
                out.append(c.read(timeout=5.0))

        thread = threading.Thread(target=consumer)
        thread.start()
        for i in range(100):
            c.write(i, timeout=5.0)
        thread.join()
        assert out == list(range(100))


class TestDeepCopy:
    def test_scalars_pass_through(self):
        from repro.core.values import Addr, Time

        for value in (1, "x", b"y", 1.5, True, None, Addr("1.2.3.4"),
                      Time(5.0)):
            assert deep_copy_value(value) is value or \
                deep_copy_value(value) == value

    def test_tuples_recursed(self):
        m = HiltiMap()
        m.insert("a", 1)
        copied = deep_copy_value((m, 5))
        copied[0].insert("a", 2)
        assert m.get("a") == 1
