"""The telemetry substrate: metrics registry, span tracer, reports."""

import io
import json

import pytest

from repro.runtime.telemetry import (
    CPU_BREAKDOWN_SCHEMA,
    TIMESERIES_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_SPAN,
    NULL_TELEMETRY,
    SchemaError,
    Span,
    Telemetry,
    TimeSeriesStore,
    Tracer,
    cpu_breakdown_report,
    render_stats_log,
    validate_cpu_breakdown,
    validate_metrics_lines,
    validate_timeseries_lines,
)


class TestCounter:
    def test_monotonic(self):
        registry = MetricsRegistry()
        c = registry.counter("packets")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_series_are_distinct(self):
        registry = MetricsRegistry()
        tcp = registry.counter("flows", proto="tcp")
        udp = registry.counter("flows", proto="udp")
        assert tcp is not udp
        tcp.inc(3)
        assert registry.counter("flows", proto="tcp").value == 3
        assert registry.counter("flows", proto="udp").value == 0

    def test_same_address_returns_same_series(self):
        registry = MetricsRegistry()
        a = registry.counter("x", a="1", b="2")
        b = registry.counter("x", b="2", a="1")  # label order irrelevant
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("occupancy")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_set_max_keeps_high_water_mark(self):
        g = MetricsRegistry().gauge("peak")
        g.set_max(7)
        g.set_max(3)
        assert g.value == 7


class TestHistogram:
    def test_bucketing(self):
        h = MetricsRegistry().histogram("lat", bounds=(10, 100))
        for value in (5, 50, 500):
            h.observe(value)
        d = h.as_dict()
        assert d["buckets"] == {"10": 1, "100": 1, "+Inf": 1}
        assert d["sum"] == 555
        assert d["count"] == 3

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", bounds=(100, 10))


class TestRegistryEmission:
    def test_collect_sorted_and_emit_jsonl_valid(self):
        registry = MetricsRegistry()
        registry.counter("b").inc(2)
        registry.gauge("a").set(1)
        registry.histogram("c").observe(42)
        names = [d["name"] for d in registry.collect()]
        assert names == ["a", "b", "c"]
        out = io.StringIO()
        lines = registry.emit_jsonl(out, meta={"run": "test"})
        assert lines == 4  # header + 3 series
        text = out.getvalue().splitlines()
        assert json.loads(text[0])["run"] == "test"
        assert validate_metrics_lines(text) == []

    def test_validator_flags_problems(self):
        assert validate_metrics_lines([]) == ["no header line"]
        bad = [
            json.dumps({"schema": "repro-metrics/1"}),
            json.dumps({"kind": "counter", "name": "x", "value": -1}),
            json.dumps({"kind": "wat", "name": "y"}),
            "not json",
        ]
        errors = validate_metrics_lines(bad)
        assert any("negative" in e for e in errors)
        assert any("unknown series kind" in e for e in errors)
        assert any("not JSON" in e for e in errors)

    def test_emit_jsonl_is_byte_deterministic(self):
        """Series order (and key order within a line) is a function of
        the registry's content alone — never of insertion order — so
        merged multi-worker emissions diff cleanly across runs."""
        def build(spec):
            registry = MetricsRegistry()
            for name, labels, amount in spec:
                registry.counter(name, **labels).inc(amount)
            registry.gauge("depth", worker=1).set(3)  # int label value
            out = io.StringIO()
            registry.emit_jsonl(out)
            return out.getvalue().splitlines()[1:]  # drop ts header

        spec = [("pkts", {"worker": "1"}, 5),
                ("pkts", {"worker": "0"}, 7),
                ("pkts", {}, 12),
                ("drops", {"worker": "0"}, 1)]
        forward = build(spec)
        reversed_ = build(list(reversed(spec)))
        assert forward == reversed_
        names = [json.loads(line)["name"] for line in forward]
        assert names == sorted(names)
        # The int label value was coerced to str at registration.
        depth = json.loads(forward[-1])
        assert depth["labels"] == {"worker": "1"}


class TestMergeSeries:
    def test_counters_and_histograms_add(self):
        source = MetricsRegistry()
        source.counter("pkts").inc(5)
        source.histogram("size", bounds=(10, 100)).observe(50)
        target = MetricsRegistry()
        target.counter("pkts").inc(2)
        assert target.merge_series(source.collect()) == 2
        assert target.counter("pkts").value == 7
        assert target.histogram("size", bounds=(10, 100)).count == 1

    def test_empty_registry_merges_as_noop(self):
        target = MetricsRegistry()
        target.counter("pkts").inc(3)
        assert target.merge_series(MetricsRegistry().collect()) == 0
        assert [d["name"] for d in target.collect()] == ["pkts"]
        assert target.counter("pkts").value == 3

    def test_gauge_max_merge(self):
        target = MetricsRegistry()
        target.gauge("peak").set(10)
        source = [{"kind": "gauge", "name": "peak", "value": 7},
                  {"kind": "gauge", "name": "load", "value": 7}]
        target.merge_series(source, gauge_merge={"peak": "max"})
        assert target.gauge("peak").value == 10  # max, not 17
        assert target.gauge("load").value == 7   # default: additive
        target.merge_series(source, gauge_merge={"peak": "max"})
        assert target.gauge("load").value == 14

    def test_extra_labels_stamp_every_series(self):
        source = MetricsRegistry()
        source.counter("pkts", proto="tcp").inc(4)
        target = MetricsRegistry()
        target.merge_series(source.collect(),
                            extra_labels={"worker": "2"})
        labeled = target.counter("pkts", proto="tcp", worker="2")
        assert labeled.value == 4

    def test_histogram_bounds_mismatch_raises_schema_error(self):
        target = MetricsRegistry()
        target.histogram("size", bounds=(10, 100)).observe(5)
        source = MetricsRegistry()
        source.histogram("size", bounds=(10, 1000)).observe(5)
        with pytest.raises(SchemaError, match="bucket bounds"):
            target.merge_series(source.collect())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown series kind"):
            MetricsRegistry().merge_series(
                [{"kind": "summary", "name": "x", "value": 1}])


class TestTimeSeriesStore:
    @staticmethod
    def _collect(pkts, depth):
        registry = MetricsRegistry()
        registry.counter("pkts").inc(pkts)
        registry.gauge("depth").set(depth)
        return registry.collect()

    def test_deltas_against_previous_sample(self):
        store = TimeSeriesStore()
        store.sample(1.0, self._collect(10, 3))
        record = store.sample(2.0, self._collect(25, 1))
        by_name = {e["name"]: e for e in record["series"]}
        assert by_name["pkts"]["delta"] == 15
        assert "delta" not in by_name["depth"]  # gauges are not diffed
        assert len(store) == 2

    def test_first_sample_deltas_from_zero(self):
        store = TimeSeriesStore()
        record = store.sample(1.0, self._collect(10, 0))
        assert record["series"][1]["delta"] == 10

    def test_window_filters_old_samples(self):
        store = TimeSeriesStore()
        for ts in (10.0, 50.0, 100.0):
            store.sample(ts, self._collect(1, 0))
        assert [r["ts"] for r in store.history(window=60)] == [50.0, 100.0]
        assert [r["ts"] for r in store.history()] == [10.0, 50.0, 100.0]
        assert [r["ts"] for r in store.history(window=5, now=200.0)] == []

    def test_ring_is_bounded(self):
        store = TimeSeriesStore(max_samples=3)
        for ts in range(10):
            store.sample(float(ts), [])
        assert len(store) == 3
        assert [r["ts"] for r in store.history()] == [7.0, 8.0, 9.0]

    def test_max_samples_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(max_samples=0)

    def test_emit_jsonl_validates(self):
        store = TimeSeriesStore()
        store.sample(1.0, self._collect(5, 2))
        store.sample(2.0, self._collect(9, 4))
        out = io.StringIO()
        assert store.emit_jsonl(out, meta={"app": "bro"}) == 3
        lines = out.getvalue().splitlines()
        header = json.loads(lines[0])
        assert header["schema"] == TIMESERIES_SCHEMA
        assert header["app"] == "bro"
        assert header["samples"] == 2
        assert validate_timeseries_lines(lines) == []

    def test_validator_flags_problems(self):
        assert validate_timeseries_lines([]) == ["no header line"]
        bad = [
            json.dumps({"schema": TIMESERIES_SCHEMA}),
            json.dumps({"ts": 5.0, "series": [
                {"kind": "counter", "name": "x", "value": 1}]}),
            json.dumps({"ts": 4.0, "series": "nope"}),
        ]
        errors = validate_timeseries_lines(bad)
        assert any("numeric delta" in e for e in errors)
        assert any("goes backwards" in e for e in errors)
        assert any("series list" in e for e in errors)

    def test_validate_timeseries_cli(self, tmp_path):
        import subprocess
        import sys

        store = TimeSeriesStore()
        store.sample(1.0, self._collect(5, 2))
        store.sample(2.0, self._collect(9, 4))
        path = tmp_path / "timeseries.jsonl"
        with open(path, "w") as stream:
            store.emit_jsonl(stream)
        done = subprocess.run(
            [sys.executable, "-m", "repro.runtime.telemetry",
             "validate-timeseries", str(path), "--min-samples", "2"],
            capture_output=True, text=True)
        assert done.returncode == 0, done.stderr
        strict = subprocess.run(
            [sys.executable, "-m", "repro.runtime.telemetry",
             "validate-timeseries", str(path), "--min-samples", "3"],
            capture_output=True, text=True)
        assert strict.returncode != 0


class TestSpans:
    def test_tree_and_events(self):
        tracer = Tracer(enabled=True)
        flow = tracer.start_span("flow", uid="c1")
        pkt = flow.child("packet", len=64)
        pkt.event("reassembly_fault", reason="gap")
        pkt.finish()
        flow.finish()
        doc = flow.to_dict()
        assert doc["name"] == "flow"
        assert doc["attrs"] == {"uid": "c1"}
        assert doc["children"][0]["events"][0]["name"] == "reassembly_fault"
        assert doc["duration_ns"] >= doc["children"][0]["duration_ns"]

    def test_finish_idempotent(self):
        span = Span("x")
        span.finish()
        first = span.end_ns
        span.finish()
        assert span.end_ns == first

    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.start_span("flow")
        assert span is NULL_SPAN
        # The null span absorbs the whole protocol without allocating.
        assert span.child("packet") is NULL_SPAN
        span.event("anything")
        span.finish()
        assert tracer.roots == []
        assert tracer.spans_started == 0

    def test_max_spans_bound_counts_drops(self):
        tracer = Tracer(enabled=True, max_spans=2)
        spans = [tracer.start_span(f"s{i}") for i in range(4)]
        assert spans[2] is NULL_SPAN and spans[3] is NULL_SPAN
        assert tracer.spans_started == 2
        assert tracer.spans_dropped == 2

    def test_emit_jsonl_one_tree_per_line(self):
        tracer = Tracer(enabled=True)
        for i in range(3):
            tracer.start_span("flow", n=i).finish()
        out = io.StringIO()
        assert tracer.emit_jsonl(out) == 3
        docs = [json.loads(line) for line in out.getvalue().splitlines()]
        assert [d["attrs"]["n"] for d in docs] == [0, 1, 2]


class TestTelemetryHandle:
    def test_default_fully_off(self):
        t = Telemetry()
        assert not t.enabled
        assert not t.tracer.enabled
        assert not t.any_enabled

    def test_trace_without_metrics_is_legal(self):
        t = Telemetry(trace=True)
        assert not t.enabled
        assert t.any_enabled

    def test_null_telemetry_shared_and_off(self):
        assert not NULL_TELEMETRY.any_enabled


_STATS = {
    "total_ns": 1_000,
    "parsing_ns": 400,
    "script_ns": 300,
    "glue_ns": 200,
    "other_ns": 100,
    "packets": 10,
    "events": 20,
}


class TestCpuBreakdown:
    def test_report_shape(self):
        report = cpu_breakdown_report(_STATS, config={"parsers": "pac"})
        assert report["schema"] == CPU_BREAKDOWN_SCHEMA
        assert report["ranking"] == ["parsing", "script", "glue", "other"]
        assert report["components"]["parsing"]["share"] == 40.0
        assert report["config"] == {"parsers": "pac"}
        assert validate_cpu_breakdown(report) == []

    def test_shares_sum_to_exactly_100(self):
        # 1/3 splits round to 33.33 x3 = 99.99; the residue must be
        # absorbed so the validator's sum check holds.
        stats = dict(_STATS, parsing_ns=1, script_ns=1, glue_ns=1,
                     other_ns=0, total_ns=3)
        report = cpu_breakdown_report(stats)
        shares = [c["share"] for c in report["components"].values()]
        assert round(sum(shares), 2) == 100.0
        assert validate_cpu_breakdown(report) == []

    def test_zero_total_rejected(self):
        stats = {f"{n}_ns": 0 for n in ("parsing", "script", "glue", "other")}
        stats["total_ns"] = 0
        with pytest.raises(ValueError):
            cpu_breakdown_report(stats)

    def test_validator_catches_corruption(self):
        report = cpu_breakdown_report(_STATS)
        report["components"]["parsing"]["share"] = 95.0
        assert any("sum" in e for e in validate_cpu_breakdown(report))
        del report["components"]["glue"]
        assert any("glue" in e for e in validate_cpu_breakdown(report))
        assert validate_cpu_breakdown({"schema": "nope"})
        assert validate_cpu_breakdown("not a dict") == \
            ["document is not an object"]


class TestStatsLogRendering:
    def test_breakdown_and_sections(self):
        text = render_stats_log(
            dict(_STATS, parser_tier="pac", script_tier="hilti"),
            sections={"health": {"records_skipped": 2}},
        )
        assert "parsing" in text and "40.00%" in text
        assert "parser_tier pac" in text
        assert "[health]" in text
        assert "records_skipped 2" in text
