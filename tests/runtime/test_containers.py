"""State-managed containers: maps, sets, lists, vectors, expiration."""

import pytest
from hypothesis import given, strategies as st

from repro.core.values import Interval, Time
from repro.runtime.containers import (
    EXPIRE_ACCESS,
    EXPIRE_CREATE,
    HiltiList,
    HiltiMap,
    HiltiSet,
    HiltiVector,
)
from repro.runtime.exceptions import HiltiError
from repro.runtime.timers import TimerMgr


class TestMap:
    def test_insert_get(self):
        m = HiltiMap()
        m.insert("k", 1)
        assert m.get("k") == 1
        assert m.exists("k")
        assert len(m) == 1

    def test_missing_key_raises(self):
        with pytest.raises(HiltiError):
            HiltiMap().get("missing")

    def test_default(self):
        m = HiltiMap()
        m.set_default(42)
        assert m.get("anything") == 42

    def test_get_default(self):
        m = HiltiMap()
        assert m.get_default("x", 7) == 7

    def test_remove(self):
        m = HiltiMap()
        m.insert("k", 1)
        m.remove("k")
        assert not m.exists("k")
        m.remove("k")  # idempotent

    def test_tuple_keys(self):
        m = HiltiMap()
        m.insert(("a", 1), "v")
        assert m.get(("a", 1)) == "v"

    def test_iteration_returns_original_keys(self):
        m = HiltiMap()
        m.insert(("x", 2), 1)
        assert list(m.keys()) == [("x", 2)]


class TestSet:
    def test_membership(self):
        s = HiltiSet()
        s.insert(5)
        assert s.exists(5)
        assert 5 in s
        assert not s.exists(6)

    def test_iteration_order(self):
        s = HiltiSet()
        for x in (3, 1, 2):
            s.insert(x)
        assert list(s) == [3, 1, 2]


class TestExpiration:
    def _mgr(self, start=0.0):
        return TimerMgr(start=Time(start))

    def test_create_strategy_expires(self):
        mgr = self._mgr()
        s = HiltiSet()
        s.set_timeout(EXPIRE_CREATE, Interval(10), mgr)
        s.insert("a")
        mgr.advance(Time(5.0))
        assert s.exists("a")
        mgr.advance(Time(10.0))
        assert not s.exists("a")

    def test_access_strategy_restarts_clock(self):
        mgr = self._mgr()
        s = HiltiSet()
        s.set_timeout(EXPIRE_ACCESS, Interval(10), mgr)
        s.insert("a")
        mgr.advance(Time(8.0))
        assert s.exists("a")  # the read restamps
        mgr.advance(Time(16.0))
        assert s.exists("a")  # survived because of the access at t=8
        mgr.advance(Time(26.0))
        assert not s.exists("a")

    def test_create_strategy_ignores_access(self):
        mgr = self._mgr()
        s = HiltiSet()
        s.set_timeout(EXPIRE_CREATE, Interval(10), mgr)
        s.insert("a")
        mgr.advance(Time(8.0))
        assert s.exists("a")
        mgr.advance(Time(10.0))
        assert not s.exists("a")

    def test_map_expiry_with_hook(self):
        mgr = self._mgr()
        m = HiltiMap()
        m.set_timeout(EXPIRE_CREATE, Interval(5), mgr)
        expired = []
        m.on_expire(expired.append)
        m.insert("a", 1)
        m.insert("b", 2)
        mgr.advance(Time(100.0))
        assert len(m) == 0
        assert sorted(expired) == ["a", "b"]

    def test_qualified_strategy_name(self):
        mgr = self._mgr()
        s = HiltiSet()
        s.set_timeout("ExpireStrategy::Access", Interval(1), mgr)
        s.insert("x")
        assert s.exists("x")

    def test_bad_strategy(self):
        with pytest.raises(HiltiError):
            HiltiSet().set_timeout("Wat", Interval(1), self._mgr())

    @given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 100)),
                    min_size=1, max_size=30))
    def test_expiration_invariant(self, inserts):
        """After advancing to T, only entries inserted after T - timeout
        survive under the Create strategy."""
        timeout = 20
        mgr = self._mgr()
        m = HiltiMap()
        m.set_timeout(EXPIRE_CREATE, Interval(timeout), mgr)
        now = 0
        stamps = {}
        for key, at in inserts:
            at = max(at, now)  # time is monotonic
            now = at
            mgr.advance(Time(float(at)))
            m.insert(key, at)
            stamps[key] = at
        final = now + 25
        mgr.advance(Time(float(final)))
        for key, stamp in stamps.items():
            assert not m.exists(key) or final - stamp < timeout


class TestList:
    def test_push_pop(self):
        l = HiltiList()
        l.push_back(1)
        l.push_back(2)
        l.push_front(0)
        assert list(l) == [0, 1, 2]
        assert l.pop_front() == 0
        assert l.pop_back() == 2
        assert len(l) == 1

    def test_empty_pop_raises(self):
        with pytest.raises(HiltiError):
            HiltiList().pop_front()

    def test_iterators_survive_other_erase(self):
        l = HiltiList([1, 2, 3])
        it = l.begin().incr()  # points at 2
        first = l.begin()
        l.erase(first)
        assert it.deref() == 2
        assert list(l) == [2, 3]

    def test_erase_invalidates_own_iterator(self):
        l = HiltiList([1])
        it = l.begin()
        l.erase(it)
        with pytest.raises(HiltiError):
            it.deref()

    def test_insert_before(self):
        l = HiltiList([1, 3])
        it = l.begin().incr()
        l.insert_before(it, 2)
        assert list(l) == [1, 2, 3]

    def test_insert_before_end_appends(self):
        l = HiltiList([1])
        l.insert_before(l.end(), 2)
        assert list(l) == [1, 2]

    @given(st.lists(st.integers(), max_size=25))
    def test_matches_python_list(self, items):
        l = HiltiList(items)
        assert list(l) == items
        assert len(l) == len(items)


class TestVector:
    def test_get_set(self):
        v = HiltiVector(default=0)
        v.set(3, 42)
        assert len(v) == 4
        assert v.get(3) == 42
        assert v.get(0) == 0

    def test_out_of_range(self):
        v = HiltiVector()
        with pytest.raises(HiltiError):
            v.get(0)
        with pytest.raises(HiltiError):
            v.set(-1, 0)

    def test_push_back(self):
        v = HiltiVector()
        v.push_back("a")
        assert list(v) == ["a"]
