"""Prometheus text exposition: render, parse, and the round-trip law.

The contract ``/metrics`` content negotiation relies on::

    parse(render(series)) == sanitize_series(series)

so a scrape of the service can be verified losslessly by the in-repo
parser instead of eyeballed.
"""

import math

import pytest

from repro.runtime.promtext import (
    CONTENT_TYPE,
    parse,
    render,
    sanitize_label_name,
    sanitize_name,
    sanitize_series,
)
from repro.runtime.telemetry import MetricsRegistry


def _roundtrip(series):
    assert parse(render(series)) == sanitize_series(series)


class TestRender:
    def test_counter_and_gauge(self):
        text = render([
            {"kind": "counter", "name": "svc.packets", "value": 7},
            {"kind": "gauge", "name": "svc.depth", "value": 2.5},
        ])
        assert "# TYPE svc_depth gauge" in text
        assert "# TYPE svc_packets counter" in text
        assert "svc_packets 7" in text
        assert "svc_depth 2.5" in text
        assert text.endswith("\n")

    def test_labels_sorted_and_quoted(self):
        text = render([{"kind": "counter", "name": "hits", "value": 1,
                        "labels": {"worker": "2", "app": "bro"}}])
        assert 'hits{app="bro",worker="2"} 1' in text

    def test_label_value_escaping(self):
        nasty = 'a\\b"c\nd'
        text = render([{"kind": "gauge", "name": "g", "value": 0,
                        "labels": {"k": nasty}}])
        assert r'k="a\\b\"c\nd"' in text
        parsed = parse(text)
        assert parsed[0]["labels"]["k"] == nasty

    def test_histogram_buckets_are_cumulative(self):
        text = render([{
            "kind": "histogram", "name": "lat",
            "buckets": {"0.1": 3, "1": 2, "+Inf": 1},
            "sum": 4.2, "count": 6,
        }])
        lines = [l for l in text.splitlines() if not l.startswith("#")]
        assert lines == [
            'lat_bucket{le="0.1"} 3',
            'lat_bucket{le="1"} 5',
            'lat_bucket{le="+Inf"} 6',
            "lat_sum 4.2",
            "lat_count 6",
        ]

    def test_type_line_emitted_once_per_family(self):
        text = render([
            {"kind": "counter", "name": "c", "value": 1,
             "labels": {"worker": "0"}},
            {"kind": "counter", "name": "c", "value": 2,
             "labels": {"worker": "1"}},
        ])
        assert text.count("# TYPE c counter") == 1

    def test_help_text(self):
        text = render([{"kind": "counter", "name": "c", "value": 1}],
                      help_texts={"c": "total\nthings"})
        assert r"# HELP c total\nthings" in text

    def test_special_float_values(self):
        text = render([
            {"kind": "gauge", "name": "inf", "value": float("inf")},
            {"kind": "gauge", "name": "nan", "value": float("nan")},
            {"kind": "gauge", "name": "neg", "value": float("-inf")},
        ])
        assert "inf +Inf" in text
        assert "nan NaN" in text
        assert "neg -Inf" in text

    def test_empty_registry_renders_empty(self):
        assert render([]) == ""
        assert parse("") == []


class TestSanitize:
    def test_names(self):
        assert sanitize_name("service.packets_total") == \
            "service_packets_total"
        assert sanitize_name("ns:metric") == "ns:metric"
        assert sanitize_name("9lives") == "_9lives"
        assert sanitize_name("") == "_"

    def test_label_names_reject_colons(self):
        assert sanitize_label_name("a:b") == "a_b"
        assert sanitize_label_name("le") == "le"
        assert sanitize_label_name("0x") == "_0x"

    def test_sanitize_series_drops_transport_extras(self):
        clean = sanitize_series([{"kind": "counter", "name": "a.b",
                                  "value": 1, "delta": 1,
                                  "help": "ignored"}])
        assert clean == [{"kind": "counter", "name": "a_b", "value": 1}]


class TestRoundTrip:
    def test_scalar_round_trip(self):
        _roundtrip([
            {"kind": "counter", "name": "svc.packets", "value": 10},
            {"kind": "gauge", "name": "svc.depth", "value": 0.0,
             "labels": {"worker": "1"}},
        ])

    def test_histogram_round_trip(self):
        _roundtrip([{
            "kind": "histogram", "name": "bro.event_latency",
            "buckets": {"0.001": 1, "0.01": 4, "0.1": 0, "+Inf": 2},
            "sum": 0.35, "count": 7,
            "labels": {"worker": "0"},
        }])

    def test_real_registry_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("app.packets").inc(123)
        registry.counter("app.packets", worker="0").inc(60)
        registry.counter("app.packets", worker="1").inc(63)
        registry.gauge("app.sessions_open").set(4)
        histogram = registry.histogram("app.size",
                                       bounds=(64, 512, 1500))
        for value in (40, 70, 600, 9000):
            histogram.observe(value)
        _roundtrip(registry.collect())

    def test_nan_round_trip(self):
        parsed = parse(render([{"kind": "gauge", "name": "n",
                                "value": float("nan")}]))
        assert math.isnan(parsed[0]["value"])

    def test_untyped_sample_defaults_to_gauge(self):
        parsed = parse("orphan 3\n")
        assert parsed == [{"kind": "gauge", "name": "orphan", "value": 3}]


class TestParseErrors:
    def test_garbage_line(self):
        with pytest.raises(ValueError, match="line 1"):
            parse("!!! not a sample")

    def test_unterminated_label_value(self):
        with pytest.raises(ValueError, match="unterminated"):
            parse('m{k="oops} 1')

    def test_bad_label_syntax(self):
        with pytest.raises(ValueError, match="bad label"):
            parse('m{=""} 1')


def test_content_type_is_version_0_0_4():
    assert CONTENT_TYPE.startswith("text/plain; version=0.0.4")
