"""The regexp engine: anchored, incremental, and set matching."""

import re as python_re

import pytest
from hypothesis import given, strategies as st

from repro.runtime.bytes_buffer import Bytes
from repro.runtime.exceptions import HiltiError
from repro.runtime.regexp import MATCH_FAIL, MATCH_NEED_MORE, RegExp


def _frozen(data: bytes) -> Bytes:
    b = Bytes(data)
    b.freeze()
    return b


class TestAnchored:
    def test_literal(self):
        assert RegExp("abc").matches(b"abcdef") == 1
        assert RegExp("abc").matches(b"xabc") == 0

    def test_char_class(self):
        r = RegExp(r"[a-z]+")
        assert r.matches(b"hello world") == 1

    def test_negated_class(self):
        r = RegExp(r"[^ \t\r\n]+")
        assert r.matches(b"token rest") == 1
        assert r.matches(b" leading") == 0

    def test_alternation(self):
        r = RegExp(r"cat|dog")
        assert r.matches(b"dogma") == 1
        assert r.matches(b"bird") == 0

    def test_repetition(self):
        assert RegExp(r"a*b").matches(b"aaab") == 1
        assert RegExp(r"a+b").matches(b"b") == 0
        assert RegExp(r"a?b").matches(b"ab") == 1
        assert RegExp(r"a{2,3}b").matches(b"aab") == 1
        assert RegExp(r"a{2,3}b").matches(b"ab") == 0

    def test_escapes(self):
        assert RegExp(r"\d+\.\d+").matches(b"1.1 ") == 1
        assert RegExp(r"\r?\n").matches(b"\r\n") == 1
        assert RegExp(r"\r?\n").matches(b"\n") == 1
        assert RegExp(r"\x41+").matches(b"AAA") == 1

    def test_dot_excludes_newline(self):
        assert RegExp(r".+").matches(b"ab\ncd") == 1
        assert RegExp(r".").matches(b"\n") == 0

    def test_longest_match(self):
        r = RegExp(r"[0-9]+")
        b = _frozen(b"12345x")
        status, it = r.match_token(b, b.begin())
        assert status == 1
        assert it.offset == 5

    def test_bad_patterns(self):
        for bad in ("*a", "(unclosed", "[z-a]", "a{3,1}"):
            with pytest.raises(HiltiError):
                RegExp(bad)


class TestSetMatching:
    def test_ids_in_order(self):
        r = RegExp(["GET", "POST", "HEAD"])
        assert r.matches(b"POST /") == 2
        assert r.matches(b"HEAD /") == 3
        assert r.matches(b"PUT /") == 0

    def test_lowest_id_wins_ties(self):
        r = RegExp(["ab", "a[b]"])
        assert r.matches(b"ab") == 1


class TestIncremental:
    def test_need_more_then_match(self):
        r = RegExp(r"[a-z]+X")
        b = Bytes(b"hel")
        status, __ = r.match_token(b, b.begin())
        assert status == MATCH_NEED_MORE
        b.append(b"loX!")
        status, it = r.match_token(b, b.begin())
        assert status == 1
        assert it.offset == 6

    def test_frozen_end_resolves(self):
        r = RegExp(r"[a-z]+")
        b = Bytes(b"abc")
        status, __ = r.match_token(b, b.begin())
        assert status == MATCH_NEED_MORE  # could still grow
        b.freeze()
        status, it = r.match_token(b, b.begin())
        assert status == 1 and it.offset == 3

    def test_fail_fast_without_more_input(self):
        r = RegExp(r"GET")
        b = Bytes(b"PUT")
        status, __ = r.match_token(b, b.begin())
        assert status == MATCH_FAIL

    def test_feed_across_chunks(self):
        r = RegExp(r"[0-9]+\.[0-9]+")
        state = r.token_state()
        assert r.feed(state, b"12", False)[0] == MATCH_NEED_MORE
        assert r.feed(state, b".3", False)[0] == MATCH_NEED_MORE
        status, length = r.feed(state, b"4 ", False)
        assert status == 1 and length == 5  # "12.34"

    def test_match_at_offset(self):
        r = RegExp(r"world")
        b = _frozen(b"hello world")
        status, it = r.match_token(b, b.at(6))
        assert status == 1 and it.offset == 11


class TestFind:
    def test_find_anywhere(self):
        r = RegExp(r"b+c")
        pid, begin, end = r.find(b"aaabbbcd")
        assert (pid, begin, end) == (1, 3, 7)

    def test_find_miss(self):
        assert RegExp(r"zz")._dfa is not None
        assert RegExp(r"zz").find(b"aaaa") == (0, -1, -1)

    def test_matches_exactly(self):
        r = RegExp(r"[a-z]+")
        assert r.matches_exactly(b"abc") == 1
        assert r.matches_exactly(b"abc1") == 0


# A conservative pattern subset where our syntax and Python's agree.
_SAFE_ATOM = st.sampled_from(
    ["a", "b", "c", "[ab]", "[a-c]", "[^a]", r"\d", "."]
)
_SAFE_SUFFIX = st.sampled_from(["", "*", "+", "?"])


@st.composite
def _safe_patterns(draw):
    parts = draw(st.lists(st.tuples(_SAFE_ATOM, _SAFE_SUFFIX),
                          min_size=1, max_size=4))
    return "".join(atom + suffix for atom, suffix in parts)


class TestAgainstPythonRe:
    @given(_safe_patterns(),
           st.lists(st.sampled_from(list(b"abc1\n")), max_size=12))
    def test_anchored_match_length_agrees(self, pattern, data):
        data = bytes(data)
        ours = RegExp(pattern)
        theirs = python_re.compile(pattern.encode())
        b = _frozen(data)
        status, it = ours.match_token(b, b.begin())
        match = theirs.match(data)
        if match is not None and match.end() > 0:
            assert status == 1
            assert it.offset == match.end()
        elif match is not None and match.end() == 0:
            # Zero-length matches: our engine reports them as matches of
            # length zero only when a pattern can accept empty input.
            assert status in (0, 1)
            if status == 1:
                assert it.offset == 0
        else:
            assert status == 0
