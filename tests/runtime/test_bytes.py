"""The incremental bytes buffer and its iterators."""

import pytest
from hypothesis import given, strategies as st

from repro.runtime.bytes_buffer import Bytes, BytesIter
from repro.runtime.exceptions import HiltiError


class TestBasics:
    def test_append_and_len(self):
        b = Bytes(b"abc")
        b.append(b"def")
        assert len(b) == 6
        assert b.to_bytes() == b"abcdef"

    def test_freeze_blocks_append(self):
        b = Bytes(b"x")
        b.freeze()
        assert b.is_frozen
        with pytest.raises(HiltiError):
            b.append(b"y")
        b.unfreeze()
        b.append(b"y")
        assert b.to_bytes() == b"xy"

    def test_equality_with_raw_bytes(self):
        assert Bytes(b"abc") == b"abc"
        assert Bytes(b"abc") == Bytes(b"abc")
        assert Bytes(b"abc") != Bytes(b"abd")

    def test_concat(self):
        c = Bytes(b"ab") + Bytes(b"cd")
        assert c == b"abcd"
        assert c.is_frozen


class TestIterators:
    def test_iterators_stable_across_append(self):
        b = Bytes(b"hello")
        it = b.at(b.begin_offset + 2)
        b.append(b" world")
        assert it.deref() == ord("l")
        assert it.incr_by(3).deref() == ord(" ")

    def test_deref_past_end_raises(self):
        b = Bytes(b"ab")
        with pytest.raises(HiltiError):
            b.end().deref()

    def test_distance(self):
        b = Bytes(b"abcdef")
        assert b.begin().distance(b.end()) == 6

    def test_distance_different_objects_raises(self):
        with pytest.raises(HiltiError):
            Bytes(b"a").begin().distance(Bytes(b"b").begin())

    def test_available(self):
        b = Bytes(b"abcd")
        it = b.begin().incr()
        assert it.available() == 3
        b.append(b"ef")
        assert it.available() == 5


class TestTrim:
    def test_trim_releases_memory(self):
        b = Bytes(b"0123456789")
        b.trim(b.at(b.begin_offset + 4))
        assert len(b) == 6
        assert b.begin_offset == 4
        assert b.begin().deref() == ord("4")

    def test_read_before_trim_raises(self):
        b = Bytes(b"0123456789")
        b.trim(b.at(4))
        with pytest.raises(HiltiError):
            b.byte_at(2)

    def test_trim_keeps_absolute_offsets(self):
        b = Bytes(b"0123456789")
        it = b.at(7)
        b.trim(b.at(5))
        assert it.deref() == ord("7")


class TestSearchAndSlice:
    def test_sub(self):
        b = Bytes(b"hello world")
        sub = b.sub(b.at(6), b.at(11))
        assert sub == b"world"
        assert sub.is_frozen

    def test_find_hit(self):
        b = Bytes(b"abcXYZdef")
        found, it = b.find(b"XYZ")
        assert found and it.offset == 3

    def test_find_partial_suffix_position(self):
        # "XY" at the tail could complete to "XYZ" with more data.
        b = Bytes(b"abcXY")
        found, it = b.find(b"XYZ")
        assert not found
        assert it.offset == 3  # resume position

    def test_find_miss(self):
        b = Bytes(b"aaaa")
        found, it = b.find(b"zz")
        assert not found and it.offset == b.end_offset

    def test_startswith_at_iter(self):
        b = Bytes(b"GET /x")
        assert b.startswith(b"GET")
        assert b.startswith(b"/x", b.at(4))

    def test_split1(self):
        head, tail = Bytes(b"name: value").split1(b": ")
        assert head == b"name" and tail == b"value"

    def test_split(self):
        parts = Bytes(b"a,b,c").split(b",")
        assert [p.to_bytes() for p in parts] == [b"a", b"b", b"c"]


class TestConversions:
    def test_to_int(self):
        assert Bytes(b"1234").to_int() == 1234
        assert Bytes(b"ff").to_int(16) == 255
        with pytest.raises(HiltiError):
            Bytes(b"abc!").to_int()

    def test_case(self):
        assert Bytes(b"MiXeD").lower() == b"mixed"
        assert Bytes(b"MiXeD").upper() == b"MIXED"

    def test_strip(self):
        assert Bytes(b"  x ").strip() == b"x"

    def test_read_would_block_vs_index(self):
        b = Bytes(b"ab")
        from repro.runtime.exceptions import WOULD_BLOCK, INDEX_ERROR

        with pytest.raises(HiltiError) as exc:
            b.read(0, 5)
        assert exc.value.except_type is WOULD_BLOCK
        b.freeze()
        with pytest.raises(HiltiError) as exc:
            b.read(0, 5)
        assert exc.value.except_type is INDEX_ERROR


class TestProperties:
    @given(st.lists(st.binary(max_size=30), max_size=12))
    def test_chunked_append_equals_join(self, chunks):
        b = Bytes()
        for chunk in chunks:
            b.append(chunk)
        assert b.to_bytes() == b"".join(chunks)

    @given(st.binary(min_size=1, max_size=60),
           st.data())
    def test_trim_preserves_tail(self, data, draw):
        b = Bytes(data)
        cut = draw.draw(st.integers(min_value=0, max_value=len(data)))
        b.trim(b.at(cut))
        assert b.to_bytes() == data[cut:]
        assert b.begin_offset == cut

    @given(st.binary(max_size=40), st.binary(min_size=1, max_size=5))
    def test_find_agrees_with_python(self, haystack, needle):
        b = Bytes(haystack)
        found, it = b.find(needle)
        expected = haystack.find(needle)
        if expected >= 0:
            assert found and it.offset == expected
        else:
            assert not found

    @given(st.binary(max_size=50))
    def test_view_matches_read(self, data):
        b = Bytes(data)
        for offset in range(0, len(data) + 1, max(1, len(data) // 4 or 1)):
            assert bytes(b.view_from(offset)) == data[offset:]
