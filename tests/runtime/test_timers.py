"""Timers and timer managers."""

import pytest

from repro.core.values import Time
from repro.runtime.exceptions import HiltiError
from repro.runtime.structs import Callable as HiltiCallable
from repro.runtime.timers import Timer, TimerMgr


class TestTimerMgr:
    def test_fires_in_time_order(self):
        mgr = TimerMgr()
        fired = []
        mgr.schedule(Time(10.0), Timer(lambda: fired.append("b")))
        mgr.schedule(Time(5.0), Timer(lambda: fired.append("a")))
        mgr.advance(Time(20.0))
        assert fired == ["a", "b"]

    def test_not_due_not_fired(self):
        mgr = TimerMgr()
        fired = []
        mgr.schedule(Time(10.0), Timer(lambda: fired.append(1)))
        mgr.advance(Time(9.999))
        assert fired == []
        assert mgr.pending_count == 1

    def test_fires_at_exact_deadline(self):
        mgr = TimerMgr()
        fired = []
        mgr.schedule(Time(10.0), Timer(lambda: fired.append(1)))
        mgr.advance(Time(10.0))
        assert fired == [1]

    def test_time_never_goes_backwards(self):
        mgr = TimerMgr()
        mgr.advance(Time(100.0))
        mgr.advance(Time(50.0))
        assert mgr.current == Time(100.0)

    def test_cancel(self):
        mgr = TimerMgr()
        fired = []
        timer = Timer(lambda: fired.append(1))
        mgr.schedule(Time(5.0), timer)
        timer.cancel()
        mgr.advance(Time(10.0))
        assert fired == []

    def test_update_reschedules(self):
        mgr = TimerMgr()
        fired = []
        timer = Timer(lambda: fired.append(1))
        mgr.schedule(Time(5.0), timer)
        timer.update(Time(50.0))
        mgr.advance(Time(10.0))
        assert fired == []
        mgr.advance(Time(50.0))
        assert fired == [1]

    def test_update_unscheduled_raises(self):
        with pytest.raises(HiltiError):
            Timer(lambda: None).update(Time(1.0))

    def test_double_schedule_rejected(self):
        mgr = TimerMgr()
        timer = Timer(lambda: None)
        mgr.schedule(Time(1.0), timer)
        with pytest.raises(HiltiError):
            mgr.schedule(Time(2.0), timer)

    def test_hilti_callables_returned_for_engine(self):
        mgr = TimerMgr()
        bound = HiltiCallable("Main::cleanup", (1, 2))
        mgr.schedule(Time(1.0), Timer(bound))
        actions = mgr.advance(Time(2.0))
        assert actions == [bound]

    def test_expire_all(self):
        mgr = TimerMgr()
        fired = []
        for t in (100.0, 200.0, 300.0):
            mgr.schedule(Time(t), Timer(lambda t=t: fired.append(t)))
        mgr.expire_all()
        assert fired == [100.0, 200.0, 300.0]
        assert mgr.pending_count == 0

    def test_timer_fires_once(self):
        mgr = TimerMgr()
        fired = []
        mgr.schedule(Time(1.0), Timer(lambda: fired.append(1)))
        mgr.advance(Time(2.0))
        mgr.advance(Time(3.0))
        assert fired == [1]

    def test_independent_notions_of_time(self):
        network = TimerMgr(name="network")
        wall = TimerMgr(name="wall")
        network.advance(Time(1000.0))
        assert wall.current == Time.EPOCH
        assert network.current == Time(1000.0)
