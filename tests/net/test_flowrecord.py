"""The unified flow ledger: records, schema, table, features.

Unit-level coverage for the flow-record layer (docs/FLOWS.md): the
``repro-flowrecords/1`` serialization round-trip, the hand-rolled
validator's error taxonomy, FiveTuple canonicalization symmetry, the
shared :class:`~repro.host.flowtable.FlowTable` (uid precedence,
bidirectional accounting, TTL/cap eviction with the counted-eviction
contract, bare-key recency mode), the 19-feature vectors, and the
``flowexport`` tool end-to-end.
"""

import json

import pytest

from repro.core.values import Addr
from repro.host.flowtable import FlowTable
from repro.net.features import (
    FEATURE_NAMES,
    aggregate_windows,
    flow_features,
)
from repro.net.flowrecord import (
    CLOSE_REASONS,
    FLOWRECORDS_SCHEMA,
    FlowRecord,
    flowrecords_header_line,
    format_record_uid,
    validate_flowrecord_lines,
    write_flowrecords_jsonl,
)
from repro.net.flows import FiveTuple
from repro.net.packet import ACK, FIN, PROTO_TCP, PROTO_UDP, SYN


def _tuple(sport=1234, dport=80, proto=PROTO_TCP):
    return FiveTuple(Addr("10.0.0.1"), Addr("10.0.0.2"),
                     sport, dport, proto)


def _record(**overrides):
    fields = dict(
        src="10.0.0.1", dst="10.0.0.2", src_port=1234, dst_port=80,
        protocol=PROTO_TCP, uid="S000001", first_ts=1.0, last_ts=2.5,
        orig_pkts=3, orig_bytes=120, resp_pkts=2, resp_bytes=900,
        tcp_flags=SYN | ACK | FIN, close_reason="finished",
    )
    fields.update(overrides)
    return FlowRecord(**fields)


def _file_lines(records, app="test"):
    lines = sorted(r.to_line() for r in records)
    return [flowrecords_header_line(app, len(lines))] + lines


class TestFlowRecordSerialization:
    def test_line_round_trip(self):
        record = _record()
        again = FlowRecord.from_dict(json.loads(record.to_line()))
        assert again == record

    def test_lines_are_compact_and_key_sorted(self):
        line = _record().to_line()
        assert ": " not in line and ", " not in line
        keys = list(json.loads(line))
        assert keys == sorted(keys)

    def test_timestamps_round_to_microseconds(self):
        doc = _record(first_ts=1.123456789, last_ts=2.0).to_dict()
        assert doc["first_ts"] == 1.123457

    def test_record_uid_format(self):
        assert format_record_uid(1) == "S000001"
        assert format_record_uid(125) == "S000125"

    def test_header_carries_no_topology(self):
        header = json.loads(flowrecords_header_line("bpf", 7))
        assert header == {
            "schema": FLOWRECORDS_SCHEMA, "app": "bpf", "records": 7,
        }


class TestValidator:
    def test_valid_stream_passes(self):
        lines = _file_lines([_record(), _record(src_port=9999,
                                                uid="S000002")])
        assert validate_flowrecord_lines(lines) == []

    def test_written_file_passes(self, tmp_path):
        path = write_flowrecords_jsonl(
            str(tmp_path / "flow_records.jsonl"), "test",
            sorted(r.to_line() for r in [_record()]))
        with open(path) as stream:
            assert validate_flowrecord_lines(stream.readlines()) == []

    def test_empty_input(self):
        assert validate_flowrecord_lines([]) == \
            ["empty input: missing header line"]

    def test_bad_schema_tag(self):
        lines = _file_lines([_record()])
        lines[0] = json.dumps({"schema": "nope/9", "app": "x",
                               "records": 1})
        assert any("schema" in e for e in
                   validate_flowrecord_lines(lines))

    def test_count_mismatch(self):
        lines = _file_lines([_record()])
        lines[0] = flowrecords_header_line("test", 5)
        assert any("declares 5 records" in e
                   for e in validate_flowrecord_lines(lines))

    def test_unsorted_body_rejected(self):
        records = [_record(uid="S000002"), _record(uid="S000001",
                                                   src_port=9)]
        lines = [flowrecords_header_line("test", 2)] + \
            sorted((r.to_line() for r in records), reverse=True)
        assert any("not sorted" in e
                   for e in validate_flowrecord_lines(lines))

    def test_missing_and_unknown_fields(self):
        doc = _record().to_dict()
        del doc["uid"]
        doc["bogus"] = 1
        lines = [flowrecords_header_line("test", 1),
                 json.dumps(doc, sort_keys=True)]
        errors = validate_flowrecord_lines(lines)
        assert any("missing fields ['uid']" in e for e in errors)
        assert any("unknown fields ['bogus']" in e for e in errors)

    @pytest.mark.parametrize("field,value,fragment", [
        ("src_port", 70000, "out of range"),
        ("src_port", True, "out of range"),
        ("protocol", 300, "protocol out of range"),
        ("uid", "", "uid must be null"),
        ("orig_pkts", -1, "non-negative"),
        ("tcp_flags", 0x1FF, "exceeds one octet"),
        ("close_reason", "vanished", "close_reason"),
        ("first_ts", "soon", "must be a number"),
    ])
    def test_field_violations(self, field, value, fragment):
        doc = _record().to_dict()
        doc[field] = value
        lines = [flowrecords_header_line("test", 1),
                 json.dumps(doc, sort_keys=True)]
        assert any(fragment in e
                   for e in validate_flowrecord_lines(lines))

    def test_reversed_timestamps_rejected(self):
        lines = _file_lines([_record(first_ts=9.0, last_ts=1.0)])
        assert any("first_ts > last_ts" in e
                   for e in validate_flowrecord_lines(lines))

    def test_null_uid_allowed(self):
        lines = _file_lines([_record(uid=None)])
        assert validate_flowrecord_lines(lines) == []


class TestFiveTupleIdentity:
    def test_canonical_symmetry(self):
        forward = _tuple()
        assert forward.canonical() == forward.reversed().canonical()
        assert hash(forward.canonical()) == \
            hash(forward.reversed().canonical())

    def test_canonical_with_origin(self):
        low_first = FiveTuple(Addr("1.1.1.1"), Addr("2.2.2.2"),
                              10, 20, PROTO_TCP)
        canon, src_first = low_first.canonical_with_origin()
        assert src_first and canon == low_first
        canon2, src_first2 = low_first.reversed().canonical_with_origin()
        assert not src_first2 and canon2 == canon

    def test_port_breaks_address_tie(self):
        a = FiveTuple(Addr("1.1.1.1"), Addr("1.1.1.1"), 9, 5, PROTO_UDP)
        canon = a.canonical()
        assert (canon.src_port, canon.dst_port) == (5, 9)

    def test_eq_hash_respect_all_fields(self):
        assert _tuple() == _tuple()
        assert _tuple() != _tuple(proto=PROTO_UDP)
        assert _tuple() != _tuple(sport=4321)
        assert _tuple() != "10.0.0.1:1234"
        assert len({_tuple(), _tuple(), _tuple(sport=4321)}) == 2

    def test_repr_names_protocol(self):
        assert "/tcp" in repr(_tuple())
        assert "/udp" in repr(_tuple(proto=PROTO_UDP))
        assert "10.0.0.1:1234" in repr(_tuple())


class TestFlowTable:
    def test_bidirectional_accounting(self):
        table = FlowTable(uid_format=format_record_uid)
        flow = _tuple()
        table.account(flow, 1.0, payload_len=100, tcp_flags=SYN)
        table.account(flow.reversed(), 2.0, payload_len=40,
                      tcp_flags=SYN | ACK)
        table.account(flow, 3.5, payload_len=60, tcp_flags=FIN)
        assert len(table) == 1
        table.finish()
        (record,) = table.records()
        assert (record.src, record.src_port) == ("10.0.0.1", 1234)
        assert (record.orig_pkts, record.orig_bytes) == (2, 160)
        assert (record.resp_pkts, record.resp_bytes) == (1, 40)
        assert record.tcp_flags == SYN | ACK | FIN
        assert (record.first_ts, record.last_ts) == (1.0, 3.5)
        assert record.uid == "S000001"
        assert record.close_reason == "finished"

    def test_uid_precedence(self):
        flow = _tuple()
        mapped = FlowTable(uid_map={flow.canonical(): "M1"},
                           uid_format=format_record_uid)
        assert mapped.open(flow, 0.0).uid == "M1"
        explicit = FlowTable(uid_map={flow.canonical(): "M1"})
        assert explicit.open(flow, 0.0, uid="X9").uid == "X9"
        assert FlowTable().open(flow, 0.0).uid is None

    def test_serial_counts_every_first_sight(self):
        table = FlowTable(uid_format=format_record_uid)
        table.account(_tuple(sport=1), 0.0)
        table.account(_tuple(sport=2), 0.0)
        table.account(_tuple(sport=1), 1.0)  # repeat: no new serial
        assert table.serial == 2
        assert table.get(_tuple(sport=2).canonical()).uid == "S000002"

    def test_ttl_expiry_vs_capacity_eviction(self):
        table = FlowTable(session_ttl=10.0, max_sessions=2)
        table.account(_tuple(sport=1), 0.0)
        table.run_eviction(20.0)
        assert (table.sessions_expired, table.sessions_evicted) == (1, 0)
        for sport in (2, 3, 4):
            table.account(_tuple(sport=sport), 21.0)
            table.run_eviction(21.0)
        assert table.sessions_evicted == 1
        assert len(table) == 2
        reasons = sorted(r.close_reason for r in table.records())
        assert reasons == ["evicted", "expired"]

    def test_on_evict_counted_contract(self):
        seen = []

        def on_evict(key, reason):
            seen.append((key, reason))
            return len(seen) % 2 == 1  # count every other victim

        table = FlowTable(max_sessions=1, on_evict=on_evict)
        for sport in (1, 2, 3):
            table.account(_tuple(sport=sport), float(sport))
            table.run_eviction(None)
        assert [reason for _, reason in seen] == ["evicted", "evicted"]
        assert table.sessions_evicted == 1  # uncounted victim skipped
        # ...but both victims still sealed into the ledger.
        assert len(table.records()) == 2

    def test_record_lines_sorted(self):
        table = FlowTable(uid_format=format_record_uid)
        for sport in (9, 2, 7):
            table.account(_tuple(sport=sport), 0.0)
        table.finish()
        lines = table.record_lines()
        assert lines == sorted(lines) and len(lines) == 3
        header = flowrecords_header_line("test", len(lines))
        assert validate_flowrecord_lines([header] + lines) == []

    def test_bare_key_recency_mode(self):
        dropped = []
        table = FlowTable(
            max_sessions=2,
            on_evict=lambda key, reason: dropped.append(key) or True)
        for tick, key in enumerate(["a", "b", "c"]):
            table.touch(key, float(tick))
            table.run_eviction(None)
        assert dropped == ["a"]
        assert table.sessions_evicted == 1
        assert table.records() == []  # no ledger entries for bare keys
        table.close("b")  # recency-only close: nothing to seal
        assert table.records() == []

    def test_close_reason_domain(self):
        assert set(CLOSE_REASONS) == {"finished", "expired", "evicted"}


class TestFeatures:
    def test_vector_matches_names(self):
        vector = flow_features(_record())
        assert len(vector) == len(FEATURE_NAMES) == 19
        named = dict(zip(FEATURE_NAMES, vector))
        assert named["duration"] == 1.5
        assert named["total_pkts"] == 5
        assert named["total_bytes"] == 1020
        assert named["bytes_per_packet"] == 204
        assert named["orig_ratio_pkts"] == 0.6
        assert (named["fin_flag"], named["syn_flag"],
                named["rst_flag"]) == (1.0, 1.0, 0.0)
        assert named["is_tcp"] == 1.0
        assert named["closed_normally"] == 1.0

    def test_zero_duration_rates(self):
        vector = flow_features(_record(first_ts=1.0, last_ts=1.0,
                                       orig_pkts=1, resp_pkts=0))
        named = dict(zip(FEATURE_NAMES, vector))
        assert named["pkts_per_second"] == 0.0
        assert named["bytes_per_second"] == 0.0

    def test_window_aggregation(self):
        records = [_record(first_ts=0.5, last_ts=1.0),
                   _record(first_ts=1.5, last_ts=2.0),
                   _record(first_ts=65.0, last_ts=66.0)]
        windows = aggregate_windows(records, 60.0)
        assert [w["window_start"] for w in windows] == [0.0, 60.0]
        assert [w["flows"] for w in windows] == [2, 1]
        assert all(len(w["features"]) == 19 for w in windows)

    def test_window_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            aggregate_windows([], 0)


class TestFlowExport:
    @pytest.fixture(scope="class")
    def trace_pcap(self, tmp_path_factory):
        from repro.net.pcap import write_pcap
        from repro.net.tracegen import (
            DnsTraceConfig,
            HttpTraceConfig,
            generate_mixed_trace,
        )

        trace = generate_mixed_trace(
            HttpTraceConfig(sessions=5, seed=3),
            DnsTraceConfig(queries=8, seed=3))
        path = str(tmp_path_factory.mktemp("trace") / "mixed.pcap")
        write_pcap(path, trace)
        return path

    def test_export_flows_deterministic(self, trace_pcap):
        from repro.tools.flowexport import export_flows

        first = export_flows(trace_pcap)
        second = export_flows(trace_pcap)
        assert first.record_lines() == second.record_lines()
        assert len(first.records()) == first.serial > 0

    def test_cli_end_to_end(self, trace_pcap, tmp_path, capsys):
        from repro.tools.flowexport import main

        logdir = str(tmp_path / "logs")
        rc = main(["-r", trace_pcap, "--logdir", logdir,
                   "--window", "60", "--validate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "exported" in out and "records.jsonl: ok" in out

        with open(f"{logdir}/records.jsonl") as stream:
            lines = stream.readlines()
        assert validate_flowrecord_lines(lines) == []
        flows = json.loads(lines[0])["records"]

        with open(f"{logdir}/features.csv") as stream:
            rows = stream.read().splitlines()
        assert rows[0] == "uid," + ",".join(FEATURE_NAMES)
        assert len(rows) == flows + 1
        assert all(len(row.split(",")) == 20 for row in rows[1:])

        with open(f"{logdir}/windows.csv") as stream:
            window_rows = stream.read().splitlines()
        assert window_rows[0].startswith("window_start,flows,")
        assert len(window_rows) > 1
