"""Wire formats and pcap trace files."""

import struct

import pytest
from hypothesis import given, strategies as st

from repro.core.values import Addr, Time
from repro.net.packet import (
    ACK,
    SYN,
    EthernetFrame,
    IPv4Packet,
    PacketError,
    TCPSegment,
    UDPDatagram,
    build_tcp_packet,
    build_udp_packet,
    checksum16,
    parse_ethernet,
)
from repro.net.pcap import PcapReader, PcapWriter, read_pcap, write_pcap


class TestChecksum:
    def test_rfc1071_example(self):
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert checksum16(data) == 0x220D

    def test_odd_length_padded(self):
        assert checksum16(b"\xff") == checksum16(b"\xff\x00")

    def test_header_checksum_validates(self):
        packet = IPv4Packet(Addr("1.2.3.4"), Addr("5.6.7.8"), 6, b"")
        raw = packet.build()
        # Re-checksumming a valid header yields zero.
        assert checksum16(raw[:20]) == 0


class TestRoundTrips:
    def test_tcp_frame(self):
        frame = build_tcp_packet(
            Addr("10.0.0.1"), Addr("10.0.0.2"), 1234, 80,
            seq=1000, ack=2000, flags=SYN | ACK, payload=b"hello",
        )
        ip, tcp = parse_ethernet(frame)
        assert ip.src == Addr("10.0.0.1")
        assert ip.protocol == 6
        assert tcp.src_port == 1234
        assert tcp.dst_port == 80
        assert tcp.seq == 1000
        assert tcp.syn and tcp.is_ack
        assert tcp.payload == b"hello"

    def test_udp_frame(self):
        frame = build_udp_packet(
            Addr("10.0.0.1"), Addr("8.8.8.8"), 5353, 53, payload=b"query",
        )
        ip, udp = parse_ethernet(frame)
        assert ip.protocol == 17
        assert udp.dst_port == 53
        assert udp.payload == b"query"

    def test_non_ip_rejected(self):
        frame = EthernetFrame(b"payload", ethertype=0x0806).build()  # ARP
        with pytest.raises(PacketError):
            parse_ethernet(frame)

    def test_truncated_frames(self):
        with pytest.raises(PacketError):
            EthernetFrame.parse(b"short")
        with pytest.raises(PacketError):
            IPv4Packet.parse(b"\x45\x00")
        with pytest.raises(PacketError):
            TCPSegment.parse(b"\x00" * 10)
        with pytest.raises(PacketError):
            UDPDatagram.parse(b"\x00" * 4)

    @given(st.binary(max_size=100),
           st.integers(0, 65535), st.integers(0, 65535))
    def test_tcp_payload_preserved(self, payload, sport, dport):
        frame = build_tcp_packet(
            Addr("1.1.1.1"), Addr("2.2.2.2"), sport, dport, payload=payload,
        )
        __, tcp = parse_ethernet(frame)
        assert tcp.payload == payload
        assert tcp.src_port == sport


class TestPcap:
    def test_write_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        packets = [
            (Time(1.5), b"packet-one"),
            (Time(2.000001), b"packet-two"),
        ]
        assert write_pcap(path, packets) == 2
        back = read_pcap(path)
        assert len(back) == 2
        assert back[0][1] == b"packet-one"
        assert abs(back[0][0].seconds - 1.5) < 1e-5
        assert abs(back[1][0].seconds - 2.000001) < 1e-5

    def test_nanosecond_variant(self, tmp_path):
        path = str(tmp_path / "n.pcap")
        t = Time.from_nanos(1_000_000_123)
        write_pcap(path, [(t, b"x")], nanos=True)
        back = read_pcap(path)
        assert back[0][0].nanos == 1_000_000_123

    def test_big_endian_reader(self, tmp_path):
        path = str(tmp_path / "be.pcap")
        with open(path, "wb") as f:
            f.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                65535, 1))
            f.write(struct.pack(">IIII", 10, 500000, 3, 3))
            f.write(b"abc")
        with PcapReader(path) as reader:
            packets = list(reader)
        assert packets[0][1] == b"abc"
        assert abs(packets[0][0].seconds - 10.5) < 1e-6

    def test_bad_magic(self, tmp_path):
        path = str(tmp_path / "bad.pcap")
        with open(path, "wb") as f:
            f.write(b"\x00" * 24)
        from repro.net.pcap import PcapError

        with pytest.raises(PcapError):
            PcapReader(path)

    def test_truncated_record(self, tmp_path):
        path = str(tmp_path / "trunc.pcap")
        with PcapWriter(path) as writer:
            writer.write(Time(1.0), b"full-packet")
        data = open(path, "rb").read()
        with open(path, "wb") as f:
            f.write(data[:-4])
        from repro.net.pcap import PcapError

        with pytest.raises(PcapError):
            read_pcap(path)


class TestSnaplen:
    def test_writer_truncates_to_snaplen(self, tmp_path):
        path = str(tmp_path / "snap.pcap")
        with PcapWriter(path, snaplen=16) as writer:
            writer.write(Time(1.0), b"x" * 100)
        with open(path, "rb") as f:
            f.seek(24)
            header = f.read(16)
            captured, original = struct.unpack("<IIII", header)[2:]
            body = f.read()
        assert captured == 16
        assert original == 100  # true wire length preserved
        assert body == b"x" * 16

    def test_short_packet_unaffected(self, tmp_path):
        path = str(tmp_path / "short.pcap")
        with PcapWriter(path, snaplen=64) as writer:
            writer.write(Time(1.0), b"small")
        back = read_pcap(path)
        assert back[0][1] == b"small"

    def test_truncated_capture_reads_back(self, tmp_path):
        path = str(tmp_path / "rt.pcap")
        with PcapWriter(path, snaplen=8) as writer:
            writer.write(Time(1.0), b"0123456789abcdef")
        back = read_pcap(path)
        assert back[0][1] == b"01234567"


class TestTolerantReader:
    @staticmethod
    def _write_records(path, records):
        """A little-endian pcap with raw (captured, original, body) records."""
        with open(path, "wb") as f:
            f.write(struct.pack("<IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                262144, 1))
            for captured, original, body in records:
                f.write(struct.pack("<IIII", 1, 0, captured, original))
                f.write(body)

    def test_truncated_body_skipped(self, tmp_path):
        path = str(tmp_path / "t.pcap")
        self._write_records(path, [
            (3, 3, b"one"),
            (100, 100, b"cut"),  # body shorter than claimed
        ])
        with PcapReader(path, tolerant=True) as reader:
            packets = list(reader)
        assert [p[1] for p in packets] == [b"one"]
        assert reader.records_skipped == 1

    def test_truncated_header_skipped(self, tmp_path):
        path = str(tmp_path / "h.pcap")
        self._write_records(path, [(3, 3, b"one")])
        with open(path, "ab") as f:
            f.write(b"\x01\x02\x03")  # partial next record header
        with PcapReader(path, tolerant=True) as reader:
            packets = list(reader)
        assert len(packets) == 1
        assert reader.records_skipped == 1

    def test_oversized_record_resyncs(self, tmp_path):
        """A record longer than the capture limit (but bounded) is skipped
        and reading resumes at the following record."""
        path = str(tmp_path / "big.pcap")
        big = 0x40001  # just over the minimum capture limit
        self._write_records(path, [
            (3, 3, b"one"),
            (big, big, b"\x00" * big),
            (3, 3, b"two"),
        ])
        with PcapReader(path, tolerant=True) as reader:
            packets = list(reader)
        assert [p[1] for p in packets] == [b"one", b"two"]
        assert reader.records_skipped == 1

    def test_garbage_length_stops_cleanly(self, tmp_path):
        """An implausible length loses the record boundary: tolerant mode
        stops at the corruption instead of reading garbage."""
        path = str(tmp_path / "g.pcap")
        self._write_records(path, [
            (3, 3, b"one"),
            (0xFFFFFFF0, 0xFFFFFFF0, b"junk"),
            (3, 3, b"never-reached"),
        ])
        with PcapReader(path, tolerant=True) as reader:
            packets = list(reader)
        assert [p[1] for p in packets] == [b"one"]
        assert reader.records_skipped == 1

    def test_strict_mode_still_raises(self, tmp_path):
        path = str(tmp_path / "s.pcap")
        self._write_records(path, [(100, 100, b"cut")])
        from repro.net.pcap import PcapError

        with pytest.raises(PcapError):
            read_pcap(path)
