"""Flow hashing, trace generation, ipsumdump."""

import pytest
from hypothesis import given, strategies as st

from repro.core.values import Addr
from repro.net import ipsumdump
from repro.net.flows import FiveTuple, flow_hash, flow_of_frame
from repro.net.packet import PROTO_TCP, PROTO_UDP, parse_ethernet
from repro.net.tracegen import (
    DnsTraceConfig,
    HttpTraceConfig,
    SshTraceConfig,
    TftpTraceConfig,
    generate_dns_trace,
    generate_http_trace,
    generate_mixed_trace,
    generate_ssh_trace,
    generate_tftp_trace,
)


class TestFlows:
    def test_symmetric_hash(self):
        ft = FiveTuple(Addr("1.1.1.1"), Addr("2.2.2.2"), 1234, 80,
                       PROTO_TCP)
        assert flow_hash(ft) == flow_hash(ft.reversed())

    def test_different_flows_differ(self):
        a = FiveTuple(Addr("1.1.1.1"), Addr("2.2.2.2"), 1234, 80, PROTO_TCP)
        b = FiveTuple(Addr("1.1.1.1"), Addr("2.2.2.2"), 1235, 80, PROTO_TCP)
        assert flow_hash(a) != flow_hash(b)

    def test_protocol_distinguishes(self):
        a = FiveTuple(Addr("1.1.1.1"), Addr("2.2.2.2"), 53, 53, PROTO_TCP)
        b = FiveTuple(Addr("1.1.1.1"), Addr("2.2.2.2"), 53, 53, PROTO_UDP)
        assert flow_hash(a) != flow_hash(b)

    def test_flow_of_frame(self):
        frames = generate_http_trace(HttpTraceConfig(sessions=2))
        ft = flow_of_frame(frames[0][1])
        assert ft is not None
        assert ft.protocol == PROTO_TCP
        assert flow_of_frame(b"garbage") is None

    @given(st.integers(0, (1 << 32) - 1), st.integers(0, (1 << 32) - 1),
           st.integers(0, 65535), st.integers(0, 65535))
    def test_hash_direction_invariant(self, a, b, pa, pb):
        ft = FiveTuple(Addr.from_v4_int(a), Addr.from_v4_int(b), pa, pb,
                       PROTO_TCP)
        assert flow_hash(ft) == flow_hash(ft.reversed())


class TestHttpTrace:
    def test_deterministic(self):
        a = generate_http_trace(HttpTraceConfig(seed=7, sessions=5))
        b = generate_http_trace(HttpTraceConfig(seed=7, sessions=5))
        assert [f for __, f in a] == [f for __, f in b]

    def test_different_seeds_differ(self):
        a = generate_http_trace(HttpTraceConfig(seed=1, sessions=5))
        b = generate_http_trace(HttpTraceConfig(seed=2, sessions=5))
        assert [f for __, f in a] != [f for __, f in b]

    def test_timestamps_monotonic(self):
        frames = generate_http_trace(HttpTraceConfig(sessions=5))
        times = [t.nanos for t, __ in frames]
        assert times == sorted(times)

    def test_contains_http_payload(self):
        frames = generate_http_trace(HttpTraceConfig(sessions=3))
        request_seen = False
        response_seen = False
        for __, frame in frames:
            ip, tcp = parse_ethernet(frame)
            if tcp is None or not tcp.payload:
                continue
            if tcp.payload.startswith((b"GET ", b"POST ", b"HEAD ", b"PUT ")):
                request_seen = True
            if tcp.payload.startswith(b"HTTP/1.1 "):
                response_seen = True
        assert request_seen and response_seen

    def test_all_port_80(self):
        frames = generate_http_trace(HttpTraceConfig(sessions=3))
        for __, frame in frames:
            __, tcp = parse_ethernet(frame)
            assert 80 in (tcp.src_port, tcp.dst_port)


class TestDnsTrace:
    def test_deterministic(self):
        a = generate_dns_trace(DnsTraceConfig(seed=5, queries=20))
        b = generate_dns_trace(DnsTraceConfig(seed=5, queries=20))
        assert [f for __, f in a] == [f for __, f in b]

    def test_all_port_53_udp(self):
        frames = generate_dns_trace(DnsTraceConfig(queries=20))
        for __, frame in frames:
            ip, udp = parse_ethernet(frame)
            assert ip.protocol == PROTO_UDP
            assert 53 in (udp.src_port, udp.dst_port)

    def test_requests_get_responses(self):
        config = DnsTraceConfig(queries=50, unanswered_fraction=0.0,
                                crud_fraction=0.0)
        frames = generate_dns_trace(config)
        # With no crud and no drops, every query has exactly one reply.
        assert len(frames) == 100

    def test_crud_fraction(self):
        config = DnsTraceConfig(queries=200, crud_fraction=1.0)
        frames = generate_dns_trace(config)
        # All crud: one packet per "query", no responses.
        assert len(frames) == 200


class TestSshTrace:
    def test_deterministic(self):
        a = generate_ssh_trace(SshTraceConfig(seed=9, sessions=15))
        b = generate_ssh_trace(SshTraceConfig(seed=9, sessions=15))
        assert [f for __, f in a] == [f for __, f in b]

    def test_all_port_22_tcp(self):
        frames = generate_ssh_trace(SshTraceConfig(sessions=10))
        for __, frame in frames:
            ip, tcp = parse_ethernet(frame)
            assert ip.protocol == PROTO_TCP
            assert 22 in (tcp.src_port, tcp.dst_port)

    def test_banners_present(self):
        frames = generate_ssh_trace(
            SshTraceConfig(sessions=20, crud_fraction=0.0))
        payloads = b"".join(f for __, f in frames)
        assert b"SSH-" in payloads

    def test_crud_sessions_lack_banner(self):
        frames = generate_ssh_trace(
            SshTraceConfig(sessions=20, crud_fraction=1.0))
        payloads = b"".join(f for __, f in frames)
        assert b"NOT-AN-SSH-SERVER" in payloads

    def test_timestamps_monotonic(self):
        frames = generate_ssh_trace(SshTraceConfig(sessions=10))
        times = [t for t, __ in frames]
        assert times == sorted(times)


class TestTftpTrace:
    def test_deterministic(self):
        a = generate_tftp_trace(TftpTraceConfig(seed=9, transfers=15))
        b = generate_tftp_trace(TftpTraceConfig(seed=9, transfers=15))
        assert [f for __, f in a] == [f for __, f in b]

    def test_all_port_69_udp(self):
        frames = generate_tftp_trace(TftpTraceConfig(transfers=10))
        for __, frame in frames:
            ip, udp = parse_ethernet(frame)
            assert ip.protocol == PROTO_UDP
            assert 69 in (udp.src_port, udp.dst_port)

    def test_requests_and_data(self):
        frames = generate_tftp_trace(
            TftpTraceConfig(transfers=30, error_fraction=0.0,
                            crud_fraction=0.0))
        opcodes = set()
        for __, frame in frames:
            __, udp = parse_ethernet(frame)
            opcodes.add(int.from_bytes(udp.payload[:2], "big"))
        assert {1, 3, 4} <= opcodes  # RRQ, DATA, ACK

    def test_error_fraction(self):
        frames = generate_tftp_trace(
            TftpTraceConfig(transfers=40, error_fraction=1.0,
                            crud_fraction=0.0))
        # All transfers answered with ERROR: request + error only.
        for __, frame in frames:
            __, udp = parse_ethernet(frame)
            assert int.from_bytes(udp.payload[:2], "big") in (1, 2, 5)


class TestMixedTrace:
    def test_backwards_compatible_without_new_kinds(self):
        old = generate_mixed_trace(HttpTraceConfig(sessions=5),
                                   DnsTraceConfig(queries=5))
        assert all(len(item) == 2 for item in old)

    def test_four_way_merge_sorted(self):
        frames = generate_mixed_trace(
            http=HttpTraceConfig(sessions=5),
            dns=DnsTraceConfig(queries=5),
            ssh=SshTraceConfig(sessions=5),
            tftp=TftpTraceConfig(transfers=5))
        times = [t for t, __ in frames]
        assert times == sorted(times)
        ports = set()
        for __, frame in frames:
            __, transport = parse_ethernet(frame)
            ports.add(transport.src_port)
            ports.add(transport.dst_port)
        assert {80, 53, 22, 69} <= ports


class TestIpsumdump:
    def test_roundtrip(self, tmp_path):
        frames = generate_dns_trace(DnsTraceConfig(queries=10))
        path = str(tmp_path / "dump.txt")
        count = ipsumdump.dump_to_file(path, frames)
        parsed = ipsumdump.read_file(path)
        assert len(parsed) == count
        t, src, dst = parsed[0]
        ip, __ = parse_ethernet(frames[0][1])
        assert src == ip.src and dst == ip.dst

    def test_line_format(self):
        frames = generate_dns_trace(DnsTraceConfig(queries=2))
        line = next(ipsumdump.dump_lines(frames))
        parts = line.split()
        assert len(parts) == 3
        float(parts[0])  # timestamp parses
