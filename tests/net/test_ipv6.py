"""IPv6 wire format and end-to-end pipeline support.

HILTI's single ``addr`` type covers both families (paper, section 3.2);
the substrate carries that through: IPv6 frames parse, flow-hash, and
drive the full Bro pipeline exactly like IPv4 ones.
"""

import io

import pytest

from repro.core.values import Addr
from repro.net import (
    IPv6Packet,
    PacketError,
    build_tcp6_packet,
    build_udp6_packet,
    parse_ethernet,
)
from repro.net.flows import flow_hash, flow_of_frame
from repro.net.tracegen import DnsTraceConfig, generate_dns_trace


class TestWireFormat:
    def test_udp6_roundtrip(self):
        frame = build_udp6_packet(
            Addr("2001:db8::1"), Addr("2001:db8::53"), 5555, 53, b"query",
        )
        ip, udp = parse_ethernet(frame)
        assert isinstance(ip, IPv6Packet)
        assert ip.src == Addr("2001:db8::1")
        assert ip.dst == Addr("2001:db8::53")
        assert udp.payload == b"query"

    def test_tcp6_roundtrip(self):
        frame = build_tcp6_packet(
            Addr("2001:db8::a"), Addr("2001:db8::b"), 1000, 80,
            seq=42, payload=b"GET /",
        )
        ip, tcp = parse_ethernet(frame)
        assert ip.protocol == 6
        assert tcp.seq == 42
        assert tcp.payload == b"GET /"

    def test_header_fields(self):
        packet = IPv6Packet(
            Addr("::1"), Addr("::2"), 17, b"xy",
            hop_limit=33, traffic_class=7, flow_label=0xABCDE,
        )
        parsed = IPv6Packet.parse(packet.build())
        assert parsed.hop_limit == 33
        assert parsed.traffic_class == 7
        assert parsed.flow_label == 0xABCDE

    def test_truncated(self):
        with pytest.raises(PacketError):
            IPv6Packet.parse(b"\x60" + b"\x00" * 10)

    def test_wrong_version(self):
        with pytest.raises(PacketError):
            IPv6Packet.parse(b"\x40" + b"\x00" * 39)


class TestFlows6:
    def test_flow_hash_symmetric(self):
        frame = build_udp6_packet(
            Addr("2001:db8::1"), Addr("2001:db8::2"), 1234, 53,
            payload=b"x",
        )
        ft = flow_of_frame(frame)
        assert ft is not None
        assert flow_hash(ft) == flow_hash(ft.reversed())

    def test_v4_v6_flows_distinct(self):
        from repro.net import build_udp_packet

        v4 = flow_of_frame(build_udp_packet(
            Addr("10.0.0.1"), Addr("10.0.0.2"), 1234, 53, payload=b"x"))
        v6 = flow_of_frame(build_udp6_packet(
            Addr("2001:db8::1"), Addr("2001:db8::2"), 1234, 53,
            payload=b"x"))
        assert flow_hash(v4) != flow_hash(v6)


class TestPipeline6:
    def test_dns_over_ipv6_logged_by_both_parsers(self):
        from repro.apps.bro import Bro, normalize_log

        trace = generate_dns_trace(
            DnsTraceConfig(queries=120, ipv6_fraction=0.5)
        )
        logs = {}
        for parsers in ("std", "pac"):
            bro = Bro(parsers=parsers, print_stream=io.StringIO())
            bro.run(trace)
            logs[parsers] = bro.log_lines("dns")
        v6_lines = [l for l in logs["std"] if "2001:db8:" in l]
        assert v6_lines, "no IPv6 sessions logged"
        a = set(normalize_log(logs["std"], drop_columns=(0,)))
        b = set(normalize_log(logs["pac"], drop_columns=(0,)))
        assert len(a & b) / max(len(a), len(b)) > 0.99

    def test_aaaa_answers_render_as_v6(self):
        from repro.apps.bro import Bro

        trace = generate_dns_trace(DnsTraceConfig(queries=200))
        bro = Bro(print_stream=io.StringIO())
        bro.run(trace)
        aaaa = [l for l in bro.log_lines("dns") if "\tAAAA\t" in l
                and "\tNOERROR\t" in l]
        assert aaaa
        assert any("2001:db8:" in line for line in aaaa)
