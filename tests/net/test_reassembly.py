"""TCP stream reassembly under reordering, overlap, and loss."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.packet import ACK, FIN, PSH, SYN, TCPSegment
from repro.net.reassembly import ConnectionReassembler, StreamReassembler


class TestStream:
    def test_in_order(self):
        s = StreamReassembler()
        s.on_syn(99)
        assert s.feed(100, b"abc") == b"abc"
        assert s.feed(103, b"def") == b"def"

    def test_out_of_order_buffered(self):
        s = StreamReassembler()
        s.on_syn(99)
        assert s.feed(103, b"def") == b""
        assert s.feed(100, b"abc") == b"abcdef"
        assert s.out_of_order_segments == 1

    def test_retransmission_dropped(self):
        s = StreamReassembler()
        s.on_syn(99)
        s.feed(100, b"abcdef")
        assert s.feed(100, b"abcdef") == b""
        assert s.feed(103, b"defghi") == b"ghi"  # overlap trimmed

    def test_sequence_wraparound(self):
        s = StreamReassembler()
        start = (1 << 32) - 3
        s.on_syn(start - 1)
        assert s.feed(start, b"abc") == b"abc"
        assert s.feed(0, b"def") == b"def"

    def test_gap_skip(self):
        s = StreamReassembler()
        s.on_syn(99)
        s.feed(100, b"abc")
        s.feed(110, b"xyz")  # hole at 103..109
        assert s.pending_bytes() == 3
        skipped = s.skip_gap()
        assert skipped == 7
        assert s.feed(113, b"") == b""
        # After the skip the pending segment drains on the next feed.
        assert s.feed(110, b"xyz") == b"xyz"

    def test_mid_stream_pickup(self):
        s = StreamReassembler()
        assert s.feed(5000, b"data") == b"data"


class TestConnection:
    @staticmethod
    def _handshake(conn):
        conn.feed_segment(True, TCPSegment(1, 2, seq=100, flags=SYN))
        conn.feed_segment(False, TCPSegment(2, 1, seq=500, ack=101,
                                            flags=SYN | ACK))
        conn.feed_segment(True, TCPSegment(1, 2, seq=101, ack=501,
                                           flags=ACK))

    def test_established_event(self):
        events = []
        conn = ConnectionReassembler(
            on_established=lambda: events.append("est"),
        )
        self._handshake(conn)
        assert conn.established
        assert events == ["est"]

    def test_data_delivery(self):
        chunks = []
        conn = ConnectionReassembler(
            on_data=lambda is_orig, data: chunks.append((is_orig, data)),
        )
        self._handshake(conn)
        conn.feed_segment(True, TCPSegment(1, 2, seq=101, ack=501,
                                           flags=ACK | PSH,
                                           payload=b"GET /"))
        conn.feed_segment(False, TCPSegment(2, 1, seq=501, ack=106,
                                            flags=ACK | PSH,
                                            payload=b"200 OK"))
        assert chunks == [(True, b"GET /"), (False, b"200 OK")]

    def test_fin_both_sides_closes(self):
        closed = []
        conn = ConnectionReassembler(on_close=lambda: closed.append(1))
        self._handshake(conn)
        conn.feed_segment(True, TCPSegment(1, 2, seq=101, ack=501,
                                           flags=FIN | ACK))
        assert not conn.closed
        conn.feed_segment(False, TCPSegment(2, 1, seq=501, ack=102,
                                            flags=FIN | ACK))
        assert conn.closed
        assert closed == [1]

    def test_rst_closes_immediately(self):
        conn = ConnectionReassembler()
        self._handshake(conn)
        from repro.net.packet import RST

        conn.feed_segment(True, TCPSegment(1, 2, seq=101, flags=RST))
        assert conn.closed


class TestReorderingProperty:
    @given(st.binary(min_size=1, max_size=300), st.integers(0, 2**31),
           st.randoms())
    @settings(max_examples=25, deadline=None)
    def test_any_order_reassembles(self, payload, isn, rng):
        """Segments delivered in any order reassemble to the stream."""
        mss = 7
        segments = []
        seq = (isn + 1) % (1 << 32)
        for i in range(0, len(payload), mss):
            segments.append((seq, payload[i:i + mss]))
            seq = (seq + len(payload[i:i + mss])) % (1 << 32)
        rng.shuffle(segments)
        s = StreamReassembler()
        s.on_syn(isn)
        out = bytearray()
        for seg_seq, chunk in segments:
            out.extend(s.feed(seg_seq, chunk))
        assert bytes(out) == payload

    @given(st.binary(min_size=1, max_size=200), st.randoms())
    @settings(max_examples=25, deadline=None)
    def test_duplicates_do_not_corrupt(self, payload, rng):
        mss = 5
        segments = []
        seq = 100
        for i in range(0, len(payload), mss):
            segments.append((seq, payload[i:i + mss]))
            seq += len(payload[i:i + mss])
        # Deliver everything twice in random order.
        doubled = segments + segments
        rng.shuffle(doubled)
        s = StreamReassembler()
        s.on_syn(99)
        out = bytearray()
        for seg_seq, chunk in doubled:
            out.extend(s.feed(seg_seq, chunk))
        assert bytes(out) == payload


class TestAdversarialOverlap:
    """Pathological overlap/duplication: deterministic resolution,
    counters, bounded memory (docs/ROBUSTNESS.md)."""

    def test_conflicting_retransmit_first_arrival_wins(self):
        s = StreamReassembler()
        s.on_syn(99)
        assert s.feed(103, b"DEF") == b""  # buffered out of order
        # Attacker retransmits the same range with different content.
        assert s.feed(103, b"XYZ") == b""
        assert s.feed(100, b"abc") == b"abcDEF"
        assert s.duplicate_segments == 1
        assert s.overlap_bytes == 3

    def test_overlap_straddling_pending_segment(self):
        s = StreamReassembler()
        s.on_syn(99)
        s.feed(104, b"EF")  # pending at 104..105
        # Newcomer 102..107 overlaps the middle; only the disjoint
        # head and tail survive (first arrival keeps "EF").
        s.feed(102, b"cdXXgh")
        assert s.overlap_bytes == 2
        assert s.feed(100, b"ab") == b"abcdEFgh"

    def test_pending_segment_straddles_delivered_boundary(self):
        """A buffered segment reaching behind an in-order delivery must
        not lose its tail (regression: stale pending entries)."""
        s = StreamReassembler()
        s.on_syn(99)
        s.feed(102, b"ccdd")  # pending 102..105
        assert s.feed(100, b"ab") == b"abccdd"
        assert s.pending_bytes() == 0

    def test_fully_covered_newcomer_counted_duplicate(self):
        s = StreamReassembler()
        s.on_syn(99)
        s.feed(102, b"cdef")
        s.feed(103, b"XX")  # entirely inside the pending segment
        assert s.duplicate_segments == 1
        assert s.feed(100, b"ab") == b"abcdef"

    def test_old_data_trimmed_not_redelivered(self):
        s = StreamReassembler()
        s.on_syn(99)
        assert s.feed(100, b"abcdef") == b"abcdef"
        # Overlapping retransmit with a new tail: only the tail comes out.
        assert s.feed(102, b"XXXXghi") == b"ghi"
        assert s.overlap_bytes == 4

    def test_memory_bound_drops_and_counts(self):
        s = StreamReassembler(max_pending_bytes=10)
        s.on_syn(99)
        s.feed(200, b"A" * 8)   # buffered: 8 bytes
        s.feed(300, b"B" * 8)   # 2 admitted, 6 dropped
        assert s.pending_bytes() == 10
        assert s.dropped_bytes == 6
        s.feed(400, b"C" * 4)   # budget exhausted entirely
        assert s.pending_bytes() == 10
        assert s.dropped_bytes == 10

    def test_memory_bound_does_not_block_in_order_data(self):
        s = StreamReassembler(max_pending_bytes=4)
        s.on_syn(99)
        s.feed(110, b"Z" * 4)  # fills the pending budget
        # In-order data never touches the pending buffer.
        assert s.feed(100, b"abcde") == b"abcde"

    def test_duplicate_flood_bounded(self):
        """Re-sending one out-of-order segment forever costs no memory."""
        s = StreamReassembler()
        s.on_syn(99)
        for _ in range(1000):
            s.feed(200, b"flood")
        assert s.pending_bytes() == 5
        assert s.duplicate_segments == 999

    def test_overlap_resolution_is_arrival_order_deterministic(self):
        """Same segments, same order -> identical stream and counters."""
        segments = [(104, b"EEff"), (100, b"abCD"), (102, b"cdeF"),
                    (100, b"ABcd"), (106, b"ghij")]

        def run():
            s = StreamReassembler()
            s.on_syn(99)
            out = bytearray()
            for seq, data in segments:
                out.extend(s.feed(seq, data))
            return bytes(out), s.overlap_bytes, s.duplicate_segments

        assert run() == run()
        out, overlap, dups = run()
        # First arrival per byte: "EEff" (104..107) landed before the
        # conflicting retransmits at 100/102, so its bytes stand.
        assert out == b"abCDEEffij"
        assert overlap == 2
        assert dups == 2
