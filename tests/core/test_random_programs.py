"""Property-based differential testing with randomly generated programs.

Hypothesis builds random (but well-typed) HILTI functions over integer
and boolean locals — straight-line arithmetic, branches, and loops with
bounded trip counts — and checks three engines against each other:

* the compiled tier (closure/bytecode codegen),
* the compiled tier with all HILTI-level optimizations applied,
* the reference interpreter.

Any divergence is a real bug in codegen, the optimizer, or the
interpreter.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import hiltic
from repro.core import types as ht
from repro.core.builder import ModuleBuilder
from repro.runtime.exceptions import HiltiError

_N_VARS = 4
_PURE_BINOPS = ["int.add", "int.sub", "int.mul", "int.min", "int.max",
                "int.and", "int.or", "int.xor"]
_CMP_OPS = ["int.eq", "int.lt", "int.le", "int.gt", "int.ge"]


@st.composite
def _straightline(draw):
    """A list of (mnemonic, target_index, a_index_or_const, b_...)."""
    n_ops = draw(st.integers(1, 12))
    ops = []
    for __ in range(n_ops):
        mnemonic = draw(st.sampled_from(_PURE_BINOPS))
        target = draw(st.integers(0, _N_VARS - 1))
        a = draw(st.one_of(st.integers(0, _N_VARS - 1).map(lambda i: ("v", i)),
                           st.integers(-50, 50).map(lambda c: ("c", c))))
        b = draw(st.one_of(st.integers(0, _N_VARS - 1).map(lambda i: ("v", i)),
                           st.integers(-50, 50).map(lambda c: ("c", c))))
        ops.append((mnemonic, target, a, b))
    return ops


def _build_straightline(ops):
    mb = ModuleBuilder("Main")
    params = [(f"v{i}", ht.INT64) for i in range(_N_VARS)]
    fb = mb.function("f", params, ht.INT64)

    def operand(spec):
        kind, value = spec
        if kind == "v":
            return fb.var(f"v{value}")
        return fb.const(ht.INT64, value)

    for mnemonic, target, a, b in ops:
        fb.emit(mnemonic, operand(a), operand(b),
                target=fb.var(f"v{target}"))
    total = fb.temp(ht.INT64, "total")
    fb.emit("assign", fb.const(ht.INT64, 0), target=total)
    for i in range(_N_VARS):
        fb.emit("int.add", total, fb.var(f"v{i}"), target=total)
    fb.ret(total)
    return mb.finish()


class TestStraightLine:
    @given(_straightline(),
           st.lists(st.integers(-1000, 1000), min_size=_N_VARS,
                    max_size=_N_VARS))
    @settings(max_examples=60, deadline=None)
    def test_three_engines_agree(self, ops, args):
        module = _build_straightline(ops)
        compiled = hiltic([module], optimize=False)
        # Rebuild: the optimizer mutates modules in place.
        optimized = hiltic([_build_straightline(ops)], optimize=True)
        interp = hiltic([_build_straightline(ops)], tier="interpreted",
                        optimize=False)
        expected = interp.call(interp.make_context(), "Main::f", list(args))
        assert compiled.call(
            compiled.make_context(), "Main::f", list(args)) == expected
        assert optimized.call(
            optimized.make_context(), "Main::f", list(args)) == expected


@st.composite
def _branchy(draw):
    """(comparison op, threshold, then-ops, else-ops, loop-count)."""
    return (
        draw(st.sampled_from(_CMP_OPS)),
        draw(st.integers(-20, 20)),
        draw(_straightline()),
        draw(_straightline()),
        draw(st.integers(0, 8)),
    )


def _build_branchy(spec):
    cmp_op, threshold, then_ops, else_ops, loop_n = spec
    mb = ModuleBuilder("Main")
    params = [(f"v{i}", ht.INT64) for i in range(_N_VARS)]
    fb = mb.function("f", params, ht.INT64)

    def operand(spec_):
        kind, value = spec_
        if kind == "v":
            return fb.var(f"v{value}")
        return fb.const(ht.INT64, value)

    def emit_ops(ops):
        for mnemonic, target, a, b in ops:
            fb.emit(mnemonic, operand(a), operand(b),
                    target=fb.var(f"v{target}"))

    cond = fb.temp(ht.BOOL, "cond")
    counter = fb.temp(ht.INT64, "i")
    fb.emit("assign", fb.const(ht.INT64, 0), target=counter)
    fb.jump("head")
    fb.block("head")
    more = fb.temp(ht.BOOL, "more")
    fb.emit("int.lt", counter, fb.const(ht.INT64, loop_n), target=more)
    fb.branch(more, "body", "out")
    fb.block("body")
    fb.emit(cmp_op, fb.var("v0"), fb.const(ht.INT64, threshold),
            target=cond)
    fb.branch(cond, "then", "orelse")
    fb.block("then")
    emit_ops(then_ops)
    fb.jump("next")
    fb.block("orelse")
    emit_ops(else_ops)
    fb.jump("next")
    fb.block("next")
    fb.emit("int.incr", counter, target=counter)
    fb.jump("head")
    fb.block("out")
    total = fb.temp(ht.INT64, "total")
    fb.emit("assign", fb.const(ht.INT64, 0), target=total)
    for i in range(_N_VARS):
        fb.emit("int.add", total, fb.var(f"v{i}"), target=total)
    fb.ret(total)
    return mb.finish()


class TestBranchesAndLoops:
    @given(_branchy(),
           st.lists(st.integers(-100, 100), min_size=_N_VARS,
                    max_size=_N_VARS))
    @settings(max_examples=40, deadline=None)
    def test_three_engines_agree(self, spec, args):
        interp = hiltic([_build_branchy(spec)], tier="interpreted",
                        optimize=False)
        compiled = hiltic([_build_branchy(spec)], optimize=False)
        optimized = hiltic([_build_branchy(spec)], optimize=True)
        expected = interp.call(interp.make_context(), "Main::f", list(args))
        assert compiled.call(
            compiled.make_context(), "Main::f", list(args)) == expected
        assert optimized.call(
            optimized.make_context(), "Main::f", list(args)) == expected


class TestTrappingPrograms:
    @given(st.integers(-5, 5), st.integers(-5, 5))
    @settings(max_examples=30, deadline=None)
    def test_division_agrees_including_traps(self, a, b):
        source = """module Main
int<64> f(int<64> a, int<64> b) {
    local int<64> q
    local int<64> r
    q = int.div a b
    r = int.mod a b
    local int<64> out
    out = int.add q r
    return out
}
"""
        compiled = hiltic([source])
        interp = hiltic([source], tier="interpreted")

        def outcome(program):
            try:
                return ("ok", program.call(
                    program.make_context(), "Main::f", [a, b]))
            except HiltiError as error:
                return ("raise", error.except_type.type_name)

        assert outcome(compiled) == outcome(interp)
        if b != 0:
            # C semantics: truncation toward zero.
            q = abs(a) // abs(b)
            if (a >= 0) != (b >= 0):
                q = -q
            r = a - b * q
            assert outcome(compiled) == ("ok", q + r)
