"""HILTI-level optimization passes."""

import pytest

from repro.core import hiltic
from repro.core.linker import link, strip_unreachable
from repro.core.optimize import OptStats, optimize_module
from repro.core.parser import parse_module


def _optimized(source):
    module = parse_module(source)
    stats = optimize_module(module)
    return module, stats


class TestConstantFolding:
    def test_folds_pure_constant_ops(self):
        module, stats = _optimized("""module Main
int<64> f() {
    local int<64> x
    x = int.add 20 22
    return x
}
""")
        assert stats.folded >= 1
        # The folded constant propagates all the way into the return.
        instructions = [
            i
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert all(i.mnemonic != "int.add" for i in instructions)
        assert instructions[-1].mnemonic == "return.result"
        assert instructions[-1].operands[0].value == 42

    def test_leaves_trapping_folds_for_runtime(self):
        module, stats = _optimized("""module Main
int<64> f() {
    local int<64> x
    x = int.div 1 0
    return x
}
""")
        instr = module.functions["Main::f"].blocks[0].instructions[0]
        assert instr.mnemonic == "int.div"  # still traps at runtime

    def test_folded_program_still_correct(self):
        src = """module Main
int<64> f() {
    local int<64> x
    local int<64> y
    x = int.mul 6 7
    y = int.add x 0
    return y
}
"""
        program = hiltic([src], optimize=True)
        assert program.call(program.make_context(), "Main::f") == 42


class TestDeadCode:
    def test_unreachable_blocks_removed(self):
        module, stats = _optimized("""module Main
int<64> f() {
    jump out
dead:
    local int<64> z
    z = int.add 1 2
    jump out
out:
    return 0
}
""")
        # `dead` has no predecessors (jump goes straight to out).
        labels = [b.label for b in module.functions["Main::f"].blocks]
        assert "dead" not in labels
        assert stats.dead_blocks >= 1

    def test_dead_stores_removed(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> a) {
    local int<64> unused
    unused = int.mul a a
    return a
}
""")
        assert stats.dead_stores >= 1
        mnemonics = [
            i.mnemonic
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert "int.mul" not in mnemonics

    def test_global_stores_never_removed(self):
        module, stats = _optimized("""module Main
global int<64> g
void f(int<64> a) {
    g = int.mul a a
}
""")
        mnemonics = [
            i.mnemonic
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert "int.mul" in mnemonics


class TestCSE:
    def test_repeated_expression_collapses(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> a, int<64> b) {
    local int<64> x
    local int<64> y
    local int<64> r
    x = int.add a b
    y = int.add a b
    r = int.add x y
    return r
}
""")
        assert stats.cse_hits >= 1
        program = hiltic([parse_module("""module Main
int<64> f(int<64> a, int<64> b) {
    local int<64> x
    local int<64> y
    local int<64> r
    x = int.add a b
    y = int.add a b
    r = int.add x y
    return r
}
""")])
        assert program.call(program.make_context(), "Main::f", [3, 4]) == 14

    def test_reassignment_invalidates(self):
        src = """module Main
int<64> f(int<64> a) {
    local int<64> x
    local int<64> y
    x = int.add a 1
    a = int.mul a 2
    y = int.add a 1
    return y
}
"""
        program = hiltic([src], optimize=True)
        # a=5: x=6, a=10, y=11 — CSE must NOT reuse x for y.
        assert program.call(program.make_context(), "Main::f", [5]) == 11


class TestLinkTimeDCE:
    def test_strip_unreachable_functions(self):
        module = parse_module("""module Main
void used() {
    return
}

void unused() {
    return
}

void run() {
    call used()
}
""")
        program = link([module])
        removed = strip_unreachable(program, ["Main::run"])
        assert removed == 1
        assert "Main::unused" not in program.functions
        assert "Main::used" in program.functions

    def test_hook_bodies_kept(self):
        module = parse_module("""module Main
hook void h() {
    call helper()
}

void helper() {
    return
}

void run() {
    return
}
""")
        program = link([module])
        removed = strip_unreachable(program, ["Main::run"])
        assert removed == 0
        assert "Main::helper" in program.functions


class TestJumpThreading:
    def test_forwarding_block_bypassed(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> x) {
    local bool b
    b = int.lt x 0
    if.else b hop direct
hop:
    jump target
direct:
    return 1
target:
    return 2
}
""")
        assert stats.jumps_threaded >= 1
        # The forwarding block is now unreachable and removed.
        labels = [b.label for b in module.functions["Main::f"].blocks]
        assert "hop" not in labels

    def test_threaded_program_still_correct(self):
        src = """module Main
int<64> f(int<64> x) {
    local bool b
    b = int.lt x 0
    if.else b hop direct
hop:
    jump target
direct:
    return 1
target:
    return 2
}
"""
        from repro.core import hiltic

        for optimize in (True, False):
            program = hiltic([src], optimize=optimize)
            ctx = program.make_context()
            assert program.call(ctx, "Main::f", [-1]) == 2
            assert program.call(ctx, "Main::f", [1]) == 1

    def test_jump_cycle_left_alone(self):
        # Two blocks jumping at each other must not hang the optimizer.
        src = """module Main
void f(bool b) {
    if.else b a done
a:
    jump c
c:
    jump a
done:
    return
}
"""
        from repro.core.optimize import optimize_module
        from repro.core.parser import parse_module

        optimize_module(parse_module(src))  # must terminate


class TestConstantPropagation:
    def test_propagates_across_blocks(self):
        # x is 7 on every path into the join block; the branch on the
        # known condition folds and the add computes at compile time.
        module, stats = _optimized("""module Main
int<64> f(bool c) {
    local int<64> x
    x = int.add 3 4
    if.else c a b
a:
    jump join
b:
    jump join
join:
    local int<64> y
    y = int.add x 1
    return y
}
""")
        assert stats.propagated + stats.folded >= 2
        instructions = [
            i
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        returns = [i for i in instructions if i.mnemonic == "return.result"]
        assert returns and returns[0].operands[0].value == 8

    def test_conflicting_paths_not_propagated(self):
        src = """module Main
int<64> f(bool c) {
    local int<64> x
    if.else c a b
a:
    x = int.add 0 1
    jump join
b:
    x = int.add 0 2
    jump join
join:
    return x
}
"""
        for level in (0, 1):
            program = hiltic([src], opt_level=level)
            ctx = program.make_context()
            assert program.call(ctx, "Main::f", [True]) == 1
            assert program.call(ctx, "Main::f", [False]) == 2


class TestBranchSimplification:
    def test_constant_branch_becomes_jump(self):
        module, stats = _optimized("""module Main
int<64> f() {
    local bool c
    c = bool.and True True
    if.else c yes no
yes:
    return 1
no:
    return 2
}
""")
        assert stats.branches_simplified >= 1
        assert stats.dead_blocks >= 1
        mnemonics = [
            i.mnemonic
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert "if.else" not in mnemonics


class TestBlockMerging:
    def test_single_pred_single_succ_merged(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> a) {
    local int<64> x
    x = int.mul a a
    jump next
next:
    local int<64> y
    y = int.add x a
    return y
}
""")
        assert stats.jumps_threaded + stats.blocks_merged >= 1
        function = module.functions["Main::f"]
        assert len(function.blocks) == 1


class TestLocalPruning:
    def test_unused_locals_dropped(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> a) {
    local int<64> dead
    local int<64> keep
    dead = int.add a 1
    keep = int.mul a 2
    return keep
}
""")
        assert stats.dead_stores >= 1
        assert stats.locals_pruned >= 1
        names = [l.name for l in module.functions["Main::f"].locals]
        assert "dead" not in names
        assert "keep" in names

    def test_pruned_function_still_runs(self):
        src = """module Main
int<64> f(int<64> a) {
    local int<64> dead
    local int<64> keep
    dead = int.add a 1
    keep = int.mul a 2
    return keep
}
"""
        for level in (0, 1):
            program = hiltic([src], opt_level=level)
            assert program.call(program.make_context(), "Main::f", [6]) == 12


class TestOptStats:
    def test_as_dict_reports_every_counter(self):
        module, stats = _optimized("""module Main
int<64> f() {
    local int<64> x
    x = int.add 20 22
    return x
}
""")
        report = stats.as_dict()
        assert report["folded"] >= 1
        assert set(report) >= {
            "folded", "propagated", "branches_simplified", "dead_blocks",
            "dead_stores", "cse_hits", "jumps_threaded", "blocks_merged",
            "locals_pruned",
        }
        assert stats.total() == sum(report.values())
