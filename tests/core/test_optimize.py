"""HILTI-level optimization passes."""

import pytest

from repro.core import hiltic
from repro.core.linker import link, strip_unreachable
from repro.core.optimize import OptStats, optimize_module
from repro.core.parser import parse_module


def _optimized(source):
    module = parse_module(source)
    stats = optimize_module(module)
    return module, stats


class TestConstantFolding:
    def test_folds_pure_constant_ops(self):
        module, stats = _optimized("""module Main
int<64> f() {
    local int<64> x
    x = int.add 20 22
    return x
}
""")
        assert stats.folded >= 1
        instr = module.functions["Main::f"].blocks[0].instructions[0]
        assert instr.mnemonic == "assign"
        assert instr.operands[0].value == 42

    def test_leaves_trapping_folds_for_runtime(self):
        module, stats = _optimized("""module Main
int<64> f() {
    local int<64> x
    x = int.div 1 0
    return x
}
""")
        instr = module.functions["Main::f"].blocks[0].instructions[0]
        assert instr.mnemonic == "int.div"  # still traps at runtime

    def test_folded_program_still_correct(self):
        src = """module Main
int<64> f() {
    local int<64> x
    local int<64> y
    x = int.mul 6 7
    y = int.add x 0
    return y
}
"""
        program = hiltic([src], optimize=True)
        assert program.call(program.make_context(), "Main::f") == 42


class TestDeadCode:
    def test_unreachable_blocks_removed(self):
        module, stats = _optimized("""module Main
int<64> f() {
    jump out
dead:
    local int<64> z
    z = int.add 1 2
    jump out
out:
    return 0
}
""")
        # `dead` has no predecessors (jump goes straight to out).
        labels = [b.label for b in module.functions["Main::f"].blocks]
        assert "dead" not in labels
        assert stats.dead_blocks >= 1

    def test_dead_stores_removed(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> a) {
    local int<64> unused
    unused = int.mul a a
    return a
}
""")
        assert stats.dead_stores >= 1
        mnemonics = [
            i.mnemonic
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert "int.mul" not in mnemonics

    def test_global_stores_never_removed(self):
        module, stats = _optimized("""module Main
global int<64> g
void f(int<64> a) {
    g = int.mul a a
}
""")
        mnemonics = [
            i.mnemonic
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert "int.mul" in mnemonics


class TestCSE:
    def test_repeated_expression_collapses(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> a, int<64> b) {
    local int<64> x
    local int<64> y
    local int<64> r
    x = int.add a b
    y = int.add a b
    r = int.add x y
    return r
}
""")
        assert stats.cse_hits >= 1
        program = hiltic([parse_module("""module Main
int<64> f(int<64> a, int<64> b) {
    local int<64> x
    local int<64> y
    local int<64> r
    x = int.add a b
    y = int.add a b
    r = int.add x y
    return r
}
""")])
        assert program.call(program.make_context(), "Main::f", [3, 4]) == 14

    def test_reassignment_invalidates(self):
        src = """module Main
int<64> f(int<64> a) {
    local int<64> x
    local int<64> y
    x = int.add a 1
    a = int.mul a 2
    y = int.add a 1
    return y
}
"""
        program = hiltic([src], optimize=True)
        # a=5: x=6, a=10, y=11 — CSE must NOT reuse x for y.
        assert program.call(program.make_context(), "Main::f", [5]) == 11


class TestLinkTimeDCE:
    def test_strip_unreachable_functions(self):
        module = parse_module("""module Main
void used() {
    return
}

void unused() {
    return
}

void run() {
    call used()
}
""")
        program = link([module])
        removed = strip_unreachable(program, ["Main::run"])
        assert removed == 1
        assert "Main::unused" not in program.functions
        assert "Main::used" in program.functions

    def test_hook_bodies_kept(self):
        module = parse_module("""module Main
hook void h() {
    call helper()
}

void helper() {
    return
}

void run() {
    return
}
""")
        program = link([module])
        removed = strip_unreachable(program, ["Main::run"])
        assert removed == 0
        assert "Main::helper" in program.functions


class TestJumpThreading:
    def test_forwarding_block_bypassed(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> x) {
    local bool b
    b = int.lt x 0
    if.else b hop direct
hop:
    jump target
direct:
    return 1
target:
    return 2
}
""")
        assert stats.jumps_threaded >= 1
        # The forwarding block is now unreachable and removed.
        labels = [b.label for b in module.functions["Main::f"].blocks]
        assert "hop" not in labels

    def test_threaded_program_still_correct(self):
        src = """module Main
int<64> f(int<64> x) {
    local bool b
    b = int.lt x 0
    if.else b hop direct
hop:
    jump target
direct:
    return 1
target:
    return 2
}
"""
        from repro.core import hiltic

        for optimize in (True, False):
            program = hiltic([src], optimize=optimize)
            ctx = program.make_context()
            assert program.call(ctx, "Main::f", [-1]) == 2
            assert program.call(ctx, "Main::f", [1]) == 1

    def test_jump_cycle_left_alone(self):
        # Two blocks jumping at each other must not hang the optimizer.
        src = """module Main
void f(bool b) {
    if.else b a done
a:
    jump c
c:
    jump a
done:
    return
}
"""
        from repro.core.optimize import optimize_module
        from repro.core.parser import parse_module

        optimize_module(parse_module(src))  # must terminate
