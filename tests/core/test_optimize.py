"""HILTI-level optimization passes."""

import pytest

from repro.core import hiltic
from repro.core import types as ht
from repro.core.ir import (
    Block,
    Const,
    Function,
    Instruction,
    LabelRef,
    Module,
    Var,
)
from repro.core.linker import link, strip_unreachable
from repro.core.optimize import (
    DEFAULT_OPT_LEVEL,
    OPT_LEVELS,
    OptStats,
    merge_blocks,
    optimize_module,
)
from repro.core.parser import parse_module


def _optimized(source, level=DEFAULT_OPT_LEVEL):
    module = parse_module(source)
    stats = optimize_module(module, level=level)
    return module, stats


def _behavior(source, entry, cases):
    """Every optimization level agrees with the unoptimized program."""
    for args, expected in cases:
        for level in OPT_LEVELS:
            program = hiltic([source], opt_level=level)
            got = program.call(program.make_context(), entry, list(args))
            assert got == expected, f"-O{level} {entry}{args!r}"


class TestConstantFolding:
    def test_folds_pure_constant_ops(self):
        module, stats = _optimized("""module Main
int<64> f() {
    local int<64> x
    x = int.add 20 22
    return x
}
""")
        assert stats.folded >= 1
        # The folded constant propagates all the way into the return.
        instructions = [
            i
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert all(i.mnemonic != "int.add" for i in instructions)
        assert instructions[-1].mnemonic == "return.result"
        assert instructions[-1].operands[0].value == 42

    def test_leaves_trapping_folds_for_runtime(self):
        module, stats = _optimized("""module Main
int<64> f() {
    local int<64> x
    x = int.div 1 0
    return x
}
""")
        instr = module.functions["Main::f"].blocks[0].instructions[0]
        assert instr.mnemonic == "int.div"  # still traps at runtime

    def test_folded_program_still_correct(self):
        src = """module Main
int<64> f() {
    local int<64> x
    local int<64> y
    x = int.mul 6 7
    y = int.add x 0
    return y
}
"""
        program = hiltic([src], optimize=True)
        assert program.call(program.make_context(), "Main::f") == 42


class TestDeadCode:
    def test_unreachable_blocks_removed(self):
        module, stats = _optimized("""module Main
int<64> f() {
    jump out
dead:
    local int<64> z
    z = int.add 1 2
    jump out
out:
    return 0
}
""")
        # `dead` has no predecessors (jump goes straight to out).
        labels = [b.label for b in module.functions["Main::f"].blocks]
        assert "dead" not in labels
        assert stats.dead_blocks >= 1

    def test_dead_stores_removed(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> a) {
    local int<64> unused
    unused = int.mul a a
    return a
}
""")
        assert stats.dead_stores >= 1
        mnemonics = [
            i.mnemonic
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert "int.mul" not in mnemonics

    def test_global_stores_never_removed(self):
        module, stats = _optimized("""module Main
global int<64> g
void f(int<64> a) {
    g = int.mul a a
}
""")
        mnemonics = [
            i.mnemonic
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert "int.mul" in mnemonics


class TestCSE:
    def test_repeated_expression_collapses(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> a, int<64> b) {
    local int<64> x
    local int<64> y
    local int<64> r
    x = int.add a b
    y = int.add a b
    r = int.add x y
    return r
}
""")
        assert stats.cse_hits >= 1
        program = hiltic([parse_module("""module Main
int<64> f(int<64> a, int<64> b) {
    local int<64> x
    local int<64> y
    local int<64> r
    x = int.add a b
    y = int.add a b
    r = int.add x y
    return r
}
""")])
        assert program.call(program.make_context(), "Main::f", [3, 4]) == 14

    def test_reassignment_invalidates(self):
        src = """module Main
int<64> f(int<64> a) {
    local int<64> x
    local int<64> y
    x = int.add a 1
    a = int.mul a 2
    y = int.add a 1
    return y
}
"""
        program = hiltic([src], optimize=True)
        # a=5: x=6, a=10, y=11 — CSE must NOT reuse x for y.
        assert program.call(program.make_context(), "Main::f", [5]) == 11


class TestLinkTimeDCE:
    def test_strip_unreachable_functions(self):
        module = parse_module("""module Main
void used() {
    return
}

void unused() {
    return
}

void run() {
    call used()
}
""")
        program = link([module])
        removed = strip_unreachable(program, ["Main::run"])
        assert removed == 1
        assert "Main::unused" not in program.functions
        assert "Main::used" in program.functions

    def test_hook_bodies_kept(self):
        module = parse_module("""module Main
hook void h() {
    call helper()
}

void helper() {
    return
}

void run() {
    return
}
""")
        program = link([module])
        removed = strip_unreachable(program, ["Main::run"])
        assert removed == 0
        assert "Main::helper" in program.functions


class TestJumpThreading:
    def test_forwarding_block_bypassed(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> x) {
    local bool b
    b = int.lt x 0
    if.else b hop direct
hop:
    jump target
direct:
    return 1
target:
    return 2
}
""")
        assert stats.jumps_threaded >= 1
        # The forwarding block is now unreachable and removed.
        labels = [b.label for b in module.functions["Main::f"].blocks]
        assert "hop" not in labels

    def test_threaded_program_still_correct(self):
        src = """module Main
int<64> f(int<64> x) {
    local bool b
    b = int.lt x 0
    if.else b hop direct
hop:
    jump target
direct:
    return 1
target:
    return 2
}
"""
        from repro.core import hiltic

        for optimize in (True, False):
            program = hiltic([src], optimize=optimize)
            ctx = program.make_context()
            assert program.call(ctx, "Main::f", [-1]) == 2
            assert program.call(ctx, "Main::f", [1]) == 1

    def test_jump_cycle_left_alone(self):
        # Two blocks jumping at each other must not hang the optimizer.
        src = """module Main
void f(bool b) {
    if.else b a done
a:
    jump c
c:
    jump a
done:
    return
}
"""
        from repro.core.optimize import optimize_module
        from repro.core.parser import parse_module

        optimize_module(parse_module(src))  # must terminate


class TestConstantPropagation:
    def test_propagates_across_blocks(self):
        # x is 7 on every path into the join block; the branch on the
        # known condition folds and the add computes at compile time.
        module, stats = _optimized("""module Main
int<64> f(bool c) {
    local int<64> x
    x = int.add 3 4
    if.else c a b
a:
    jump join
b:
    jump join
join:
    local int<64> y
    y = int.add x 1
    return y
}
""")
        assert stats.propagated + stats.folded >= 2
        instructions = [
            i
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        returns = [i for i in instructions if i.mnemonic == "return.result"]
        assert returns and returns[0].operands[0].value == 8

    def test_conflicting_paths_not_propagated(self):
        src = """module Main
int<64> f(bool c) {
    local int<64> x
    if.else c a b
a:
    x = int.add 0 1
    jump join
b:
    x = int.add 0 2
    jump join
join:
    return x
}
"""
        for level in (0, 1):
            program = hiltic([src], opt_level=level)
            ctx = program.make_context()
            assert program.call(ctx, "Main::f", [True]) == 1
            assert program.call(ctx, "Main::f", [False]) == 2


class TestBranchSimplification:
    def test_constant_branch_becomes_jump(self):
        module, stats = _optimized("""module Main
int<64> f() {
    local bool c
    c = bool.and True True
    if.else c yes no
yes:
    return 1
no:
    return 2
}
""")
        assert stats.branches_simplified >= 1
        assert stats.dead_blocks >= 1
        mnemonics = [
            i.mnemonic
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert "if.else" not in mnemonics


class TestBlockMerging:
    def test_single_pred_single_succ_merged(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> a) {
    local int<64> x
    x = int.mul a a
    jump next
next:
    local int<64> y
    y = int.add x a
    return y
}
""")
        assert stats.jumps_threaded + stats.blocks_merged >= 1
        function = module.functions["Main::f"]
        assert len(function.blocks) == 1


class TestLocalPruning:
    def test_unused_locals_dropped(self):
        module, stats = _optimized("""module Main
int<64> f(int<64> a) {
    local int<64> dead
    local int<64> keep
    dead = int.add a 1
    keep = int.mul a 2
    return keep
}
""")
        assert stats.dead_stores >= 1
        assert stats.locals_pruned >= 1
        names = [l.name for l in module.functions["Main::f"].locals]
        assert "dead" not in names
        assert "keep" in names

    def test_pruned_function_still_runs(self):
        src = """module Main
int<64> f(int<64> a) {
    local int<64> dead
    local int<64> keep
    dead = int.add a 1
    keep = int.mul a 2
    return keep
}
"""
        for level in (0, 1):
            program = hiltic([src], opt_level=level)
            assert program.call(program.make_context(), "Main::f", [6]) == 12


class TestOptStats:
    def test_as_dict_reports_every_counter(self):
        module, stats = _optimized("""module Main
int<64> f() {
    local int<64> x
    x = int.add 20 22
    return x
}
""")
        report = stats.as_dict()
        assert report["folded"] >= 1
        assert set(report) >= {
            "folded", "propagated", "branches_simplified", "dead_blocks",
            "dead_stores", "cse_hits", "jumps_threaded", "blocks_merged",
            "locals_pruned", "inlined", "specialized", "superblocks",
        }
        assert stats.total() == sum(report.values())


class TestOptLevels:
    def test_level_registry(self):
        assert OPT_LEVELS == (0, 1, 2)
        assert DEFAULT_OPT_LEVEL in OPT_LEVELS

    def test_level_zero_is_identity(self):
        source = """module Main
int<64> f() {
    local int<64> x
    x = int.add 20 22
    return x
}
"""
        module, stats = _optimized(source, level=0)
        assert stats.total() == 0
        instr = module.functions["Main::f"].blocks[0].instructions[0]
        assert instr.mnemonic == "int.add"


class TestInlining:
    LEAF = """module Main
int<64> h(int<64> p) {
    local int<64> r
    r = int.mul p 3
    return r
}

int<64> f(int<64> a) {
    local int<64> x
    x = call Main::h(a)
    x = int.add x 1
    return x
}
"""

    def test_small_leaf_inlined_at_o2(self):
        module, stats = _optimized(self.LEAF, level=2)
        assert stats.inlined >= 1
        mnemonics = [
            i.mnemonic
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert "call" not in mnemonics

    def test_not_inlined_at_o1(self):
        module, stats = _optimized(self.LEAF, level=1)
        assert stats.inlined == 0

    def test_inlined_behavior_preserved(self):
        _behavior(self.LEAF, "Main::f", [((5,), 16), ((-2,), -5)])

    def test_big_leaf_left_alone(self):
        body = "\n".join(f"    r = int.add r {n}" for n in range(20))
        source = f"""module Main
int<64> h(int<64> p) {{
    local int<64> r
    r = int.mul p 2
{body}
    return r
}}

int<64> f(int<64> a) {{
    local int<64> x
    x = call Main::h(a)
    return x
}}
"""
        module, stats = _optimized(source, level=2)
        assert stats.inlined == 0
        _behavior(source, "Main::f",
                  [((3,), 6 + sum(range(20)))])


class TestSpecialization:
    BRANCHY = """module Main
int<64> cfg(int<64> mode, int<64> v) {
    local bool c
    c = int.eq mode 1
    if.else c fast slow
fast:
    local int<64> r
    r = int.mul v 2
    return r
slow:
    local int<64> s
    s = int.mul v 10
    return s
}

int<64> f(int<64> a) {
    local int<64> x
    x = call Main::cfg(1, a)
    return x
}
"""

    def test_constant_args_specialize_at_o2(self):
        module, stats = _optimized(self.BRANCHY, level=2)
        assert stats.specialized >= 1
        clones = [name for name in module.functions if "%spec" in name]
        assert clones
        # The clone's seeded mode folds the branch: its slow leg dies.
        clone = module.functions[clones[0]]
        mnemonics = [
            i.mnemonic for b in clone.blocks for i in b.instructions
        ]
        assert "if.else" not in mnemonics

    def test_not_specialized_at_o1(self):
        module, stats = _optimized(self.BRANCHY, level=1)
        assert stats.specialized == 0
        assert not [n for n in module.functions if "%spec" in n]

    def test_specialized_behavior_preserved(self):
        _behavior(self.BRANCHY, "Main::f", [((7,), 14), ((0,), 0)])


class TestSuperblocks:
    DIAMOND = """module Main
int<64> f(bool c) {
    local int<64> x
    if.else c a b
a:
    x = int.add 0 1
    jump out
b:
    x = int.add 0 2
    jump out
out:
    return x
}
"""

    def test_shared_join_tail_duplicated(self):
        module, stats = _optimized(self.DIAMOND, level=2)
        assert stats.superblocks >= 1
        # With the join copied into both arms, propagation folds each
        # copy's return to its arm's constant.
        values = [
            i.operands[0].value
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
            if i.mnemonic == "return.result" and isinstance(
                i.operands[0], Const)
        ]
        assert set(values) >= {1, 2}

    def test_superblock_behavior_preserved(self):
        _behavior(self.DIAMOND, "Main::f", [((True,), 1), ((False,), 2)])


class TestEdgeRefinedPropagation:
    RETEST = """module Main
int<64> f(bool c) {
    if.else c a b
a:
    if.else c x y
x:
    return 1
y:
    return 2
b:
    return 3
}
"""

    def test_retested_condition_folds_at_o2(self):
        # Reaching block `a` pins c = True, so the second if.else on the
        # very same condition collapses and its false leg dies.
        module, stats = _optimized(self.RETEST, level=2)
        assert stats.branches_simplified >= 1
        labels = [b.label for b in module.functions["Main::f"].blocks]
        assert "y" not in labels

    def test_no_edge_refinement_at_o1(self):
        module, stats = _optimized(self.RETEST, level=1)
        assert stats.branches_simplified == 0

    def test_refined_behavior_preserved(self):
        _behavior(self.RETEST, "Main::f", [((True,), 1), ((False,), 3)])

    def test_unique_switch_case_pins_scrutinee(self):
        source = """module Main
int<64> f(int<64> v) {
    switch v d (3, s)
s:
    local int<64> y
    y = int.add v 1
    return y
d:
    return 0
}
"""
        module, stats = _optimized(source, level=2)
        returns = [
            i.operands[0]
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
            if i.mnemonic == "return.result"
        ]
        assert any(isinstance(op, Const) and op.value == 4
                   for op in returns)
        _behavior(source, "Main::f", [((3,), 4), ((8,), 0)])


class TestMergeBlocksFallthroughRepair:
    """Fuzzer regression: merging a fallthrough-off-the-end block.

    When the merged-in block was the lexically last one and relied on
    falling off the end of the function, the repair used to emit a
    ``return.void`` even in value-returning functions — an ill-typed
    terminator.  The repair is type-aware now: non-void functions get an
    explicit ``return.result`` of the implicit None.
    """

    @staticmethod
    def _merge_shape(result_type):
        function = Function("Main::f", [], result_type)
        entry = function.add_block("entry")
        entry.append(Instruction("jump", (LabelRef("tail"),)))
        tail = function.add_block("tail")
        tail.append(Instruction(
            "assign", (Const(ht.INT64, 1),), Var("x")))
        # No terminator: `tail` falls off the end of the function.
        merge_blocks(function, OptStats())
        return function

    def test_nonvoid_repair_returns_result(self):
        function = self._merge_shape(ht.INT64)
        assert len(function.blocks) == 1
        last = function.blocks[0].instructions[-1]
        assert last.mnemonic == "return.result"
        assert isinstance(last.operands[0], Const)
        assert last.operands[0].value is None

    def test_void_repair_returns_void(self):
        function = self._merge_shape(ht.VOID)
        assert len(function.blocks) == 1
        last = function.blocks[0].instructions[-1]
        assert last.mnemonic == "return.void"
