"""Replay the checked-in differential fuzz corpus, plus pinned bugs.

The corpus under ``tests/core/fuzz_corpus/`` holds minimized,
coverage-signature-preserving modules emitted by ``repro.tools.fuzz``.
Each file must execute identically on the reference interpreter and on
the compiled tier at every optimization level — this is the fast,
deterministic slice of the fuzzing oracle that runs on every test
invocation.

The regression classes pin the actual bugs the fuzzer found so they
stay fixed even if the corpus is regenerated.
"""

import glob
import os

import pytest

from repro.core import hiltic
from repro.core.optimize import OPT_LEVELS
from repro.runtime.exceptions import HiltiError
from repro.tools.fuzz import Fuzzer, run_corpus_text

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "fuzz_corpus")
CORPUS_FILES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.hlt")))


class TestCorpusReplay:
    def test_corpus_is_checked_in(self):
        assert len(CORPUS_FILES) >= 8

    @pytest.mark.parametrize(
        "path", CORPUS_FILES,
        ids=[os.path.basename(p) for p in CORPUS_FILES])
    def test_case_agrees_on_every_level(self, path):
        with open(path) as stream:
            text = stream.read()
        result = run_corpus_text(text, levels=OPT_LEVELS)
        assert result["divergences"] == []


class TestFixedSeedSmoke:
    def test_fresh_module_cases_do_not_diverge(self):
        fuzzer = Fuzzer(seed=1, lanes=("module",))
        summary = fuzzer.run(40)
        assert summary["cases"] == {"module": 40}
        assert summary["divergences"] == 0


def _outcome(program, entry, args):
    ctx = program.make_context()
    try:
        return ("ok", program.call(ctx, entry, args)), ctx.instr_count
    except HiltiError as error:
        return ("raise", error.except_type.type_name), ctx.instr_count


class TestTrapInstrCountParity:
    """Fuzzer finding: instr_count diverged on trapping paths.

    The compiled tier charged a segment's instructions only after every
    step completed, so a trap mid-segment under-counted relative to the
    interpreter (which counts each instruction as it executes,
    including the one that raises).
    """

    def _parity(self, source, args):
        interp = hiltic([source], tier="interpreted", optimize=False)
        expected, interp_count = _outcome(interp, "Main::f", args)
        compiled = hiltic([source], opt_level=0)
        got, compiled_count = _outcome(compiled, "Main::f", args)
        assert got == expected
        assert compiled_count == interp_count
        return expected, interp_count

    def test_trap_at_first_instruction(self):
        # The very first instruction raises: the interpreter has
        # counted it; the compiled tier used to report 0.
        outcome, count = self._parity("""module Main
int<64> f() {
    local int<64> x
    x = int.div 1 0
    return x
}
""", [])
        assert outcome == ("raise", "Hilti::DivisionByZero")
        assert count == 1

    def test_trap_mid_batch(self):
        # Straight-line runs compile into one batched step; a trap on
        # the batch's second instruction must charge both, not just the
        # completed steps.  33 & 22 == 0, so the div traps.
        outcome, count = self._parity("""module Main
int<64> f(int<64> v0, int<64> v1, int<64> v2, int<64> v3) {
    v1 = int.and 33 v0
    v1 = int.div v2 v1
    return v1
}
""", [22, -50, 16, -54])
        assert outcome == ("raise", "Hilti::DivisionByZero")
        assert count == 2

    def test_trap_after_successful_instructions(self):
        # Several instructions succeed before the trap; every executed
        # instruction (including the raiser) is charged on both tiers.
        outcome, count = self._parity("""module Main
int<64> f(int<64> a) {
    local int<64> x
    x = int.add a 1
    x = int.mul x 2
    x = int.div x 0
    return x
}
""", [5])
        assert outcome == ("raise", "Hilti::DivisionByZero")
        assert count == 3


class TestInlineInitConstRegression:
    """Fuzzer finding: -O2 inlining double-wrapped parsed local inits.

    The parser stores a local's initializer as a ``Const`` operand;
    the builder stores the raw value.  The inliner's splice seeded the
    callee's initialized locals by wrapping in ``Const`` again, so a
    parsed module's inlined helper computed with a ``Const`` operand
    value and crashed (or silently mis-evaluated) at runtime.
    """

    SOURCE = """module Main
int<64> h(int<64> p) {
    local int<64> acc = 3
    acc = int.xor p acc
    return acc
}

int<64> f(int<64> a) {
    local int<64> r
    r = call Main::h(a)
    r = int.add r 1
    return r
}
"""

    def test_parsed_const_init_inlines_correctly(self):
        interp = hiltic([self.SOURCE], tier="interpreted",
                        optimize=False)
        expected = interp.call(interp.make_context(), "Main::f", [9])
        assert expected == (9 ^ 3) + 1
        for level in OPT_LEVELS:
            program = hiltic([self.SOURCE], opt_level=level)
            got = program.call(program.make_context(), "Main::f", [9])
            assert got == expected, f"-O{level} diverged"
        # The helper is small and single-block: -O2 must actually have
        # inlined it, otherwise this test is not covering the splice.
        program = hiltic([self.SOURCE], opt_level=max(OPT_LEVELS))
        assert program.opt_stats.as_dict().get("inlined", 0) >= 1
