"""End-to-end execution of HILTI programs on the compiled tier."""

import io

import pytest

from repro.core import hiltic, run_source
from repro.core.values import Addr, Interval, Time
from repro.runtime.exceptions import HiltiError


def _run(source, fn, args=(), natives=None):
    program = hiltic([source], natives=natives)
    ctx = program.make_context()
    return program.call(ctx, fn, list(args))


class TestControlFlow:
    def test_branches(self):
        src = """module Main
int<64> sign(int<64> x) {
    local bool neg
    neg = int.lt x 0
    if.else neg negative check_zero
check_zero:
    local bool zero
    zero = int.eq x 0
    if.else zero is_zero positive
negative:
    return -1
is_zero:
    return 0
positive:
    return 1
}
"""
        assert _run(src, "Main::sign", [-5]) == -1
        assert _run(src, "Main::sign", [0]) == 0
        assert _run(src, "Main::sign", [7]) == 1

    def test_loop_via_jump(self):
        src = """module Main
int<64> sum_to(int<64> n) {
    local int<64> acc
    local int<64> i
    acc = 0
    i = 0
head:
    local bool more
    more = int.le i n
    if.else more body done
body:
    acc = int.add acc i
    i = int.incr i
    jump head
done:
    return acc
}
"""
        assert _run(src, "Main::sum_to", [10]) == 55

    def test_recursion(self):
        src = """module Main
int<64> fib(int<64> n) {
    local bool base
    base = int.lt n 2
    if.else base basecase recurse
basecase:
    return n
recurse:
    local int<64> a
    local int<64> b
    local int<64> n1
    local int<64> n2
    n1 = int.sub n 1
    n2 = int.sub n 2
    a = call fib(n1)
    b = call fib(n2)
    local int<64> r
    r = int.add a b
    return r
}
"""
        assert _run(src, "Main::fib", [15]) == 610

    def test_switch(self):
        from repro.core import types as ht
        from repro.core.builder import ModuleBuilder
        from repro.core.ir import Const, LabelRef, TupleOp

        mb = ModuleBuilder("Main")
        fb = mb.function("pick", [("x", ht.INT64)], ht.STRING)
        fb.emit(
            "switch", fb.var("x"), LabelRef("other"),
            TupleOp((Const(ht.INT64, 1), LabelRef("one"))),
            TupleOp((Const(ht.INT64, 2), LabelRef("two"))),
        )
        fb.block("one")
        fb.ret(fb.const(ht.STRING, "one"))
        fb.block("two")
        fb.ret(fb.const(ht.STRING, "two"))
        fb.block("other")
        fb.ret(fb.const(ht.STRING, "other"))
        program = hiltic([mb.finish()])
        ctx = program.make_context()
        assert program.call(ctx, "Main::pick", [1]) == "one"
        assert program.call(ctx, "Main::pick", [2]) == "two"
        assert program.call(ctx, "Main::pick", [99]) == "other"


class TestExceptions:
    def test_catch_matching_type(self):
        src = """module Main
bool lookup() {
    local ref<map<string, int<64>>> m
    m = new map<string, int<64>>
    try {
        local int<64> v
        v = map.get m "missing"
    } catch (ref<Hilti::IndexError> e) {
        return True
    }
    return False
}
"""
        assert _run(src, "Main::lookup") is True

    def test_uncaught_propagates_to_host(self):
        src = """module Main
void boom() {
    local int<64> x
    x = int.div 1 0
}
"""
        with pytest.raises(HiltiError) as exc:
            _run(src, "Main::boom")
        assert "DivisionByZero" in exc.value.except_type.type_name

    def test_catch_base_type_catches_derived(self):
        src = """module Main
bool f() {
    try {
        local int<64> x
        x = int.div 1 0
    } catch (ref<Hilti::Exception> e) {
        return True
    }
    return False
}
"""
        assert _run(src, "Main::f") is True

    def test_mismatched_catch_rethrows(self):
        src = """module Main
void f() {
    try {
        local int<64> x
        x = int.div 1 0
    } catch (ref<Hilti::IndexError> e) {
        return
    }
}
"""
        with pytest.raises(HiltiError):
            _run(src, "Main::f")

    def test_exception_propagates_through_calls(self):
        src = """module Main
void inner() {
    local int<64> x
    x = int.div 1 0
}

bool outer() {
    try {
        call inner()
    } catch (ref<Hilti::DivisionByZero> e) {
        return True
    }
    return False
}
"""
        assert _run(src, "Main::outer") is True


class TestGlobalsAndHooks:
    def test_globals_are_per_context(self):
        src = """module Main
global int<64> counter

void bump() {
    counter = int.incr counter
}

int<64> get() {
    return counter
}
"""
        program = hiltic([src])
        ctx1 = program.make_context()
        ctx2 = program.make_context()
        program.call(ctx1, "Main::bump")
        program.call(ctx1, "Main::bump")
        assert program.call(ctx1, "Main::get") == 2
        assert program.call(ctx2, "Main::get") == 0

    def test_hooks_run_all_bodies(self):
        src = """module Main
global int<64> total

hook void observe(int<64> x) {
    total = int.add total x
}

hook void observe(int<64> x) {
    total = int.add total 100
}

void fire() {
    hook.run Main::observe (5)
}
"""
        program = hiltic([src])
        ctx = program.make_context()
        program.call(ctx, "Main::fire")
        # Both bodies ran: +5 and +100.
        slot = program.linked.global_slot("Main::total")
        assert ctx.globals[slot] == 105

    def test_host_run_hook(self):
        src = """module Main
global int<64> seen

hook void on_data(int<64> x) {
    seen = x
}
"""
        program = hiltic([src])
        ctx = program.make_context()
        program.run_hook(ctx, "Main::on_data", [42])
        assert ctx.globals[program.linked.global_slot("Main::seen")] == 42


class TestTimersInPrograms:
    def test_timer_fires_callable(self):
        src = """module Main
global int<64> fired

void on_timer(int<64> x) {
    fired = x
}

void go() {
    local ref<callable<any>> c
    c = callable.bind on_timer (99)
    local ref<timer> t
    t = new timer c
    timer_mgr.schedule_global time(10) t
    timer_mgr.advance_global time(20)
}
"""
        program = hiltic([src])
        ctx = program.make_context()
        program.call(ctx, "Main::go")
        assert ctx.globals[program.linked.global_slot("Main::fired")] == 99


class TestNatives:
    def test_host_function_call(self):
        calls = []

        def record(ctx, *args):
            calls.append(args)
            return sum(args)

        src = """module Main
int<64> f() {
    local int<64> r
    r = call Host::record(1, 2, 3)
    return r
}
"""
        assert _run(src, "Main::f", natives={"Host::record": record}) == 6
        assert calls == [(1, 2, 3)]

    def test_print_output(self):
        out = io.StringIO()
        run_source(
            'module Main\nimport Hilti\nvoid run() {\n'
            '    call Hilti::print("x", 1, True)\n}\n',
            print_stream=out,
        )
        assert out.getvalue() == "x, 1, True\n"
