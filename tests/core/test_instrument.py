"""Compiler-inserted profiling instrumentation (paper §3.3)."""

from repro.core import hiltic
from repro.core.instrument import instrument_module
from repro.core.parser import parse_module

_SRC = """module Main
int<64> helper(int<64> x) {
    local bool neg
    neg = int.lt x 0
    if.else neg a b
a:
    return 0
b:
    local int<64> y
    y = int.mul x 2
    return y
}

void run_all() {
    local int<64> r
    r = call helper(5)
    r = call helper(-5)
    r = call helper(10)
}
"""


class TestInstrumentation:
    def test_stop_on_every_return(self):
        module = parse_module(_SRC)
        stops = instrument_module(module)
        # helper has 2 returns; run_all falls off (1 implicit stop).
        assert stops == 3

    def test_profilers_populated_at_runtime(self):
        program = hiltic([_SRC], profile=True)
        ctx = program.make_context()
        program.call(ctx, "Main::run_all")
        helper = ctx.profilers.get("func/Main::helper")
        run_all = ctx.profilers.get("func/Main::run_all")
        assert helper.updates == 3
        assert run_all.updates == 1
        assert helper.wall_ns > 0
        assert helper.instructions > 0

    def test_results_unchanged_by_instrumentation(self):
        plain = hiltic([_SRC])
        instrumented = hiltic([_SRC], profile=True)
        a = plain.call(plain.make_context(), "Main::helper", [21])
        b = instrumented.call(
            instrumented.make_context(), "Main::helper", [21])
        assert a == b == 42

    def test_interpreter_tier_supports_profiling_too(self):
        program = hiltic([_SRC], profile=True, tier="interpreted")
        ctx = program.make_context()
        program.call(ctx, "Main::run_all")
        assert ctx.profilers.get("func/Main::helper").updates == 3

    def test_report_dump(self):
        import io

        program = hiltic([_SRC], profile=True)
        ctx = program.make_context()
        program.call(ctx, "Main::run_all")
        out = io.StringIO()
        ctx.profilers.dump(out)
        assert "#profile func/Main::helper" in out.getvalue()
