"""Compiler-inserted profiling instrumentation (paper §3.3)."""

from repro.core import hiltic
from repro.core.instrument import instrument_module
from repro.core.parser import parse_module

_SRC = """module Main
int<64> helper(int<64> x) {
    local bool neg
    neg = int.lt x 0
    if.else neg a b
a:
    return 0
b:
    local int<64> y
    y = int.mul x 2
    return y
}

void run_all() {
    local int<64> r
    r = call helper(5)
    r = call helper(-5)
    r = call helper(10)
}
"""


class TestInstrumentation:
    def test_stop_on_every_return(self):
        module = parse_module(_SRC)
        stops = instrument_module(module)
        # helper has 2 returns; run_all falls off (1 implicit stop).
        assert stops == 3

    def test_profilers_populated_at_runtime(self):
        program = hiltic([_SRC], profile=True)
        ctx = program.make_context()
        program.call(ctx, "Main::run_all")
        helper = ctx.profilers.get("func/Main::helper")
        run_all = ctx.profilers.get("func/Main::run_all")
        assert helper.updates == 3
        assert run_all.updates == 1
        assert helper.wall_ns > 0
        assert helper.instructions > 0

    def test_results_unchanged_by_instrumentation(self):
        plain = hiltic([_SRC])
        instrumented = hiltic([_SRC], profile=True)
        a = plain.call(plain.make_context(), "Main::helper", [21])
        b = instrumented.call(
            instrumented.make_context(), "Main::helper", [21])
        assert a == b == 42

    def test_interpreter_tier_supports_profiling_too(self):
        program = hiltic([_SRC], profile=True, tier="interpreted")
        ctx = program.make_context()
        program.call(ctx, "Main::run_all")
        assert ctx.profilers.get("func/Main::helper").updates == 3

    def test_report_dump(self):
        import io

        program = hiltic([_SRC], profile=True)
        ctx = program.make_context()
        program.call(ctx, "Main::run_all")
        out = io.StringIO()
        ctx.profilers.dump(out)
        assert "#profile func/Main::helper" in out.getvalue()


_MULTI_RETURN = """module Main
int<64> classify(int<64> x) {
    local bool t
    t = int.lt x 0
    if.else t neg nonneg
neg:
    return -1
nonneg:
    t = int.eq x 0
    if.else t zero pos
zero:
    return 0
pos:
    return 1
}

void run_all() {
    local int<64> r
    r = call classify(-7)
    r = call classify(0)
    r = call classify(7)
}
"""


class TestMultiReturnFunctions:
    def test_every_return_gets_a_stop(self):
        from repro.core.parser import parse_module

        module = parse_module(_MULTI_RETURN)
        # classify has 3 returns; run_all falls off (1 implicit stop).
        assert instrument_module(module) == 4

    def test_one_update_per_call_regardless_of_exit(self):
        for tier in ("compiled", "interpreted"):
            program = hiltic([_MULTI_RETURN], profile=True, tier=tier)
            ctx = program.make_context()
            program.call(ctx, "Main::run_all")
            profiler = ctx.profilers.get("func/Main::classify")
            assert profiler.updates == 3
            assert not profiler.unbalanced


def _hook_module():
    from repro.core import types as ht
    from repro.core.builder import ModuleBuilder

    mb = ModuleBuilder("Main")
    for suffix, priority in (("early", 10), ("late", -10)):
        fb = mb.hook("observe", [("x", ht.INT64)], body_suffix=suffix,
                     priority=priority)
        doubled = fb.temp(ht.INT64, "d")
        fb.emit("int.mul", fb.var("x"), fb.const(ht.INT64, 2),
                target=doubled)
        fb.ret()
    fb = mb.function("fire", [], ht.VOID)
    fb.emit("hook.run", fb.field("Main::observe"),
            fb.args(fb.const(ht.INT64, 1)))
    fb.ret()
    return mb.finish()


class TestHookBodies:
    def test_hook_bodies_are_instrumented(self):
        module = _hook_module()
        stops = instrument_module(module)
        # Two hook bodies + fire, one stop each.
        assert stops == 3

    def test_hook_body_profilers_populated(self):
        for tier in ("compiled", "interpreted"):
            program = hiltic([_hook_module()], profile=True, tier=tier)
            ctx = program.make_context()
            program.call(ctx, "Main::fire")
            for suffix in ("early", "late"):
                profiler = ctx.profilers.get(f"func/Main::observe%{suffix}")
                assert profiler.updates == 1, (tier, suffix)
                assert profiler.wall_ns > 0


_THROWS = """module Main
int<64> boom(int<64> x) {
    local int<64> y
    y = int.div 10 x
    return y
}
"""


class TestExceptionalExit:
    def test_open_profiler_drained_and_flagged(self):
        """An exceptional exit bypasses the inserted profiler.stop; the
        report must drain the open region and flag it unbalanced rather
        than dropping the measurement."""
        from repro.runtime.exceptions import HiltiError

        for tier in ("compiled", "interpreted"):
            program = hiltic([_THROWS], profile=True, tier=tier)
            ctx = program.make_context()
            try:
                program.call(ctx, "Main::boom", [0])
            except HiltiError:
                pass
            report = ctx.profilers.get("func/Main::boom").report()
            assert report["unbalanced"] is True, tier
            assert report["updates"] == 1
            assert report["wall_ns"] > 0

    def test_clean_exit_stays_balanced(self):
        program = hiltic([_THROWS], profile=True)
        ctx = program.make_context()
        assert program.call(ctx, "Main::boom", [2]) == 5
        report = ctx.profilers.get("func/Main::boom").report()
        assert report["unbalanced"] is False
