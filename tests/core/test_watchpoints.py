"""Watchpoints — the paper's footnote-4 extension.

"We plan to add watchpoints to HILTI to support [Bro's `when`
statement, triggering script code asynchronously once a specified global
condition becomes true]."  Implemented here: ``watchpoint.add``
registers (predicate, action) callables; ``watchpoint.check`` (or the
host-side ``check_watchpoints``) evaluates them, firing each action
exactly once when its predicate turns true.
"""

import pytest

from repro.core import hiltic

_SRC = """module Main
import Hilti

global int<64> counter
global int<64> fired_at

bool threshold_reached() {
    local bool b
    b = int.ge counter 3
    return b
}

void on_threshold() {
    fired_at = counter
}

void arm() {
    local ref<callable<any>> p
    local ref<callable<any>> a
    p = callable.bind threshold_reached ()
    a = callable.bind on_threshold ()
    watchpoint.add p a
}

void bump_and_check() {
    counter = int.incr counter
    watchpoint.check
}

int<64> get_fired_at() {
    return fired_at
}
"""


@pytest.fixture(params=["compiled", "interpreted"])
def program(request):
    return hiltic([_SRC], tier=request.param)


class TestWatchpoints:
    def test_fires_once_when_condition_becomes_true(self, program):
        ctx = program.make_context()
        program.call(ctx, "Main::arm")
        for __ in range(6):
            program.call(ctx, "Main::bump_and_check")
        # Fired exactly when counter hit 3, not re-fired later.
        assert program.call(ctx, "Main::get_fired_at") == 3

    def test_not_fired_before_condition(self, program):
        ctx = program.make_context()
        program.call(ctx, "Main::arm")
        program.call(ctx, "Main::bump_and_check")
        assert program.call(ctx, "Main::get_fired_at") == 0
        assert len(ctx.watchpoints) == 1  # still armed

    def test_fired_watchpoints_removed(self, program):
        ctx = program.make_context()
        program.call(ctx, "Main::arm")
        for __ in range(4):
            program.call(ctx, "Main::bump_and_check")
        assert ctx.watchpoints == []

    def test_host_side_check(self, program):
        ctx = program.make_context()
        program.call(ctx, "Main::arm")
        for __ in range(5):
            program.call(ctx, "Main::bump_and_check")
        # Arm again and drive the check from the host instead.
        program.call(ctx, "Main::arm")
        assert program.check_watchpoints(ctx) == 1
        assert program.call(ctx, "Main::get_fired_at") == 5

    def test_multiple_watchpoints_independent(self, program):
        ctx = program.make_context()
        program.call(ctx, "Main::arm")
        program.call(ctx, "Main::arm")
        for __ in range(3):
            program.call(ctx, "Main::bump_and_check")
        assert ctx.watchpoints == []  # both fired and were removed
