"""Hook priorities and groups across both execution tiers."""

import pytest

from repro.core import hiltic
from repro.core import types as ht
from repro.core.builder import ModuleBuilder


def _module():
    mb = ModuleBuilder("Main")
    mb.global_var("trace", ht.STRING)

    def body(suffix, priority=0, group=None, text="?"):
        fb = mb.hook("observe", [("x", ht.INT64)], body_suffix=suffix,
                     priority=priority, group=group)
        combined = fb.temp(ht.STRING, "s")
        fb.emit("string.concat", fb.var("trace"),
                fb.const(ht.STRING, text), target=combined)
        fb.emit("assign", combined, target=fb.var("trace"))
        fb.ret()

    body("low", priority=-5, text="L")
    body("high", priority=10, text="H")
    body("mid", priority=0, group="optional", text="M")

    fb = mb.function("fire", [], ht.VOID)
    fb.emit("hook.run", fb.field("Main::observe"),
            fb.args(fb.const(ht.INT64, 1)))
    fb.ret()

    fb = mb.function("disable_optional", [], ht.VOID)
    fb.emit("hook.group_disable", fb.field("optional"))
    fb.ret()

    fb = mb.function("enable_optional", [], ht.VOID)
    fb.emit("hook.group_enable", fb.field("optional"))
    fb.ret()

    fb = mb.function("get_trace", [], ht.STRING)
    fb.ret(fb.var("trace"))
    return mb.finish()


@pytest.fixture(params=["compiled", "interpreted"])
def program(request):
    return hiltic([_module()], tier=request.param)


class TestHookOrderingAndGroups:
    def test_priority_order(self, program):
        ctx = program.make_context()
        program.call(ctx, "Main::fire")
        assert program.call(ctx, "Main::get_trace") == "HML"

    def test_group_disable_skips_bodies(self, program):
        ctx = program.make_context()
        program.call(ctx, "Main::disable_optional")
        program.call(ctx, "Main::fire")
        assert program.call(ctx, "Main::get_trace") == "HL"

    def test_group_reenable(self, program):
        ctx = program.make_context()
        program.call(ctx, "Main::disable_optional")
        program.call(ctx, "Main::fire")
        program.call(ctx, "Main::enable_optional")
        program.call(ctx, "Main::fire")
        assert program.call(ctx, "Main::get_trace") == "HL" + "HML"

    def test_host_run_hook_respects_groups(self, program):
        ctx = program.make_context()
        program.call(ctx, "Main::disable_optional")
        program.run_hook(ctx, "Main::observe", [1])
        assert program.call(ctx, "Main::get_trace") == "HL"
