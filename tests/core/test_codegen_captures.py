"""Closure-capture regressions in the compiled tier's batch compiler.

The code generator compiles a straight-line run of instructions into one
batched closure.  Every per-instruction lambda must pin its operands via
default arguments at creation time — a late-binding capture would make
every instruction in the batch read the *last* instruction's operands.
These tests put several same-mnemonic instructions into a single batch
and check each one reads its own operands, at both opt levels.
"""

import pytest

from repro.core import hiltic

_SAME_MNEMONIC_SRC = """module Main

int<64> chain(int<64> a, int<64> b) {
    local int<64> x
    local int<64> y
    local int<64> z
    x = int.add a 10
    y = int.add b 20
    z = int.add x y
    return z
}
"""

_CALLS_SRC = """module Main

int<64> inc(int<64> v) {
    local int<64> r
    r = int.add v 1
    return r
}

int<64> dbl(int<64> v) {
    local int<64> r
    r = int.mul v 2
    return r
}

int<64> both(int<64> v) {
    local int<64> a
    local int<64> b
    local int<64> out
    a = call Main::inc(v)
    b = call Main::dbl(v)
    out = int.add a b
    return out
}
"""

_FIELDS_SRC = """module Main

type Pair = struct {
    int<64> first,
    int<64> second,
}

int<64> swaps(int<64> a, int<64> b) {
    local ref<Pair> p
    local int<64> x
    local int<64> y
    local int<64> out
    p = new Pair
    struct.set p first a
    struct.set p second b
    x = struct.get p second
    y = struct.get p first
    out = int.sub x y
    return out
}
"""


@pytest.mark.parametrize("opt_level", [0, 1])
class TestBatchCaptures:
    def _run(self, source, name, args, opt_level):
        program = hiltic([source], tier="compiled", opt_level=opt_level)
        return program.call(program.make_context(), name, args)

    def test_same_mnemonic_reads_own_operands(self, opt_level):
        # Three int.adds in one batch: a late-bound capture would
        # compute the last instruction's operands three times.
        result = self._run(_SAME_MNEMONIC_SRC, "Main::chain", [1, 2],
                           opt_level)
        assert result == (1 + 10) + (2 + 20)

    def test_inlined_calls_keep_own_callees(self, opt_level):
        # Two call sites in one batch: each inline cache must pin its
        # own callee and argument list.
        result = self._run(_CALLS_SRC, "Main::both", [5], opt_level)
        assert result == (5 + 1) + (5 * 2)

    def test_field_refs_keep_own_fields(self, opt_level):
        # Two struct.gets of different fields: the field name is part
        # of the pinned operands.
        result = self._run(_FIELDS_SRC, "Main::swaps", [3, 11], opt_level)
        assert result == 11 - 3
