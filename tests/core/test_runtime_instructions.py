"""Runtime data types driven from HILTI source programs.

End-to-end coverage for instruction groups not exercised by the four
exemplars: channels, files, iosrc, profilers, regexps, lists, and
vectors — each through a small textual HILTI program on both tiers.
"""

import io
import os

import pytest

from repro.core import hiltic
from repro.core.values import Time
from repro.net.tracegen import DnsTraceConfig, write_dns_trace


def _both(source, **kwargs):
    return (
        hiltic([source], tier="compiled", **kwargs),
        hiltic([source], tier="interpreted", **kwargs),
    )


class TestChannels:
    _SRC = """module Main
global ref<channel<any>> pipe

void init() {
    pipe = new channel<any> 8
}

void produce(int<64> n) {
    local int<64> i
    i = 0
head:
    local bool more
    more = int.lt i n
    if.else more body done
body:
    channel.write pipe i
    i = int.incr i
    jump head
done:
    return
}

int<64> consume_sum() {
    local int<64> total
    total = 0
head:
    local int<64> size
    size = channel.size pipe
    local bool empty
    empty = int.eq size 0
    if.else empty done body
body:
    local int<64> v
    v = channel.read pipe
    total = int.add total v
    jump head
done:
    return total
}
"""

    @pytest.mark.parametrize("tier", ["compiled", "interpreted"])
    def test_producer_consumer(self, tier):
        program = hiltic([self._SRC], tier=tier)
        ctx = program.make_context()
        program.call(ctx, "Main::init")
        program.call(ctx, "Main::produce", [8])
        assert program.call(ctx, "Main::consume_sum") == sum(range(8))

    def test_channel_full_raises(self):
        program = hiltic([self._SRC])
        ctx = program.make_context()
        program.call(ctx, "Main::init")
        from repro.runtime.exceptions import HiltiError

        with pytest.raises(HiltiError) as exc:
            program.call(ctx, "Main::produce", [9])  # capacity is 8
        assert "ChannelFull" in exc.value.except_type.type_name


class TestFiles:
    _SRC = """module Main
void write_report(string path) {
    local ref<file> f
    f = new file
    file.open f path
    file.write f "line one\\n"
    file.write f "line two\\n"
    file.close f
}
"""

    @pytest.mark.parametrize("tier", ["compiled", "interpreted"])
    def test_file_output(self, tier, tmp_path):
        program = hiltic([self._SRC], tier=tier)
        ctx = program.make_context()
        path = str(tmp_path / f"out-{tier}.txt")
        program.call(ctx, "Main::write_report", [path])
        ctx.file_manager.flush()
        ctx.file_manager.close_all()
        assert open(path).read() == "line one\nline two\n"


class TestIOSrc:
    _SRC = """module Main
int<64> count_packets(string path) {
    local ref<iosrc> src
    src = iosrc.new path
    local int<64> n
    n = 0
head:
    local any pkt
    pkt = iosrc.read src
    local bool done
    done = equal pkt Null
    if.else done out next
next:
    n = int.incr n
    jump head
out:
    return n
}
"""

    def test_reads_pcap(self, tmp_path):
        pcap = str(tmp_path / "t.pcap")
        count = write_dns_trace(pcap, DnsTraceConfig(queries=20))
        program = hiltic([self._SRC])
        ctx = program.make_context()
        assert program.call(ctx, "Main::count_packets", [pcap]) == count


class TestProfilerInstructions:
    _SRC = """module Main
void work() {
    profiler.start "inner"
    local int<64> i
    i = 0
head:
    local bool more
    more = int.lt i 100
    if.else more body done
body:
    i = int.incr i
    jump head
done:
    profiler.stop "inner"
}
"""

    def test_profiler_block(self):
        program = hiltic([self._SRC])
        ctx = program.make_context()
        program.call(ctx, "Main::work")
        profiler = ctx.profilers.get("inner")
        assert profiler.updates == 1
        assert profiler.instructions > 100


class TestRegexpFromSource:
    _SRC = """module Main
global ref<regexp> pattern

void init() {
    pattern = regexp.compile "[0-9]+"
}

int<64> check(ref<bytes> data) {
    local int<64> status
    status = regexp.match pattern data
    return status
}
"""

    @pytest.mark.parametrize("tier", ["compiled", "interpreted"])
    def test_match(self, tier):
        from repro.runtime.bytes_buffer import Bytes

        program = hiltic([self._SRC], tier=tier)
        ctx = program.make_context()
        program.call(ctx, "Main::init")

        def frozen(raw):
            b = Bytes(raw)
            b.freeze()
            return b

        assert program.call(ctx, "Main::check", [frozen(b"123x")]) == 1
        assert program.call(ctx, "Main::check", [frozen(b"abc")]) == 0


class TestListVectorFromSource:
    _SRC = """module Main
int<64> sum_list() {
    local ref<list<int<64>>> l
    l = new list<int<64>>
    list.push_back l 1
    list.push_back l 2
    list.push_front l 10
    local int<64> total
    total = 0
    for ( x in l ) {
        total = int.add total x
    }
    return total
}

int<64> vector_ops() {
    local ref<vector<int<64>>> v
    v = new vector<int<64>>
    vector.push_back v 5
    vector.set v 3 7
    local int<64> size
    size = vector.size v
    local int<64> third
    third = vector.get v 3
    local int<64> out
    out = int.add size third
    return out
}
"""

    @pytest.mark.parametrize("tier", ["compiled", "interpreted"])
    def test_containers(self, tier):
        program = hiltic([self._SRC], tier=tier)
        ctx = program.make_context()
        assert program.call(ctx, "Main::sum_list") == 13
        assert program.call(ctx, "Main::vector_ops") == 4 + 7
