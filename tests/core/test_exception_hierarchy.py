"""Exception hierarchy semantics, identical across both execution tiers.

The paper's section 7 safety argument rests on typed exceptions with a
hierarchy: a handler for a parent type catches every descendant, and the
rules cannot differ between the interpreter and the compiled backend —
otherwise "safe in testing" would not imply "safe in production".  Every
test here runs the same program on both tiers and demands the same
answer; the per-packet watchdog (``Hilti::ProcessingTimeout``) is part
of the same contract: catchable, typed, and one-shot.
"""

import pytest

from repro.core import hiltic
from repro.runtime.exceptions import (
    EXCEPTION_BASE,
    HiltiError,
    PROCESSING_TIMEOUT,
)

TIERS = ["compiled", "interpreted"]


def _run(source, fn, args=(), tier="compiled"):
    program = hiltic([source], tier=tier)
    ctx = program.make_context()
    return program.call(ctx, fn, list(args))


def _throw_and_catch(thrown: str, caught: str) -> str:
    """A program throwing *thrown* inside a handler for *caught*."""
    return f"""module Main
bool f() {{
    try {{
        local ref<Hilti::Exception> e
        e = exception.new {thrown} "boom"
        exception.throw e
    }} catch (ref<{caught}> h) {{
        return True
    }}
    return False
}}
"""


@pytest.mark.parametrize("tier", TIERS)
class TestHierarchyMatching:
    def test_exact_type_matches(self, tier):
        src = _throw_and_catch("Hilti::PatternError", "Hilti::PatternError")
        assert _run(src, "Main::f", tier=tier) is True

    def test_parent_catches_child(self, tier):
        src = _throw_and_catch("Hilti::PatternError", "Hilti::Exception")
        assert _run(src, "Main::f", tier=tier) is True

    def test_sibling_does_not_catch(self, tier):
        src = _throw_and_catch("Hilti::PatternError", "Hilti::IndexError")
        with pytest.raises(HiltiError) as err:
            _run(src, "Main::f", tier=tier)
        assert err.value.except_type.type_name == "Hilti::PatternError"

    def test_builtin_throw_matches_parent(self, tier):
        src = """module Main
bool f() {
    try {
        local int<64> x
        x = int.div 1 0
    } catch (ref<Hilti::Exception> e) {
        return True
    }
    return False
}
"""
        assert _run(src, "Main::f", tier=tier) is True

    def test_nearest_matching_handler_wins(self, tier):
        src = """module Main
int<64> f() {
    try {
        try {
            try {
                local ref<Hilti::Exception> e
                e = exception.new Hilti::IndexError "oob"
                exception.throw e
            } catch (ref<Hilti::PatternError> p) {
                return 1
            }
        } catch (ref<Hilti::IndexError> i) {
            return 2
        }
    } catch (ref<Hilti::Exception> any) {
        return 3
    }
    return 0
}
"""
        assert _run(src, "Main::f", tier=tier) == 2

    def test_uncaught_escapes_through_calls(self, tier):
        src = """module Main
void inner() {
    local ref<Hilti::Exception> e
    e = exception.new Hilti::ValueError "deep"
    exception.throw e
}

bool outer() {
    try {
        call inner()
    } catch (ref<Hilti::ValueError> v) {
        return True
    }
    return False
}
"""
        assert _run(src, "Main::outer", tier=tier) is True

    def test_new_robustness_types_in_hierarchy(self, tier):
        for name in ("Hilti::ProcessingTimeout", "Hilti::InjectedFault"):
            src = _throw_and_catch(name, "Hilti::Exception")
            assert _run(src, "Main::f", tier=tier) is True


_SPIN = """module Main
int<64> spin(int<64> n) {
    local int<64> i
    i = 0
head:
    local bool more
    more = int.lt i n
    if.else more body done
body:
    i = int.incr i
    jump head
done:
    return i
}
"""


@pytest.mark.parametrize("tier", TIERS)
class TestWatchdog:
    def test_budget_trips_as_processing_timeout(self, tier):
        program = hiltic([_SPIN], tier=tier)
        ctx = program.make_context()
        ctx.arm_watchdog(100)
        with pytest.raises(HiltiError) as err:
            program.call(ctx, "Main::spin", [100_000])
        assert err.value.matches(PROCESSING_TIMEOUT)
        assert err.value.matches(EXCEPTION_BASE)

    def test_sufficient_budget_does_not_trip(self, tier):
        program = hiltic([_SPIN], tier=tier)
        ctx = program.make_context()
        ctx.arm_watchdog(10_000_000)
        assert program.call(ctx, "Main::spin", [50]) == 50

    def test_timeout_is_catchable_in_hilti(self, tier):
        src = _SPIN + """
bool guarded() {
    try {
        local int<64> out
        out = call Main::spin (100000)
    } catch (ref<Hilti::ProcessingTimeout> t) {
        return True
    }
    return False
}
"""
        program = hiltic([src], tier=tier)
        ctx = program.make_context()
        ctx.arm_watchdog(100)
        assert program.call(ctx, "Main::guarded") is True

    def test_one_shot_disarms_after_firing(self, tier):
        """After the watchdog fires once, recovery code runs unbounded."""
        program = hiltic([_SPIN], tier=tier)
        ctx = program.make_context()
        ctx.arm_watchdog(100)
        with pytest.raises(HiltiError):
            program.call(ctx, "Main::spin", [100_000])
        assert ctx.instr_budget is None
        assert program.call(ctx, "Main::spin", [500]) == 500

    def test_disarm_clears_budget(self, tier):
        program = hiltic([_SPIN], tier=tier)
        ctx = program.make_context()
        ctx.arm_watchdog(10)
        ctx.disarm_watchdog()
        assert program.call(ctx, "Main::spin", [500]) == 500
