"""The static verifier and the linker."""

import pytest

from repro.core import hiltic
from repro.core import types as ht
from repro.core.builder import ModuleBuilder
from repro.core.linker import LinkError, link
from repro.core.parser import parse_module
from repro.core.typecheck import TypeCheckError, check_module


def _check(source):
    check_module(parse_module(source))


class TestVerifier:
    def test_accepts_valid(self):
        _check("""module Main
int<64> f(int<64> x) {
    local int<64> y
    y = int.add x 1
    return y
}
""")

    def test_undefined_variable(self):
        with pytest.raises(TypeCheckError, match="undefined variable"):
            _check("""module Main
void f() {
    local int<64> y
    y = int.add nope 1
}
""")

    def test_undefined_target(self):
        with pytest.raises(TypeCheckError, match="undefined target"):
            _check("""module Main
void f(int<64> x) {
    y = int.add x 1
}
""")

    def test_missing_required_target(self):
        mb = ModuleBuilder("Main")
        fb = mb.function("f", [("x", ht.INT64)], ht.VOID)
        fb.emit("int.add", fb.var("x"), fb.const(ht.INT64, 1))
        fb.ret()
        with pytest.raises(TypeCheckError, match="requires a target"):
            check_module(mb.finish())

    def test_target_on_void_instruction(self):
        mb = ModuleBuilder("Main")
        fb = mb.function("f", [], ht.VOID)
        out = fb.temp(ht.ANY)
        fb.emit("return.void", target=out)
        with pytest.raises(TypeCheckError, match="does not produce"):
            check_module(mb.finish())

    def test_operand_arity(self):
        mb = ModuleBuilder("Main")
        fb = mb.function("f", [("x", ht.INT64)], ht.VOID)
        out = fb.temp(ht.INT64)
        fb.emit("int.add", fb.var("x"), target=out)  # needs 2 operands
        fb.ret()
        with pytest.raises(TypeCheckError, match="expects 2 operands"):
            check_module(mb.finish())

    def test_operand_kind_mismatch(self):
        mb = ModuleBuilder("Main")
        fb = mb.function("f", [("s", ht.STRING)], ht.VOID)
        out = fb.temp(ht.INT64)
        fb.emit("int.add", fb.var("s"), fb.const(ht.INT64, 1), target=out)
        fb.ret()
        with pytest.raises(TypeCheckError, match="kind 'int'"):
            check_module(mb.finish())

    def test_branch_to_unknown_block(self):
        mb = ModuleBuilder("Main")
        fb = mb.function("f", [], ht.VOID)
        fb.jump("nowhere")
        with pytest.raises(TypeCheckError, match="unknown block"):
            check_module(mb.finish())

    def test_value_function_must_return(self):
        with pytest.raises(TypeCheckError, match="fall off"):
            _check("""module Main
int<64> f() {
    local int<64> x
    x = 1
}
""")

    def test_terminator_mid_block_rejected(self):
        mb = ModuleBuilder("Main")
        fb = mb.function("f", [], ht.VOID)
        fb.ret()
        fb.emit("return.void")
        with pytest.raises(TypeCheckError, match="mid-block"):
            check_module(mb.finish())


class TestLinker:
    def test_cross_module_calls(self):
        lib = parse_module("""module Lib
int<64> double(int<64> x) {
    local int<64> r
    r = int.mul x 2
    return r
}
""")
        main = parse_module("""module Main
int<64> run() {
    local int<64> r
    r = call Lib::double(21)
    return r
}
""")
        program = hiltic([lib, main])
        assert program.run(args=[]) == 42

    def test_thread_local_layout_spans_modules(self):
        a = parse_module("module A\nglobal int<64> x = 1\n")
        b = parse_module("module B\nglobal int<64> y = 2\n")
        linked = link([a, b])
        assert linked.global_slot("A::x") == 0
        assert linked.global_slot("B::y") == 1

    def test_duplicate_global_rejected(self):
        a = parse_module("module A\nglobal int<64> x\n")
        with pytest.raises(LinkError):
            link([a, parse_module("module A\nglobal int<64> x\n")])

    def test_hooks_merge_across_modules(self):
        a = parse_module("""module A
global int<64> count
hook void tick() {
    count = int.incr count
}
""")
        b = parse_module("""module B
hook void A::tick() {
    return
}
""")
        linked = link([a, b])
        assert len(linked.hooks["A::tick"]) == 2

    def test_unresolved_function(self):
        main = parse_module("""module Main
void run() {
    call NoSuch::fn()
}
""")
        with pytest.raises(LinkError, match="unresolved function"):
            hiltic([main])

    def test_native_resolution(self):
        main = parse_module("""module Main
int<64> run() {
    local int<64> r
    r = call Host::fn()
    return r
}
""")
        program = hiltic([main], natives={"Host::fn": lambda ctx: 7})
        assert program.run() == 7


class TestStubs:
    def test_stub_call_and_errors(self):
        from repro.core.stubs import make_stub

        src = """module Main
int<64> f(int<64> x) {
    local int<64> r
    r = int.div 100 x
    return r
}
"""
        program = hiltic([src])
        ctx = program.make_context()
        stub = make_stub(program, "Main::f")
        assert stub(ctx, 4) == 25
        result = stub.call_checked(ctx, 0)
        assert result.raised
        assert "DivisionByZero" in result.error.except_type.type_name

    def test_stub_fiber_resume(self):
        src = """module Main
int<64> f() {
    yield
    return 5
}
"""
        program = hiltic([src])
        ctx = program.make_context()
        from repro.core.stubs import Stub

        stub = Stub(program, "Main::f")
        result = stub.start(ctx)
        assert result.suspended
        result = Stub.resume(result)
        assert not result.suspended
        assert result.value == 5
