"""The HILTI textual-syntax parser."""

import pytest

from repro.core import types as ht
from repro.core.ir import Const, FieldRef, LabelRef, TupleOp, TypeRef, Var
from repro.core.parser import ParseError, parse_module, parse_type


class TestModuleStructure:
    def test_hello_world(self):
        module = parse_module(
            'module Main\nimport Hilti\nvoid run() {\n'
            '    call Hilti::print("Hello, World!")\n}\n'
        )
        assert module.name == "Main"
        assert module.imports == ["Hilti"]
        assert "Main::run" in module.functions

    def test_comments_ignored(self):
        module = parse_module(
            "module Main\n# a comment\nvoid run() {\n"
            "    return  # trailing comment\n}\n"
        )
        assert "Main::run" in module.functions

    def test_globals(self):
        module = parse_module(
            "module Main\nglobal int<64> counter = 5\n"
            "global ref<set<addr>> hosts\n"
        )
        assert module.globals["counter"].init.value == 5
        assert isinstance(module.globals["hosts"].type, ht.RefT)

    def test_global_constructor_init(self):
        module = parse_module(
            "module Main\nglobal ref<set<addr>> hosts = set<addr>()\n"
        )
        assert isinstance(module.globals["hosts"].init, TypeRef)

    def test_struct_type(self):
        module = parse_module(
            "module Main\ntype Rule = struct { net src, net dst }\n"
        )
        rule = module.types["Rule"]
        assert isinstance(rule, ht.StructT)
        assert rule.field("src").type == ht.NET

    def test_overlay_type(self):
        module = parse_module(
            "module Main\n"
            "type Header = overlay {\n"
            "    version: int<8> at 0 unpack UInt8InBigEndian (4, 7),\n"
            "    src: addr at 12 unpack IPv4InNetworkOrder\n"
            "}\n"
        )
        header = module.types["Header"]
        assert isinstance(header, ht.OverlayT)
        assert header.field("version").fmt.bits == (4, 7)
        assert header.field("src").offset == 12

    def test_enum_type(self):
        module = parse_module(
            "module Main\ntype Color = enum { Red, Green, Blue }\n"
        )
        assert module.types["Color"].label_value("Green") == 1

    def test_hook_declaration(self):
        module = parse_module(
            "module Main\n"
            "hook void on_thing(int<64> x) {\n    return\n}\n"
        )
        assert len(module.hooks) == 1
        assert module.hooks[0].hook_name == "Main::on_thing"


class TestStatements:
    def _body(self, text):
        module = parse_module(
            f"module Main\nvoid f() {{\n{text}\n}}\n"
        )
        return module.functions["Main::f"]

    def test_locals_with_defaults(self):
        f = self._body("    local int<64> x = 3\n    local bool b")
        assert f.locals[0].init.value == 3
        assert f.locals[1].init is None

    def test_assignment_sugar(self):
        f = self._body("    local int<64> x\n    x = 42")
        instr = f.blocks[0].instructions[0]
        assert instr.mnemonic == "assign"
        assert instr.operands[0].value == 42

    def test_blocks_and_branches(self):
        f = self._body(
            "    local bool b\n"
            "    if.else b yes no\n"
            "yes:\n    return\nno:\n    return"
        )
        assert [b.label for b in f.blocks] == ["entry", "yes", "no"]

    def test_literals(self):
        f = self._body(
            "    local addr a\n    a = 10.1.2.3\n"
            "    local net n\n    n = 10.0.0.0/8\n"
            "    local port p\n    p = 80/tcp\n"
            "    local interval i\n    i = interval(300)\n"
            '    local string s\n    s = "hi"\n'
        )
        values = [
            i.operands[0].value
            for i in f.blocks[0].instructions
            if i.mnemonic == "assign"
        ]
        assert str(values[0]) == "10.1.2.3"
        assert str(values[1]) == "10.0.0.0/8"
        assert str(values[2]) == "80/tcp"
        assert values[3].seconds == 300.0
        assert values[4] == "hi"

    def test_wildcard_and_tuple_operands(self):
        module = parse_module(
            "module Main\n"
            "type Rule = struct { net src, net dst }\n"
            "global ref<classifier<Rule, bool>> r\n"
            "void f() {\n"
            "    classifier.add r (10.0.0.0/8, *) True\n"
            "}\n"
        )
        instr = module.functions["Main::f"].blocks[0].instructions[0]
        tup = instr.operands[1]
        assert isinstance(tup, TupleOp)
        assert tup.elements[1].value is None

    def test_try_catch_desugars(self):
        f = self._body(
            "    try {\n        return\n"
            "    } catch (ref<Hilti::IndexError> e) {\n        return\n    }"
        )
        mnemonics = [i.mnemonic for b in f.blocks for i in b.instructions]
        assert "try.begin" in mnemonics
        labels = [b.label for b in f.blocks]
        assert any(l.startswith("__catch") for l in labels)

    def test_for_in_desugars(self):
        module = parse_module(
            "module Main\n"
            "global ref<set<addr>> hosts\n"
            "void f() {\n"
            "    for ( i in hosts ) {\n"
            "        call Hilti::print(i)\n"
            "    }\n"
            "}\n"
        )
        mnemonics = [
            i.mnemonic
            for b in module.functions["Main::f"].blocks
            for i in b.instructions
        ]
        assert "container.iter" in mnemonics
        assert "container.next" in mnemonics


class TestErrors:
    def test_unknown_instruction(self):
        with pytest.raises(ParseError):
            parse_module("module Main\nvoid f() {\n    frobnicate x\n}\n")

    def test_unknown_type(self):
        with pytest.raises(ParseError):
            parse_module("module Main\nglobal wat x\n")

    def test_unterminated_body(self):
        with pytest.raises(ParseError):
            parse_module("module Main\nvoid f() {\n    return\n")

    def test_tokenizer_error(self):
        with pytest.raises(ParseError):
            parse_module("module Main\nvoid f() {\n    x = €\n}\n")


class TestParseType:
    def test_nested(self):
        t = parse_type("map<addr, list<tuple<int<64>, string>>>")
        assert isinstance(t, ht.MapT)
        assert isinstance(t.value, ht.ListT)
        assert isinstance(t.value.element, ht.TupleT)

    def test_int_widths(self):
        assert parse_type("int<8>").width == 8
        with pytest.raises(ValueError):
            parse_type("int<7>")
