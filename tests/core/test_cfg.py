"""Control-flow graph construction and reachability."""

from repro.core.cfg import build_cfg, reachable_blocks, successors
from repro.core.parser import parse_module


def _function(source):
    module = parse_module(source)
    return next(iter(module.functions.values()))


class TestSuccessors:
    def test_branch_targets(self):
        f = _function("""module Main
void f(bool b) {
    if.else b yes no
yes:
    return
no:
    return
}
""")
        assert set(successors(f, 0)) == {"yes", "no"}
        assert successors(f, 1) == []

    def test_fallthrough(self):
        f = _function("""module Main
void f() {
    local int<64> x
    x = 1
next:
    return
}
""")
        assert successors(f, 0) == ["next"]

    def test_try_handler_counts_as_successor(self):
        f = _function("""module Main
void f() {
    try {
        local int<64> x
        x = int.div 1 0
    } catch (ref<Hilti::Exception> e) {
        return
    }
}
""")
        graph = build_cfg(f)
        handler_labels = [l for l in graph if l.startswith("__catch")]
        assert handler_labels
        assert handler_labels[0] in graph["entry"]

    def test_reachability(self):
        f = _function("""module Main
void f() {
    jump out
island:
    jump island
out:
    return
}
""")
        reachable = reachable_blocks(f)
        assert "out" in reachable
        assert "island" not in reachable
