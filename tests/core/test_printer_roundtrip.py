"""Printer/parser round-trip: print -> parse -> print is idempotent.

The property is checked over every kind of module the toolchain emits:
the textual example listings, the library's HILTI sources, and the
builder-constructed modules of the BPF, BinPAC++, and Bro-script
compilers (tuple operands, field refs, hook declarations, overlays,
regexp literals, switch cases).
"""

import re
from pathlib import Path

import pytest

from repro.core import parse_module, print_module
from repro.core import types as ht
from repro.core.builder import ModuleBuilder
from repro.core.ir import Const, LabelRef, TupleOp
from repro.core.parser import _unescape

REPO = Path(__file__).resolve().parents[2]


def _assert_roundtrip(module_or_text):
    if isinstance(module_or_text, str):
        module = parse_module(module_or_text)
    else:
        module = module_or_text
    first = print_module(module)
    reparsed = parse_module(first)
    second = print_module(reparsed)
    assert first == second
    return reparsed


def _example_sources():
    cases = []
    for path in sorted((REPO / "examples").glob("*.py")):
        text = path.read_text()
        for index, source in enumerate(
            re.findall(r'"""(module .*?)"""', text, re.S)
        ):
            cases.append(pytest.param(source, id=f"{path.stem}-{index}"))
    return cases


@pytest.mark.parametrize("source", _example_sources())
def test_example_modules_roundtrip(source):
    _assert_roundtrip(source)


def test_session_table_roundtrips():
    from repro.lib import SESSION_TABLE

    _assert_roundtrip(SESSION_TABLE)


def test_firewall_module_roundtrips():
    from repro.apps.firewall import RuleSet, generate_hilti_source

    rules = RuleSet.parse(
        """
        10.20.0.0/26   192.0.2.0/28   allow
        10.20.0.64/26  *              deny
        *              192.0.2.2/32   allow
        """,
        timeout_seconds=5.0,
    )
    _assert_roundtrip(generate_hilti_source(rules))


def test_bpf_module_roundtrips():
    from repro.apps.bpf import parse_filter
    from repro.apps.bpf.compiler import build_filter_module

    node = parse_filter("host 10.0.0.1 or src net 172.16.0.0/16 and port 80")
    _assert_roundtrip(build_filter_module(node).finish())


@pytest.mark.parametrize("grammar_name", ["http", "dns"])
def test_binpac_modules_roundtrip(grammar_name):
    from repro.apps.binpac.codegen import GrammarCompiler

    if grammar_name == "http":
        from repro.apps.binpac.grammars.http import http_grammar as factory
    else:
        from repro.apps.binpac.grammars.dns import dns_grammar as factory
    _assert_roundtrip(GrammarCompiler(factory()).compile_module())


def test_bro_script_module_roundtrips():
    """The script compiler's module references glue struct types it never
    declares; the printer must synthesize their declarations so the text
    is self-contained."""
    from repro.apps.bro.compiler import ScriptCompiler
    from repro.apps.bro.core import BroCore
    from repro.apps.bro.lang import parse_script
    from repro.apps.bro.main import default_scripts

    merged = parse_script("\n".join(default_scripts()))
    compiler = ScriptCompiler(merged, BroCore())
    for decl in merged.globals:
        compiler.mb.global_var(decl.name, ht.ANY)
    compiler._compile_global_init()
    for decl in merged.functions:
        compiler._compile_function(decl)
    for index, decl in enumerate(merged.events):
        compiler._compile_event(decl, index)
    for index, statement in enumerate(compiler._when_statements):
        compiler._compile_when(statement, index)
    reparsed = _assert_roundtrip(compiler.mb.finish())
    # The synthesized struct declarations must actually be declarations.
    assert any(
        isinstance(declared, ht.StructT)
        for declared in reparsed.types.values()
    )


def test_switch_cases_parse_as_label_refs():
    """Regression: case labels used to come back as plain Vars, which the
    code generator rejects (it requires (Const, LabelRef) pairs)."""
    source = """module Main

void f(int<64> x) {
    switch x done (1, one) (2, two)
one:
    return.void
two:
    return.void
done:
    return.void
}
"""
    module = parse_module(source)
    switch = module.functions["Main::f"].blocks[0].instructions[0]
    for case in switch.operands[2:]:
        assert isinstance(case, TupleOp)
        value, label = case.elements
        assert isinstance(value, Const)
        assert isinstance(label, LabelRef)
    _assert_roundtrip(source)


def test_hook_attributes_roundtrip():
    source = """module Main

hook void HTTP::request(bytes uri) &priority=5 &group=http {
    return.void
}
"""
    module = parse_module(source)
    hook = module.hooks[0]
    assert hook.hook_priority == 5
    assert hook.hook_group == "http"
    _assert_roundtrip(source)


def test_hook_done_name_roundtrips():
    """Hook names with a %done segment (unit hooks) must tokenize."""
    source = """module Main

hook void HTTP::Request::%done() {
    return.void
}
"""
    module = parse_module(source)
    assert module.hooks[0].hook_name == "HTTP::Request::%done"
    _assert_roundtrip(source)


def test_regexp_literal_roundtrips():
    from repro.runtime.regexp import RegExp

    mb = ModuleBuilder("Main")
    fb = mb.function("f", [], ht.VOID)
    pattern = fb.const(ht.REGEXP, RegExp([r"[^ \t\r\n]+", "GET|POST"]))
    fb.emit("assign", pattern, target=fb.local("re", ht.REGEXP))
    fb.ret()
    module = _assert_roundtrip(mb.finish())
    function = next(iter(module.functions.values()))
    value = function.blocks[0].instructions[0].operands[0].value
    assert list(value.patterns) == [r"[^ \t\r\n]+", "GET|POST"]


def test_unescape_backslash_then_letter():
    """Regression: sequential str.replace turned the two-character input
    backslash-backslash-t into backslash-TAB."""
    assert _unescape(r"\\t") == "\\t"
    assert _unescape(r"\t") == "\t"
    assert _unescape(r"\\n") == "\\n"
    assert _unescape(r"a\\\"b") == 'a\\"b'
    assert _unescape("plain") == "plain"


def test_string_escapes_roundtrip():
    source = 'module Main\n\nglobal string s = "a\\\\tb\\nc"\n'
    module = parse_module(source)
    assert module.globals["s"].init.value == "a\\tb\nc"
    _assert_roundtrip(source)
