"""Domain value types: addr, net, port, time, interval."""

import pytest
from hypothesis import given, strategies as st

from repro.core.values import Addr, Interval, Network, Port, Time


class TestAddr:
    def test_v4_parse_and_format(self):
        a = Addr("192.168.1.1")
        assert str(a) == "192.168.1.1"
        assert a.is_v4
        assert a.family == 4

    def test_v6_parse_and_format(self):
        a = Addr("2001:db8::1")
        assert str(a) == "2001:db8::1"
        assert a.is_v6
        assert a.family == 6

    def test_v6_full_form(self):
        a = Addr("2001:0db8:0000:0000:0000:0000:0000:0001")
        assert str(a) == "2001:db8::1"

    def test_v4_mapped_is_v4(self):
        assert Addr("::ffff:1.2.3.4") == Addr("1.2.3.4")

    def test_packed_roundtrip_v4(self):
        a = Addr("10.0.0.1")
        assert Addr(a.packed()) == a
        assert len(a.packed()) == 4

    def test_packed_roundtrip_v6(self):
        a = Addr("2001:db8::42")
        assert Addr(a.packed()) == a
        assert len(a.packed()) == 16

    def test_from_v4_int(self):
        assert Addr.from_v4_int(0x0A000001) == Addr("10.0.0.1")

    def test_mask_v4(self):
        assert Addr("10.1.2.3").mask(16) == Addr("10.1.0.0")
        assert Addr("10.1.2.3").mask(0) == Addr("0.0.0.0")
        assert Addr("10.1.2.3").mask(32) == Addr("10.1.2.3")

    def test_invalid_inputs(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "01.2.3.4",
                    "2001:::1", "xyz"):
            with pytest.raises(ValueError):
                Addr(bad)
        with pytest.raises(ValueError):
            Addr(b"abc")  # 3 bytes
        with pytest.raises(TypeError):
            Addr(1.5)

    def test_ordering_and_hash(self):
        a, b = Addr("1.1.1.1"), Addr("1.1.1.2")
        assert a < b
        assert len({a, Addr("1.1.1.1")}) == 1

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_v4_int_roundtrip(self, value):
        a = Addr.from_v4_int(value)
        assert a.v4_value == value
        assert Addr(str(a)) == a

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_v6_string_roundtrip(self, value):
        a = Addr(value)
        assert Addr(str(a)).value == value


class TestNetwork:
    def test_parse_and_contains(self):
        n = Network("10.0.5.0/24")
        assert n.contains(Addr("10.0.5.77"))
        assert not n.contains(Addr("10.0.6.1"))
        assert str(n) == "10.0.5.0/24"

    def test_prefix_is_masked(self):
        assert Network("10.0.5.77/24").prefix == Addr("10.0.5.0")

    def test_zero_length_contains_all_v4(self):
        n = Network("0.0.0.0/0")
        assert n.contains(Addr("255.255.255.255"))

    def test_family_mismatch(self):
        assert not Network("10.0.0.0/8").contains(Addr("2001:db8::1"))

    def test_v6_network(self):
        n = Network("2001:db8::/32")
        assert n.contains(Addr("2001:db8::1234"))
        assert not n.contains(Addr("2001:db9::1"))

    def test_bad_length(self):
        with pytest.raises(ValueError):
            Network("10.0.0.0/33")
        with pytest.raises(ValueError):
            Network("10.0.0.0")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=0, max_value=32))
    def test_prefix_always_contains_base(self, value, length):
        a = Addr.from_v4_int(value)
        n = Network(a, length)
        assert n.contains(a)


class TestPort:
    def test_parse(self):
        p = Port("80/tcp")
        assert p.number == 80
        assert p.protocol == "tcp"
        assert str(p) == "80/tcp"

    def test_protocols_distinct(self):
        assert Port(53, "tcp") != Port(53, "udp")

    def test_range_check(self):
        with pytest.raises(ValueError):
            Port(70000, "tcp")
        with pytest.raises(ValueError):
            Port(80, "sctp")

    def test_ordering(self):
        assert Port(22, "tcp") < Port(80, "tcp")


class TestTimeInterval:
    def test_nanosecond_resolution(self):
        t = Time.from_nanos(1_000_000_001)
        assert t.nanos == 1_000_000_001

    def test_arithmetic(self):
        t = Time(100.0)
        i = Interval(2.5)
        assert (t + i).seconds == pytest.approx(102.5)
        assert (t - i).seconds == pytest.approx(97.5)
        assert ((t + i) - t) == Interval(2.5)

    def test_interval_scaling(self):
        assert Interval(2) * 3 == Interval(6)
        assert 2 * Interval(3) == Interval(6)

    def test_comparison(self):
        assert Time(1.0) < Time(2.0)
        assert Interval(1) < Interval(2)

    def test_interval_truthiness(self):
        assert not Interval(0)
        assert Interval(1)

    @given(st.integers(min_value=-10**15, max_value=10**15),
           st.integers(min_value=-10**15, max_value=10**15))
    def test_time_interval_algebra(self, a, b):
        t = Time.from_nanos(a)
        i = Interval.from_nanos(b)
        assert (t + i) - i == t
        assert (t + i) - t == i
