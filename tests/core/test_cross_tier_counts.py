"""Cross-tier accounting parity.

The interpreter and the compiled tier must charge the execution context
identically — the per-packet watchdog budget, the profiler instruction
deltas, and the Figures 9/10 attribution all read ``ctx.instr_count``,
so a tier that counts differently skews every downstream report.  The
compiled tier charges one unit per control transfer (including the
synthetic fall-off return of void functions); the interpreter mirrors
that at its fall-through point.
"""

import pytest

from repro.core import hiltic

_FIB = """module Main
int<64> fib(int<64> n) {
    local bool small
    small = int.lt n 2
    if.else small base rec
base:
    return n
rec:
    local int<64> a
    local int<64> b
    a = int.sub n 1
    a = call fib(a)
    b = int.sub n 2
    b = call fib(b)
    a = int.add a b
    return a
}
"""

_FALL_THROUGH = """module Main
global int<64> seen

void touch() {
    seen = int.add seen 1
}

int<64> walk(int<64> n) {
    local bool done
loop:
    done = int.eq n 0
    if.else done out again
again:
    call touch()
    n = int.sub n 1
    jump loop
out:
    return seen
}
"""

_HOOKS = """module Main
global int<64> total

hook void observe(int<64> x) {
    total = int.add total x
}

hook void observe(int<64> x) &priority=5 {
    total = int.add total 1
}

int<64> fire(int<64> n) {
    local bool done
loop:
    done = int.eq n 0
    if.else done out again
again:
    hook.run observe (n)
    n = int.sub n 1
    jump loop
out:
    return total
}
"""


def _count(source: str, entry: str, args, tier: str):
    # opt_level=0 so both tiers execute the identical IR (the
    # interpreter always runs unoptimized modules).
    program = hiltic([source], tier=tier, opt_level=0)
    ctx = program.make_context()
    result = program.call(ctx, entry, list(args))
    return result, ctx.instr_count


@pytest.mark.parametrize("source,entry,args", [
    (_FIB, "Main::fib", [9]),
    (_FALL_THROUGH, "Main::walk", [13]),
    (_HOOKS, "Main::fire", [7]),
], ids=["recursion", "void-fall-off", "hook-bodies"])
class TestInstructionCountParity:
    def test_tiers_agree_on_result_and_count(self, source, entry, args):
        interp_result, interp_count = _count(
            source, entry, args, "interpreted")
        compiled_result, compiled_count = _count(
            source, entry, args, "compiled")
        assert interp_result == compiled_result
        assert interp_count == compiled_count
        assert interp_count > 0

    def test_counts_scale_with_work(self, source, entry, args):
        _, small = _count(source, entry, args, "interpreted")
        _, big = _count(source, entry, [a + 3 for a in args], "interpreted")
        assert big > small


class TestProfilerDeltasMatchAcrossTiers:
    def test_profiled_instruction_deltas_agree(self):
        """Totals are identical; profiler deltas may differ only by the
        segment-boundary skew (the compiled tier charges a segment after
        its steps run, so an in-flight segment is not yet in the
        baseline read by profiler.start/stop).  The skew is bounded by
        one segment, not proportional to the work measured."""
        counts = {}
        totals = {}
        for tier in ("interpreted", "compiled"):
            program = hiltic([_FIB], profile=True, tier=tier, opt_level=0)
            ctx = program.make_context()
            program.call(ctx, "Main::fib", [10])
            counts[tier] = ctx.profilers.get("func/Main::fib").instructions
            totals[tier] = ctx.instr_count
        assert totals["interpreted"] == totals["compiled"]
        assert counts["interpreted"] > 0
        assert abs(counts["interpreted"] - counts["compiled"]) <= 4
