"""The instruction registry: metadata sanity and per-group semantics.

Table 1 of the paper lists HILTI's instruction groups; these tests sweep
the whole registry for structural invariants and exercise representative
value semantics of every group directly through the shared semantics
functions (the same ones both execution tiers dispatch to).
"""

import pytest

from repro.core import types as ht
from repro.core.instructions import ENGINE_MNEMONICS, REGISTRY, lookup
from repro.core.values import Addr, Interval, Network, Port, Time
from repro.runtime.bytes_buffer import Bytes
from repro.runtime.context import ExecutionContext
from repro.runtime.exceptions import HiltiError


@pytest.fixture()
def ctx():
    return ExecutionContext()


def _fn(mnemonic):
    return REGISTRY[mnemonic].fn


def _frozen(data: bytes) -> Bytes:
    b = Bytes(data)
    b.freeze()
    return b


class TestRegistryShape:
    def test_size_matches_paper_scale(self):
        # "In total HILTI currently offers about 200 instructions."
        assert len(REGISTRY) >= 200

    def test_every_instruction_well_formed(self):
        for mnemonic, definition in REGISTRY.items():
            assert definition.mnemonic == mnemonic
            assert definition.target in (None, "req", "opt")
            # Engine instructions have no value semantics; value
            # instructions must have them.
            if definition.engine:
                assert mnemonic in ENGINE_MNEMONICS
            else:
                assert definition.fn is not None, mnemonic
            # Variadic/optional specs only at the tail.
            specs = definition.operands
            for position, spec in enumerate(specs):
                if spec.endswith("*"):
                    assert position == len(specs) - 1, mnemonic
                if spec.endswith("?"):
                    assert all(
                        s.endswith("?") or s.endswith("*")
                        for s in specs[position:]
                    ), mnemonic

    def test_table1_groups_present(self):
        groups = {m.split(".")[0] for m in REGISTRY if "." in m}
        for expected in ("bitset", "bool", "network" if False else "net",
                         "hook", "callable", "channel", "bytes",
                         "double", "enum", "exception", "file", "map",
                         "set", "addr", "int", "list", "iosrc",
                         "classifier", "overlay", "port", "profiler",
                         "regexp", "string", "struct", "interval",
                         "timer_mgr", "timer", "time", "tuple", "vector",
                         "thread"):
            assert expected in groups, expected

    def test_lookup(self):
        assert lookup("int.add").mnemonic == "int.add"
        with pytest.raises(ValueError):
            lookup("no.such")


class TestIntGroup:
    def test_arithmetic(self, ctx):
        assert _fn("int.add")(ctx, 20, 22) == 42
        assert _fn("int.sub")(ctx, 10, 15) == -5
        assert _fn("int.mul")(ctx, 6, 7) == 42
        assert _fn("int.pow")(ctx, 2, 10) == 1024
        assert _fn("int.abs")(ctx, -9) == 9
        assert _fn("int.min")(ctx, 3, 5) == 3
        assert _fn("int.max")(ctx, 3, 5) == 5

    def test_c_style_division(self, ctx):
        assert _fn("int.div")(ctx, 7, 2) == 3
        assert _fn("int.div")(ctx, -7, 2) == -3   # truncation, not floor
        assert _fn("int.mod")(ctx, -7, 2) == -1
        with pytest.raises(HiltiError):
            _fn("int.div")(ctx, 1, 0)
        with pytest.raises(HiltiError):
            _fn("int.mod")(ctx, 1, 0)

    def test_bitwise(self, ctx):
        assert _fn("int.and")(ctx, 0b1100, 0b1010) == 0b1000
        assert _fn("int.or")(ctx, 0b1100, 0b1010) == 0b1110
        assert _fn("int.xor")(ctx, 0b1100, 0b1010) == 0b0110
        assert _fn("int.shl")(ctx, 1, 8) == 256
        assert _fn("int.shr")(ctx, 256, 4) == 16

    def test_wrap(self, ctx):
        assert _fn("int.wrap")(ctx, 255, 8) == -1
        assert _fn("int.wrap")(ctx, 127, 8) == 127
        assert _fn("int.wrap")(ctx, 128, 8) == -128

    def test_conversions(self, ctx):
        assert _fn("int.to_double")(ctx, 3) == 3.0
        assert _fn("int.to_time")(ctx, 5) == Time(5)
        assert _fn("int.to_interval")(ctx, 5) == Interval(5)


class TestStringGroup:
    def test_basics(self, ctx):
        assert _fn("string.concat")(ctx, "a", "b") == "ab"
        assert _fn("string.length")(ctx, "abc") == 3
        assert _fn("string.upper")(ctx, "aB") == "AB"
        assert _fn("string.substr")(ctx, "hello", 1, 3) == "ell"
        assert _fn("string.find")(ctx, "hello", "ll") == 2

    def test_encode_decode(self, ctx):
        encoded = _fn("string.encode")(ctx, "héllo")
        assert isinstance(encoded, Bytes)
        assert _fn("string.decode")(ctx, encoded) == "héllo"

    def test_fmt(self, ctx):
        assert _fn("string.fmt")(ctx, "%s=%d", ("x", 4)) == "x=4"
        with pytest.raises(HiltiError):
            _fn("string.fmt")(ctx, "%d", ())


class TestBytesGroup:
    def test_core_operations(self, ctx):
        b = _frozen(b"hello world")
        assert _fn("bytes.length")(ctx, b) == 11
        assert _fn("bytes.contains")(ctx, b, _frozen(b"wor")) is True
        assert _fn("bytes.startswith")(ctx, b, _frozen(b"hell")) is True
        assert _fn("bytes.to_int")(ctx, _frozen(b"42")) == 42
        assert _fn("bytes.to_int")(ctx, _frozen(b"2a"), 16) == 42
        cmp = _fn("bytes.cmp")
        assert cmp(ctx, _frozen(b"a"), _frozen(b"b")) == -1
        assert cmp(ctx, _frozen(b"b"), _frozen(b"a")) == 1
        assert cmp(ctx, _frozen(b"a"), _frozen(b"a")) == 0

    def test_unpack_at_iterator(self, ctx):
        b = _frozen(b"\x01\x02\x03\x04")
        value, it = _fn("bytes.unpack")(ctx, b.begin(), "UInt16Big")
        assert value == 0x0102
        assert it.offset == 2

    def test_split(self, ctx):
        parts = _fn("bytes.split")(ctx, _frozen(b"a,b,c"), _frozen(b","))
        assert [p.to_bytes() for p in parts] == [b"a", b"b", b"c"]


class TestDomainGroups:
    def test_addr(self, ctx):
        a = Addr("192.168.1.77")
        assert _fn("addr.family")(ctx, a) == 4
        assert _fn("addr.mask")(ctx, a, 24) == Addr("192.168.1.0")
        assert _fn("addr.to_string")(ctx, a) == "192.168.1.77"

    def test_net(self, ctx):
        n = Network("10.0.0.0/8")
        assert _fn("net.contains")(ctx, n, Addr("10.9.9.9")) is True
        assert _fn("net.prefix")(ctx, n) == Addr("10.0.0.0")
        assert _fn("net.length")(ctx, n) == 8

    def test_port(self, ctx):
        p = Port(443, "tcp")
        assert _fn("port.number")(ctx, p) == 443
        assert _fn("port.protocol")(ctx, p) == "tcp"

    def test_time_interval(self, ctx):
        t = Time(100.0)
        i = Interval(5.0)
        assert _fn("time.add")(ctx, t, i) == Time(105.0)
        assert _fn("time.sub")(ctx, t, i) == Time(95.0)
        assert _fn("time.sub")(ctx, Time(105.0), t) == Interval(5.0)
        assert _fn("time.nsecs")(ctx, t) == 100 * 10**9
        assert _fn("interval.mul")(ctx, i, 3) == Interval(15.0)
        assert _fn("interval.to_double")(ctx, i) == 5.0

    def test_enum_bitset(self, ctx):
        assert _fn("bitset.set")(ctx, 0b01, 0b10) == 0b11
        assert _fn("bitset.clear")(ctx, 0b11, 0b01) == 0b10
        assert _fn("bitset.has")(ctx, 0b11, 0b10) is True
        assert _fn("bitset.has")(ctx, 0b01, 0b10) is False


class TestGenericGroup:
    def test_equal_bridges_bytes(self, ctx):
        assert _fn("equal")(ctx, _frozen(b"x"), b"x") is True
        assert _fn("unequal")(ctx, _frozen(b"x"), b"y") is True

    def test_select(self, ctx):
        assert _fn("select")(ctx, True, 1, 2) == 1
        assert _fn("select")(ctx, False, 1, 2) == 2

    def test_tuple(self, ctx):
        assert _fn("tuple.index")(ctx, (7, 8), 1) == 8
        assert _fn("tuple.length")(ctx, (7, 8)) == 2
        with pytest.raises(HiltiError):
            _fn("tuple.index")(ctx, (7,), 3)


class TestAllocation:
    def test_new_counts_allocations(self, ctx):
        from repro.core.instructions import instantiate

        before = ctx.alloc_stats.allocations
        instantiate(ctx, ht.MapT(ht.ANY, ht.ANY))
        instantiate(ctx, ht.ListT(ht.ANY))
        assert ctx.alloc_stats.allocations == before + 2

    def test_new_rejects_unknown(self, ctx):
        from repro.core.instructions import instantiate

        with pytest.raises(HiltiError):
            instantiate(ctx, ht.BOOL)


class TestPack:
    def test_pack_unpack_roundtrip(self, ctx):
        from repro.core import types as ht
        from repro.runtime.overlay import unpack_value

        for fmt, value in (
            ("UInt16Big", 0xBEEF),
            ("UInt32Little", 12345678),
            ("Int16Big", -2),
            ("IPv4", Addr("10.1.2.3")),
            ("PortTCP", Port(443, "tcp")),
        ):
            packed = _fn("pack")(ctx, value, fmt)
            back = unpack_value(packed, 0, ht.UnpackFormat(fmt))
            assert back == value, fmt

    def test_pack_range_error(self, ctx):
        with pytest.raises(HiltiError):
            _fn("pack")(ctx, 70000, "UInt16Big")

    def test_pack_unknown_format(self, ctx):
        with pytest.raises(HiltiError):
            _fn("pack")(ctx, 1, "Complex128")
