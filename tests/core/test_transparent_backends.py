"""§5/§7: transparently switching runtime implementations.

"We currently implement the classifier type as a linked list internally
... It will be straightforward to later transparently switch to a better
data structure" — the host selects the backend per program; the HILTI
code (the Figure 5 firewall) does not change, and neither do its
verdicts.
"""

import pytest

from repro.apps.firewall import RuleSet, compile_firewall
from repro.core import hiltic
from repro.core.values import Addr, Time
from repro.runtime.classifier import LinearClassifier, TrieClassifier


def _ruleset():
    rs = RuleSet(timeout_seconds=60.0)
    rs.add("10.3.2.1/32", "10.1.0.0/16", True)
    rs.add("10.12.0.0/16", "10.1.0.0/16", False)
    rs.add("10.1.6.0/24", "*", True)
    return rs


class TestTransparentClassifierSwitch:
    def test_same_program_different_backend(self):
        from repro.apps.firewall.compiler import generate_hilti_source

        source = generate_hilti_source(_ruleset())
        cases = [
            (Time(1.0), Addr("10.3.2.1"), Addr("10.1.5.5")),
            (Time(2.0), Addr("10.12.1.1"), Addr("10.1.2.3")),
            (Time(3.0), Addr("10.1.6.9"), Addr("8.8.8.8")),
            (Time(4.0), Addr("1.2.3.4"), Addr("5.6.7.8")),
            (Time(5.0), Addr("10.1.5.5"), Addr("10.3.2.1")),  # dynamic
        ]
        verdicts = {}
        backends = {}
        for impl in ("linear", "trie"):
            program = hiltic([source])
            program.runtime_options["classifier"] = impl
            ctx = program.make_context()
            program.call(ctx, "Main::init_classifier")
            slot = program.linked.global_slot("Main::rules")
            backends[impl] = type(ctx.globals[slot])
            verdicts[impl] = [
                program.call(ctx, "Main::match_packet", list(case))
                for case in cases
            ]
        # The backend really switched...
        assert backends["linear"] is LinearClassifier
        assert backends["trie"] is TrieClassifier
        # ...and the program's behaviour did not.
        assert verdicts["linear"] == verdicts["trie"]
        assert verdicts["linear"] == [True, False, True, False, True]

    def test_default_is_the_papers_linked_list(self):
        program = hiltic([
            "module Main\n"
            "type Rule = struct { net src, net dst }\n"
            "global ref<classifier<Rule, bool>> c\n"
            "void init() {\n"
            "    c = new classifier<Rule, bool>\n"
            "}\n"
        ])
        ctx = program.make_context()
        program.call(ctx, "Main::init")
        slot = program.linked.global_slot("Main::c")
        assert type(ctx.globals[slot]) is LinearClassifier
