"""Differential testing: interpreter vs. compiled tier.

Both execution tiers must produce identical results for identical
programs — the guarantee that lets benchmarks attribute differences to
*execution strategy* rather than semantics.
"""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import hiltic
from repro.core.values import Addr, Time

_ARITH_SRC = """module Main
int<64> compute(int<64> a, int<64> b) {
    local int<64> s
    local int<64> p
    local int<64> d
    s = int.add a b
    p = int.mul s a
    local bool neg
    neg = int.lt p 0
    if.else neg flip keep
flip:
    p = int.neg p
keep:
    d = int.sub p b
    return d
}
"""

_STATE_SRC = """module Main
global ref<map<string, int<64>>> table

void init() {
    table = new map<string, int<64>>
}

void put(string k, int<64> v) {
    map.insert table k v
}

int<64> get_or(string k, int<64> dflt) {
    local int<64> r
    r = map.get_default table k dflt
    return r
}
"""

_FIREWALL_SRC = """module Main
import Hilti
type Rule = struct { net src, net dst }
global ref<classifier<Rule, bool>> rules
global ref<set<tuple<addr, addr>>> dyn

void init_classifier() {
    rules = new classifier<Rule, bool>
    classifier.add rules (10.0.0.0/8, *) True
    classifier.compile rules
    dyn = new set<tuple<addr, addr>>
    set.timeout dyn ExpireStrategy::Access interval(300)
}

bool match_packet(time t, addr src, addr dst) {
    local bool b
    timer_mgr.advance_global t
    b = set.exists dyn (src, dst)
    if.else b return_action lookup
lookup:
    try {
        b = classifier.get rules (src, dst)
    } catch (ref<Hilti::IndexError> e) {
        return False
    }
    if.else b add_state return_action
add_state:
    set.insert dyn (src, dst)
    set.insert dyn (dst, src)
return_action:
    return b
}
"""


def _both(source):
    compiled = hiltic([source], tier="compiled")
    interp = hiltic([source], tier="interpreted")
    return (compiled, compiled.make_context()), (interp, interp.make_context())


class TestDifferential:
    @given(st.integers(-10**6, 10**6), st.integers(-10**6, 10**6))
    @settings(max_examples=40)
    def test_arithmetic(self, a, b):
        (cp, cc), (ip, ic) = _both(_ARITH_SRC)
        assert cp.call(cc, "Main::compute", [a, b]) == \
            ip.call(ic, "Main::compute", [a, b])

    def test_stateful_map(self):
        (cp, cc), (ip, ic) = _both(_STATE_SRC)
        for program, ctx in ((cp, cc), (ip, ic)):
            program.call(ctx, "Main::init")
            program.call(ctx, "Main::put", ["a", 1])
            program.call(ctx, "Main::put", ["b", 2])
        assert cp.call(cc, "Main::get_or", ["a", 0]) == \
            ip.call(ic, "Main::get_or", ["a", 0]) == 1
        assert cp.call(cc, "Main::get_or", ["zz", -7]) == \
            ip.call(ic, "Main::get_or", ["zz", -7]) == -7

    @given(st.lists(
        st.tuples(
            st.integers(0, 120),
            st.sampled_from(["10.1.2.3", "10.9.9.9", "11.1.1.1",
                             "192.168.0.5"]),
            st.sampled_from(["10.1.2.3", "8.8.8.8", "10.200.1.1"]),
        ),
        max_size=25,
    ))
    @settings(max_examples=20, deadline=None)
    def test_firewall_program(self, packets):
        (cp, cc), (ip, ic) = _both(_FIREWALL_SRC)
        cp.call(cc, "Main::init_classifier")
        ip.call(ic, "Main::init_classifier")
        clock = 0
        for delta, src, dst in packets:
            clock += delta
            args = [Time(float(clock)), Addr(src), Addr(dst)]
            assert cp.call(cc, "Main::match_packet", list(args)) == \
                ip.call(ic, "Main::match_packet", list(args))

    def test_optimized_matches_unoptimized(self):
        for optimize in (True, False):
            program = hiltic([_ARITH_SRC], optimize=optimize)
            ctx = program.make_context()
            assert program.call(ctx, "Main::compute", [10, -3]) == \
                hiltic([_ARITH_SRC], optimize=not optimize).call(
                    hiltic([_ARITH_SRC], optimize=not optimize)
                    .make_context(),
                    "Main::compute", [10, -3],
                )
